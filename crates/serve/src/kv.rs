//! Paged per-stream KV caches for decode serving.
//!
//! PR 5 backed each session's keys and values with one contiguous
//! grow-forever slab, so a decode fleet's memory was unbounded and every
//! growth step risked a realloc-and-copy of the whole history. This module
//! replaces that with the paged layout production decode servers use:
//!
//! * [`KvPool`] — one server-owned arena of fixed-size blocks
//!   ([`KvConfig::page_elems`] elements each), allocated and freed in O(1)
//!   through a LIFO free list. Physical pages are created lazily up to the
//!   configured byte budget and recycled forever after.
//! * [`PagedKvCache`] — a per-session **page table**: `append`/`extend`
//!   grab whole pages from the pool instead of reallocating, and
//!   [`release`](PagedKvCache::release) returns every page in O(pages).
//!
//! Pages hold a fixed element count, not a fixed row count, because one
//! server mixes sessions of different widths: a session of key width `d`
//! stores `page_elems / d` rows per page (the page's tail beyond
//! `rows_per_page × d` elements is dead and never read). K and V sides
//! keep separate page tables so `d ≠ d_v` sessions waste nothing.
//!
//! The engine consumes the table directly:
//! [`k_rows`](PagedKvCache::k_rows)/[`v_rows`](PagedKvCache::v_rows)
//! borrow the pool's pages into a [`KvRows::Paged`] source, and the
//! engine's `gather_paged` pack produces the exact contiguous launch
//! layout the PR 5 slabs produced — bit-identical, pinned by the
//! `paged_decode_matches_contiguous` workspace proptest.

use dfss_core::engine::KvRows;
use dfss_core::mechanism::RequestError;
use dfss_tensor::{Bf16, Matrix, Scalar};

/// Identifier of an open decode session, unique per server for its
/// lifetime.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session#{}", self.0)
    }
}

/// Identifier of one fixed-size block inside a [`KvPool`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

/// Storage dtype of a server's KV pages.
///
/// `Native` stores rows at the server's compute dtype `T` (the PR 5
/// behaviour). `Bf16` stores rows bf16-quantised regardless of `T`:
/// appends narrow each element through [`Bf16::from_f32`] once at write
/// time and the decode microkernels widen on load (exactly — bf16 → f32
/// is a left shift), so a page holds twice as many f32-computed rows for
/// the same byte budget.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum KvDtype {
    /// Store KV rows at the compute dtype.
    #[default]
    Native,
    /// Store KV rows bf16-quantised (half the bytes of f32 compute).
    Bf16,
}

/// Geometry and governance knobs of a server's KV memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KvConfig {
    /// Elements per pool page. A session of row width `w` stores
    /// `page_elems / w` rows per page, so this must be at least the widest
    /// row the server will admit.
    pub page_elems: usize,
    /// Hard ceiling on pool memory in bytes; the pool never holds more
    /// than `budget_bytes / (page_elems × sizeof(T))` pages. The default
    /// (`u64::MAX`) is effectively unbounded.
    pub budget_bytes: u64,
    /// When the budget is exhausted, evict idle sessions (LRU order,
    /// deterministic) instead of rejecting the newcomer outright.
    pub evict_idle: bool,
    /// Storage dtype of the pool's pages (see [`KvDtype`]).
    pub kv_dtype: KvDtype,
}

impl Default for KvConfig {
    fn default() -> KvConfig {
        KvConfig {
            page_elems: 1024,
            budget_bytes: u64::MAX,
            evict_idle: false,
            kv_dtype: KvDtype::Native,
        }
    }
}

impl KvConfig {
    /// Rows of width `width` one page holds (the page tail past
    /// `rows_per_page × width` elements is dead).
    #[inline]
    pub fn rows_per_page(&self, width: usize) -> usize {
        self.page_elems / width
    }

    /// Physical bytes of one page of `T`.
    #[inline]
    pub fn page_bytes<T: Scalar>(&self) -> u64 {
        (self.page_elems * T::BYTES) as u64
    }

    /// Pages the byte budget admits (the pool's capacity).
    pub fn capacity_pages<T: Scalar>(&self) -> usize {
        let pages = self.budget_bytes / self.page_bytes::<T>();
        pages.min(u32::MAX as u64) as usize
    }

    /// Bytes one **stored** element occupies when the server computes in
    /// `T`: `T::BYTES` under [`KvDtype::Native`], 2 under
    /// [`KvDtype::Bf16`]. All budget and utilization accounting must go
    /// through this (not a literal `T::BYTES`, and never a literal `4`) so
    /// the governor charges what the pages physically hold.
    #[inline]
    pub fn storage_elem_bytes<T: Scalar>(&self) -> usize {
        match self.kv_dtype {
            KvDtype::Native => T::BYTES,
            KvDtype::Bf16 => Bf16::BYTES,
        }
    }

    /// Physical bytes of one page at the stored element width.
    #[inline]
    pub fn storage_page_bytes<T: Scalar>(&self) -> u64 {
        (self.page_elems * self.storage_elem_bytes::<T>()) as u64
    }

    /// Pages the byte budget admits at the stored element width — the
    /// capacity a `T`-computing server actually governs. A bf16 store
    /// doubles this over f32 compute for the same `budget_bytes`.
    pub fn storage_capacity_pages<T: Scalar>(&self) -> usize {
        let pages = self.budget_bytes / self.storage_page_bytes::<T>();
        pages.min(u32::MAX as u64) as usize
    }
}

/// Pages a cache side needs to grow from `len` to `len + new_rows` rows.
#[inline]
pub fn pages_for_growth(len: usize, new_rows: usize, rows_per_page: usize) -> usize {
    (len + new_rows).div_ceil(rows_per_page) - len.div_ceil(rows_per_page)
}

/// A typed failure out of a pool or paged-cache mutation — never a panic,
/// so KV exhaustion surfaces as back-pressure, not a crash.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KvError {
    /// Row widths disagree with the cache geometry.
    Shape {
        /// What disagreed.
        reason: String,
    },
    /// The pool has fewer free pages than the mutation needs. The cache is
    /// unchanged — no partial allocation.
    PoolExhausted {
        /// Pages the mutation needed.
        need: usize,
        /// Pages the pool could still hand out.
        free: usize,
    },
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::Shape { reason } => write!(f, "kv shape mismatch: {reason}"),
            KvError::PoolExhausted { need, free } => {
                write!(f, "kv pool exhausted: need {need} pages, {free} free")
            }
        }
    }
}

impl std::error::Error for KvError {}

impl From<KvError> for RequestError {
    fn from(e: KvError) -> RequestError {
        RequestError::DecodeShapeMismatch {
            reason: e.to_string(),
        }
    }
}

/// A server-owned arena of fixed-size KV blocks with O(1) alloc/free.
///
/// Physical pages are created lazily: the pool starts empty and grows one
/// page at a time up to `capacity_pages`, after which allocation recycles
/// the LIFO free list only. Freed pages keep their storage (and their
/// stale contents — callers overwrite rows before exposing them).
#[derive(Debug)]
pub struct KvPool<T> {
    page_elems: usize,
    capacity: usize,
    /// Physical page storage, grown lazily; index = `PageId.0`.
    pages: Vec<Box<[T]>>,
    /// Whether each grown page is currently allocated to a cache.
    live: Vec<bool>,
    /// Grown-but-free pages, LIFO so hot pages are reused first.
    free: Vec<PageId>,
    total_allocs: u64,
    total_frees: u64,
}

impl<T: Scalar> KvPool<T> {
    /// Empty pool over `config`'s geometry and budget.
    pub fn new(config: &KvConfig) -> KvPool<T> {
        assert!(config.page_elems > 0, "zero-element pages");
        KvPool {
            page_elems: config.page_elems,
            capacity: config.capacity_pages::<T>(),
            pages: Vec::new(),
            live: Vec::new(),
            free: Vec::new(),
            total_allocs: 0,
            total_frees: 0,
        }
    }

    /// Elements per page.
    #[inline]
    pub fn page_elems(&self) -> usize {
        self.page_elems
    }

    /// Pages the budget admits in total.
    #[inline]
    pub fn capacity_pages(&self) -> usize {
        self.capacity
    }

    /// Pages currently allocated to caches.
    #[inline]
    pub fn allocated(&self) -> usize {
        self.pages.len() - self.free.len()
    }

    /// Pages the pool can still hand out (recycled + never-grown).
    #[inline]
    pub fn free_pages(&self) -> usize {
        self.capacity - self.allocated()
    }

    /// Lifetime allocation count (monotone).
    #[inline]
    pub fn total_allocs(&self) -> u64 {
        self.total_allocs
    }

    /// Lifetime free count (monotone).
    #[inline]
    pub fn total_frees(&self) -> u64 {
        self.total_frees
    }

    /// Allocate one page: pop the free list, or grow a fresh zeroed page
    /// if under capacity. `None` when the budget is exhausted.
    pub fn alloc(&mut self) -> Option<PageId> {
        let id = match self.free.pop() {
            Some(id) => id,
            None => {
                if self.pages.len() >= self.capacity {
                    return None;
                }
                let id = PageId(self.pages.len() as u32);
                self.pages
                    .push(vec![T::zero(); self.page_elems].into_boxed_slice());
                self.live.push(false);
                id
            }
        };
        debug_assert!(!self.live[id.0 as usize], "allocating a live page");
        self.live[id.0 as usize] = true;
        self.total_allocs += 1;
        Some(id)
    }

    /// Return one page to the free list. Freeing a page that is not live
    /// (double-free, never-allocated id) is a typed error and a no-op.
    pub fn free(&mut self, id: PageId) -> Result<(), KvError> {
        match self.live.get_mut(id.0 as usize) {
            Some(live) if *live => {
                *live = false;
                self.free.push(id);
                self.total_frees += 1;
                Ok(())
            }
            _ => Err(KvError::Shape {
                reason: format!("freeing page {} which is not live", id.0),
            }),
        }
    }

    /// The page's element storage (full `page_elems` elements; callers
    /// read only the live row prefix).
    #[inline]
    pub fn page(&self, id: PageId) -> &[T] {
        debug_assert!(self.live[id.0 as usize], "reading a freed page");
        &self.pages[id.0 as usize]
    }

    /// Mutable page storage.
    #[inline]
    pub fn page_mut(&mut self, id: PageId) -> &mut [T] {
        debug_assert!(self.live[id.0 as usize], "writing a freed page");
        &mut self.pages[id.0 as usize]
    }

    /// Check the free-list invariants: every grown page is exactly one of
    /// live or free (no leak, no double-count), free-list entries are
    /// unique and in range, and the lifetime counters reconcile with the
    /// live count. Returns a description of the first violation.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.pages.len() != self.live.len() {
            return Err(format!(
                "{} pages but {} live flags",
                self.pages.len(),
                self.live.len()
            ));
        }
        if self.pages.len() > self.capacity {
            return Err(format!(
                "grew {} pages past the {}-page budget",
                self.pages.len(),
                self.capacity
            ));
        }
        let mut on_free_list = vec![false; self.pages.len()];
        for id in &self.free {
            let Some(slot) = on_free_list.get_mut(id.0 as usize) else {
                return Err(format!("free-list entry {} out of range", id.0));
            };
            if *slot {
                return Err(format!("page {} on the free list twice", id.0));
            }
            *slot = true;
        }
        for (p, (&live, &free)) in self.live.iter().zip(&on_free_list).enumerate() {
            if live == free {
                return Err(format!(
                    "page {p} is {} — every grown page must be exactly one of live or free",
                    if live {
                        "both live and free"
                    } else {
                        "neither live nor free"
                    }
                ));
            }
        }
        let live_count = self.live.iter().filter(|&&l| l).count();
        if live_count != self.allocated() {
            return Err(format!(
                "{live_count} live flags set but allocated() says {}",
                self.allocated()
            ));
        }
        if self.total_allocs - self.total_frees != live_count as u64 {
            return Err(format!(
                "lifetime counters ({} allocs - {} frees) disagree with {live_count} live pages",
                self.total_allocs, self.total_frees
            ));
        }
        Ok(())
    }
}

/// A per-session KV page table over a shared [`KvPool`]: K rows of width
/// `d` and V rows of width `d_v`, each side packing `page_elems / width`
/// rows per page. Mutations never move written rows — growth appends
/// pages to the table.
#[derive(Clone, Debug)]
pub struct PagedKvCache<T> {
    d: usize,
    d_v: usize,
    len: usize,
    rows_per_page_k: usize,
    rows_per_page_v: usize,
    k_pages: Vec<PageId>,
    v_pages: Vec<PageId>,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Scalar> PagedKvCache<T> {
    /// Empty table for keys of width `d` and values of width `d_v` over a
    /// pool of `config`'s geometry. Fails (typed) when a page cannot hold
    /// even one row of either width.
    pub fn new(config: &KvConfig, d: usize, d_v: usize) -> Result<PagedKvCache<T>, KvError> {
        if d == 0 || d_v == 0 {
            return Err(KvError::Shape {
                reason: "zero-width cache".into(),
            });
        }
        if config.page_elems < d || config.page_elems < d_v {
            return Err(KvError::Shape {
                reason: format!(
                    "page holds {} elements, too small for rows of width ({d}, {d_v})",
                    config.page_elems
                ),
            });
        }
        Ok(PagedKvCache {
            d,
            d_v,
            len: 0,
            rows_per_page_k: config.rows_per_page(d),
            rows_per_page_v: config.rows_per_page(d_v),
            k_pages: Vec::new(),
            v_pages: Vec::new(),
            _marker: std::marker::PhantomData,
        })
    }

    /// Key width.
    #[inline]
    pub fn d(&self) -> usize {
        self.d
    }

    /// Value width.
    #[inline]
    pub fn d_v(&self) -> usize {
        self.d_v
    }

    /// Cached positions.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing has been appended yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// K rows one page holds.
    #[inline]
    pub fn rows_per_page_k(&self) -> usize {
        self.rows_per_page_k
    }

    /// V rows one page holds.
    #[inline]
    pub fn rows_per_page_v(&self) -> usize {
        self.rows_per_page_v
    }

    /// Pages this session holds across both tables.
    #[inline]
    pub fn pages(&self) -> usize {
        self.k_pages.len() + self.v_pages.len()
    }

    /// Logical footprint of the cached rows in bytes (what the rows
    /// contain, not the pages they sit in — the governance budget is
    /// charged per page, this is the utilization numerator).
    #[inline]
    pub fn bytes(&self) -> u64 {
        (self.len * (self.d + self.d_v) * T::BYTES) as u64
    }

    /// Pool pages `new_rows` more positions would need.
    pub fn pages_needed(&self, new_rows: usize) -> usize {
        pages_for_growth(self.len, new_rows, self.rows_per_page_k)
            + pages_for_growth(self.len, new_rows, self.rows_per_page_v)
    }

    /// Append one position (a `d`-wide key row and a `d_v`-wide value
    /// row), taking fresh pages from `pool` as row boundaries cross page
    /// boundaries. On [`KvError::PoolExhausted`] nothing is allocated and
    /// the cache is unchanged.
    pub fn append(
        &mut self,
        pool: &mut KvPool<T>,
        k_row: &[T],
        v_row: &[T],
    ) -> Result<(), KvError> {
        if k_row.len() != self.d || v_row.len() != self.d_v {
            return Err(KvError::Shape {
                reason: format!(
                    "append rows of width ({}, {}) into a ({}, {}) cache",
                    k_row.len(),
                    v_row.len(),
                    self.d,
                    self.d_v
                ),
            });
        }
        self.grow(pool, 1)?;
        self.write_row(pool, self.len, k_row, v_row);
        self.len += 1;
        Ok(())
    }

    /// Append a block of positions at once (prefill priming): `k` is
    /// `rows × d`, `v` is `rows × d_v`. Atomic like `append` — on
    /// exhaustion no page is taken and no row written.
    pub fn extend(
        &mut self,
        pool: &mut KvPool<T>,
        k: &Matrix<T>,
        v: &Matrix<T>,
    ) -> Result<(), KvError> {
        if k.cols() != self.d || v.cols() != self.d_v || k.rows() != v.rows() {
            return Err(KvError::Shape {
                reason: format!(
                    "extend with K {}x{} / V {}x{} into a ({}, {}) cache",
                    k.rows(),
                    k.cols(),
                    v.rows(),
                    v.cols(),
                    self.d,
                    self.d_v
                ),
            });
        }
        self.grow(pool, k.rows())?;
        for r in 0..k.rows() {
            self.write_row(pool, self.len + r, k.row(r), v.row(r));
        }
        self.len += k.rows();
        Ok(())
    }

    /// Return every page to the pool and reset to empty. The widths (and
    /// the table itself) survive, so an evicted session's geometry is
    /// still known.
    pub fn release(&mut self, pool: &mut KvPool<T>) {
        for id in self.k_pages.drain(..).chain(self.v_pages.drain(..)) {
            pool.free(id).expect("page table holds a non-live page");
        }
        self.len = 0;
    }

    /// The cached keys as a borrowed page table for the engine's pack.
    pub fn k_rows<'p>(&self, pool: &'p KvPool<T>) -> KvRows<'p, T> {
        KvRows::Paged {
            pages: self.k_pages.iter().map(|&id| pool.page(id)).collect(),
            rows_per_page: self.rows_per_page_k,
        }
    }

    /// The cached values as a borrowed page table for the engine's pack.
    pub fn v_rows<'p>(&self, pool: &'p KvPool<T>) -> KvRows<'p, T> {
        KvRows::Paged {
            pages: self.v_pages.iter().map(|&id| pool.page(id)).collect(),
            rows_per_page: self.rows_per_page_v,
        }
    }

    /// Copy the cached keys out as a `len × d` matrix (test/reference use).
    pub fn k_matrix(&self, pool: &KvPool<T>) -> Matrix<T> {
        self.assemble(pool, &self.k_pages, self.d, self.rows_per_page_k)
    }

    /// Copy the cached values out as a `len × d_v` matrix.
    pub fn v_matrix(&self, pool: &KvPool<T>) -> Matrix<T> {
        self.assemble(pool, &self.v_pages, self.d_v, self.rows_per_page_v)
    }

    fn assemble(
        &self,
        pool: &KvPool<T>,
        table: &[PageId],
        width: usize,
        rows_per_page: usize,
    ) -> Matrix<T> {
        let mut data = Vec::with_capacity(self.len * width);
        let mut remaining = self.len;
        for &id in table {
            let take = remaining.min(rows_per_page);
            data.extend_from_slice(&pool.page(id)[..take * width]);
            remaining -= take;
        }
        Matrix::from_vec(self.len, width, data)
    }

    /// Reserve the pages `new_rows` more positions need — all-or-nothing.
    fn grow(&mut self, pool: &mut KvPool<T>, new_rows: usize) -> Result<(), KvError> {
        let need_k = pages_for_growth(self.len, new_rows, self.rows_per_page_k);
        let need_v = pages_for_growth(self.len, new_rows, self.rows_per_page_v);
        let need = need_k + need_v;
        if need > pool.free_pages() {
            return Err(KvError::PoolExhausted {
                need,
                free: pool.free_pages(),
            });
        }
        // Cannot fail past the gate above; the free list is LIFO so these
        // come out in a deterministic order.
        for _ in 0..need_k {
            self.k_pages
                .push(pool.alloc().expect("gated on free_pages"));
        }
        for _ in 0..need_v {
            self.v_pages
                .push(pool.alloc().expect("gated on free_pages"));
        }
        Ok(())
    }

    /// Append one position given at the compute dtype `C`, narrowing each
    /// element through bf16 at write time. The quantisation loss is paid
    /// exactly once — decode widens the stored row back losslessly.
    pub fn append_narrowed<C: Scalar>(
        &mut self,
        pool: &mut KvPool<T>,
        k_row: &[C],
        v_row: &[C],
    ) -> Result<(), KvError> {
        let narrow =
            |row: &[C]| -> Vec<T> { row.iter().map(|x| T::from_f32(x.to_f32())).collect() };
        self.append(pool, &narrow(k_row), &narrow(v_row))
    }

    /// Block form of [`append_narrowed`](Self::append_narrowed).
    pub fn extend_narrowed<C: Scalar>(
        &mut self,
        pool: &mut KvPool<T>,
        k: &Matrix<C>,
        v: &Matrix<C>,
    ) -> Result<(), KvError> {
        let narrow = |m: &Matrix<C>| -> Matrix<T> {
            Matrix::from_vec(
                m.rows(),
                m.cols(),
                m.as_slice()
                    .iter()
                    .map(|x| T::from_f32(x.to_f32()))
                    .collect(),
            )
        };
        self.extend(pool, &narrow(k), &narrow(v))
    }

    /// Write position `row` (already backed by a page) on both sides.
    fn write_row(&self, pool: &mut KvPool<T>, row: usize, k_row: &[T], v_row: &[T]) {
        let kp = self.k_pages[row / self.rows_per_page_k];
        let ko = (row % self.rows_per_page_k) * self.d;
        pool.page_mut(kp)[ko..ko + self.d].copy_from_slice(k_row);
        let vp = self.v_pages[row / self.rows_per_page_v];
        let vo = (row % self.rows_per_page_v) * self.d_v;
        pool.page_mut(vp)[vo..vo + self.d_v].copy_from_slice(v_row);
    }
}

impl PagedKvCache<Bf16> {
    /// The cached bf16 keys as a borrowed page table for the engine's
    /// pack, tagged quantised so a `T`-computing engine routes the step
    /// through its fused widen-on-load decode path.
    pub fn k_rows_quant<'p, T: Scalar>(&self, pool: &'p KvPool<Bf16>) -> KvRows<'p, T> {
        KvRows::PagedBf16 {
            pages: self.k_pages.iter().map(|&id| pool.page(id)).collect(),
            rows_per_page: self.rows_per_page_k,
        }
    }

    /// The cached bf16 values as a borrowed page table (see
    /// [`k_rows_quant`](Self::k_rows_quant)).
    pub fn v_rows_quant<'p, T: Scalar>(&self, pool: &'p KvPool<Bf16>) -> KvRows<'p, T> {
        KvRows::PagedBf16 {
            pages: self.v_pages.iter().map(|&id| pool.page(id)).collect(),
            rows_per_page: self.rows_per_page_v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(page_elems: usize, pages: u64) -> KvConfig {
        KvConfig {
            page_elems,
            budget_bytes: pages * (page_elems * 4) as u64,
            evict_idle: false,
            kv_dtype: KvDtype::Native,
        }
    }

    #[test]
    fn append_crosses_page_boundaries() {
        // 2 K rows or 3 V rows per page (width 2 each, page of 6 elems:
        // K side wastes 2 elements per page, V side none).
        let cfg = KvConfig {
            page_elems: 6,
            ..KvConfig::default()
        };
        let mut pool = KvPool::<f32>::new(&cfg);
        let mut c = PagedKvCache::<f32>::new(&cfg, 2, 2).unwrap();
        assert_eq!(c.rows_per_page_k(), 3);
        assert!(c.is_empty());
        for i in 0..4 {
            let x = i as f32;
            c.append(&mut pool, &[x, x + 0.5], &[-x, -x - 0.5]).unwrap();
        }
        assert_eq!(c.len(), 4);
        // 4 rows at 3 rows/page → 2 pages per side.
        assert_eq!(c.pages(), 4);
        assert_eq!(pool.allocated(), 4);
        assert_eq!(c.bytes(), (4 * (2 + 2) * 4) as u64);
        let k = c.k_matrix(&pool);
        assert_eq!(k.shape(), (4, 2));
        assert_eq!(k.row(3), &[3.0, 3.5]);
        assert_eq!(c.v_matrix(&pool).row(0), &[0.0, -0.5]);
        pool.check_invariants().unwrap();
    }

    #[test]
    fn extend_primes_many_rows_and_release_returns_pages() {
        let cfg = config(8, 64);
        let mut pool = KvPool::<f32>::new(&cfg);
        let mut c = PagedKvCache::<f32>::new(&cfg, 4, 2).unwrap();
        let k = Matrix::from_fn(5, 4, |r, col| (r * 4 + col) as f32);
        let v = Matrix::from_fn(5, 2, |r, col| -((r * 2 + col) as f32));
        c.extend(&mut pool, &k, &v).unwrap();
        assert_eq!(c.len(), 5);
        assert_eq!(c.k_matrix(&pool), k);
        assert_eq!(c.v_matrix(&pool), v);
        // 5 rows: K at 2 rows/page → 3 pages; V at 4 rows/page → 2 pages.
        assert_eq!(c.pages(), 5);
        c.release(&mut pool);
        assert_eq!(c.len(), 0);
        assert_eq!(c.pages(), 0);
        assert_eq!(pool.allocated(), 0);
        assert_eq!(pool.total_frees(), 5);
        pool.check_invariants().unwrap();
        // The freed pages recycle without growing new storage.
        c.extend(&mut pool, &k, &v).unwrap();
        assert_eq!(pool.total_allocs(), 10);
        assert_eq!(c.k_matrix(&pool), k);
        pool.check_invariants().unwrap();
    }

    #[test]
    fn exhaustion_is_atomic_and_typed() {
        // Budget of 3 pages; a session needs K+V pages in pairs.
        let cfg = config(4, 3);
        let mut pool = KvPool::<f32>::new(&cfg);
        assert_eq!(pool.capacity_pages(), 3);
        let mut c = PagedKvCache::<f32>::new(&cfg, 4, 4).unwrap();
        c.append(&mut pool, &[0.0; 4], &[1.0; 4]).unwrap(); // takes 2 pages
        let before = (c.len(), c.pages(), pool.allocated());
        let err = c
            .extend(
                &mut pool,
                &Matrix::<f32>::zeros(2, 4),
                &Matrix::<f32>::zeros(2, 4),
            )
            .unwrap_err();
        assert_eq!(err, KvError::PoolExhausted { need: 4, free: 1 });
        assert_eq!((c.len(), c.pages(), pool.allocated()), before);
        pool.check_invariants().unwrap();
        // The row already cached is intact.
        assert_eq!(c.v_matrix(&pool).row(0), &[1.0; 4]);
    }

    #[test]
    fn double_free_is_a_typed_error() {
        let cfg = config(4, 8);
        let mut pool = KvPool::<f32>::new(&cfg);
        let id = pool.alloc().unwrap();
        pool.free(id).unwrap();
        assert!(matches!(pool.free(id), Err(KvError::Shape { .. })));
        assert!(matches!(pool.free(PageId(99)), Err(KvError::Shape { .. })));
        assert_eq!(pool.total_frees(), 1);
        pool.check_invariants().unwrap();
    }

    #[test]
    fn mismatched_rows_are_typed_errors() {
        let cfg = config(8, 8);
        let mut pool = KvPool::<f32>::new(&cfg);
        let mut c = PagedKvCache::<f32>::new(&cfg, 2, 2).unwrap();
        let err = c.append(&mut pool, &[1.0], &[1.0, 2.0]).unwrap_err();
        assert!(matches!(err, KvError::Shape { .. }));
        let k = Matrix::<f32>::zeros(2, 3);
        let v = Matrix::<f32>::zeros(2, 2);
        assert!(c.extend(&mut pool, &k, &v).is_err());
        assert!(c.is_empty(), "failed appends must not mutate the cache");
        assert_eq!(pool.allocated(), 0);
        // A cache whose rows cannot fit one page is rejected at creation.
        assert!(matches!(
            PagedKvCache::<f32>::new(&cfg, 16, 2),
            Err(KvError::Shape { .. })
        ));
    }

    #[test]
    fn config_capacity_accounts_for_dtype() {
        let cfg = KvConfig {
            page_elems: 256,
            budget_bytes: 1 << 20,
            evict_idle: false,
            kv_dtype: KvDtype::Native,
        };
        assert_eq!(cfg.capacity_pages::<f32>(), 1024);
        assert_eq!(cfg.capacity_pages::<dfss_tensor::Bf16>(), 2048);
        assert_eq!(cfg.rows_per_page(64), 4);
        assert_eq!(pages_for_growth(0, 1, 4), 1);
        assert_eq!(pages_for_growth(4, 1, 4), 1);
        assert_eq!(pages_for_growth(3, 1, 4), 0);
        assert_eq!(pages_for_growth(2, 10, 4), 2);
        // Storage-width accounting: a Native store charges T::BYTES, a
        // Bf16 store charges 2 bytes/element whatever the compute dtype —
        // the same byte budget backs twice the pages.
        assert_eq!(cfg.storage_elem_bytes::<f32>(), 4);
        assert_eq!(cfg.storage_capacity_pages::<f32>(), 1024);
        let quant = KvConfig {
            kv_dtype: KvDtype::Bf16,
            ..cfg
        };
        assert_eq!(quant.storage_elem_bytes::<f32>(), 2);
        assert_eq!(quant.storage_capacity_pages::<f32>(), 2048);
        assert_eq!(
            quant.storage_capacity_pages::<f32>(),
            quant.capacity_pages::<Bf16>(),
            "the registry's governed capacity must match the Bf16 pool's"
        );
    }

    #[test]
    fn quant_cache_narrows_on_write_and_exposes_bf16_pages() {
        let cfg = KvConfig {
            page_elems: 8,
            kv_dtype: KvDtype::Bf16,
            ..KvConfig::default()
        };
        let mut pool = KvPool::<Bf16>::new(&cfg);
        let mut c = PagedKvCache::<Bf16>::new(&cfg, 4, 2).unwrap();
        // 1.0 and -2.5 are exactly representable in bf16; 1.0000001 is not
        // and must round to the stored bf16, not survive at f32 precision.
        let k = Matrix::from_vec(1, 4, vec![1.0f32, -2.5, 1.000_000_1, 0.0]);
        let v = Matrix::from_vec(1, 2, vec![3.0f32, -0.5]);
        c.extend_narrowed(&mut pool, &k, &v).unwrap();
        c.append_narrowed(&mut pool, &[1.0f32, 2.0, 3.0, 4.0], &[5.0f32, 6.0])
            .unwrap();
        assert_eq!(c.len(), 2);
        let stored = c.k_matrix(&pool);
        assert_eq!(stored.row(0)[0], Bf16::from_f32(1.0));
        assert_eq!(stored.row(0)[2], Bf16::from_f32(1.000_000_1));
        assert_ne!(stored.row(0)[2].to_f32(), 1.000_000_1f32);
        // Logical bytes are charged at the stored width (2 bytes/elem).
        assert_eq!(c.bytes(), (2 * (4 + 2) * 2) as u64);
        // The quant row views carry the bf16 pages under the compute-dtype
        // tag the engine dispatches on.
        match c.k_rows_quant::<f32>(&pool) {
            KvRows::PagedBf16 {
                pages,
                rows_per_page,
            } => {
                assert_eq!(rows_per_page, 2);
                assert_eq!(pages.len(), 1);
                assert_eq!(pages[0][0], Bf16::from_f32(1.0));
            }
            other => panic!("expected PagedBf16, got {other:?}"),
        }
    }
}
