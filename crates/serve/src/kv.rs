//! Append-only per-stream KV caches for decode serving.
//!
//! A decode session holds the keys and values of everything generated (or
//! prefilled) so far; each decode step appends one row to each and attends
//! the new query row over the whole history. [`KvCache`] backs the K and V
//! rows **contiguously** (row-major `len × d` / `len × d_v` slabs) with
//! `Vec`'s amortized doubling growth, so the engine's
//! [`DecodeStep`](dfss_core::engine::DecodeStep) can borrow the slabs
//! directly — the pack step copies them into the ragged launch exactly
//! once, and appends are amortized O(row).

use dfss_core::mechanism::RequestError;
use dfss_tensor::{Matrix, Scalar};

/// Identifier of an open decode session, unique per server for its
/// lifetime.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session#{}", self.0)
    }
}

/// An append-only per-stream KV cache: contiguous row-major K (`len × d`)
/// and V (`len × d_v`) slabs with amortized growth.
#[derive(Clone, Debug)]
pub struct KvCache<T> {
    d: usize,
    d_v: usize,
    k: Vec<T>,
    v: Vec<T>,
}

impl<T: Scalar> KvCache<T> {
    /// Empty cache for keys of width `d` and values of width `d_v`.
    pub fn new(d: usize, d_v: usize) -> KvCache<T> {
        assert!(d > 0 && d_v > 0, "zero-width cache");
        KvCache {
            d,
            d_v,
            k: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Empty cache with room for `rows` positions reserved up front.
    pub fn with_capacity(d: usize, d_v: usize, rows: usize) -> KvCache<T> {
        let mut c = KvCache::new(d, d_v);
        c.k.reserve(rows * d);
        c.v.reserve(rows * d_v);
        c
    }

    /// Key width.
    #[inline]
    pub fn d(&self) -> usize {
        self.d
    }

    /// Value width.
    #[inline]
    pub fn d_v(&self) -> usize {
        self.d_v
    }

    /// Cached positions.
    #[inline]
    pub fn len(&self) -> usize {
        self.k.len() / self.d
    }

    /// Whether nothing has been appended yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.k.is_empty()
    }

    /// Logical footprint of the cached rows in bytes.
    #[inline]
    pub fn bytes(&self) -> u64 {
        ((self.k.len() + self.v.len()) * T::BYTES) as u64
    }

    /// Append one position (a `d`-wide key row and a `d_v`-wide value row).
    pub fn append(&mut self, k_row: &[T], v_row: &[T]) -> Result<(), RequestError> {
        if k_row.len() != self.d || v_row.len() != self.d_v {
            return Err(RequestError::DecodeShapeMismatch {
                reason: format!(
                    "append rows of width ({}, {}) into a ({}, {}) cache",
                    k_row.len(),
                    v_row.len(),
                    self.d,
                    self.d_v
                ),
            });
        }
        self.k.extend_from_slice(k_row);
        self.v.extend_from_slice(v_row);
        Ok(())
    }

    /// Append a block of positions at once (prefill priming): `k` is
    /// `rows × d`, `v` is `rows × d_v`.
    pub fn extend(&mut self, k: &Matrix<T>, v: &Matrix<T>) -> Result<(), RequestError> {
        if k.cols() != self.d || v.cols() != self.d_v || k.rows() != v.rows() {
            return Err(RequestError::DecodeShapeMismatch {
                reason: format!(
                    "extend with K {}x{} / V {}x{} into a ({}, {}) cache",
                    k.rows(),
                    k.cols(),
                    v.rows(),
                    v.cols(),
                    self.d,
                    self.d_v
                ),
            });
        }
        self.k.extend_from_slice(k.as_slice());
        self.v.extend_from_slice(v.as_slice());
        Ok(())
    }

    /// The contiguous K slab (`len × d` row-major elements).
    #[inline]
    pub fn k_rows(&self) -> &[T] {
        &self.k
    }

    /// The contiguous V slab (`len × d_v` row-major elements).
    #[inline]
    pub fn v_rows(&self) -> &[T] {
        &self.v
    }

    /// Copy the cached keys out as a `len × d` matrix (test/reference use).
    pub fn k_matrix(&self) -> Matrix<T> {
        Matrix::from_vec(self.len(), self.d, self.k.clone())
    }

    /// Copy the cached values out as a `len × d_v` matrix.
    pub fn v_matrix(&self) -> Matrix<T> {
        Matrix::from_vec(self.len(), self.d_v, self.v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_grows_contiguously() {
        let mut c = KvCache::<f32>::new(2, 3);
        assert!(c.is_empty());
        c.append(&[1.0, 2.0], &[3.0, 4.0, 5.0]).unwrap();
        c.append(&[6.0, 7.0], &[8.0, 9.0, 10.0]).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.k_rows(), &[1.0, 2.0, 6.0, 7.0]);
        assert_eq!(c.v_rows(), &[3.0, 4.0, 5.0, 8.0, 9.0, 10.0]);
        assert_eq!(c.bytes(), (4 + 6) * 4);
        assert_eq!(c.k_matrix().shape(), (2, 2));
    }

    #[test]
    fn extend_primes_many_rows() {
        let mut c = KvCache::<f32>::with_capacity(2, 2, 8);
        let k = Matrix::from_fn(3, 2, |r, col| (r * 2 + col) as f32);
        let v = Matrix::from_fn(3, 2, |r, col| -((r + col) as f32));
        c.extend(&k, &v).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.k_rows(), k.as_slice());
        assert_eq!(c.v_matrix(), v);
    }

    #[test]
    fn mismatched_rows_are_typed_errors() {
        let mut c = KvCache::<f32>::new(2, 2);
        let err = c.append(&[1.0], &[1.0, 2.0]).unwrap_err();
        assert!(matches!(err, RequestError::DecodeShapeMismatch { .. }));
        let k = Matrix::<f32>::zeros(2, 3);
        let v = Matrix::<f32>::zeros(2, 2);
        assert!(c.extend(&k, &v).is_err());
        assert!(c.is_empty(), "failed appends must not mutate the cache");
    }
}
