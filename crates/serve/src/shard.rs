//! Sharded multi-engine serving: N continuous-batching engines behind one
//! front door, with work stealing for stateless prefill.
//!
//! A [`ShardedServer`] runs one [`AttentionServer`] per shard, each with
//! its **own** batcher thread, engine and [`crate::KvPool`] (the configured
//! byte budget is divided evenly across shards). Traffic splits by state:
//!
//! * **Decode sessions are shard-pinned.** `open_session` hashes the
//!   session id to a shard once (splitmix64 — stable for the session's
//!   whole lifetime) and every later `append`/`extend`/`submit_decode`/
//!   `close_session` goes to that shard. KV pages never migrate, so
//!   decode outputs are bit-identical to a solo server's.
//! * **Prefill is stateless and work-stolen.** `submit` validates at the
//!   front door, enqueues the request as a [`StealJob`] of
//!   `prefill_chunk`-row chunks on the shared [`StealPool`], homed on the
//!   least-loaded shard. Every shard drains its *own* chunks eagerly and
//!   steals *foreign* chunks only when its local scheduler is idle —
//!   queued prefill never waits on a busy shard while another sits idle.
//!   Chunk outputs are bit-identical whichever shard computes them (same
//!   mechanism, same kernels), so stealing never changes results; the
//!   shard that finishes a job's **last** chunk assembles the output rows
//!   in row order and replies.
//!
//! Mechanisms that are not row-chunkable (the blocked-ELL hybrid) bypass
//! the pool: their prefills run whole on the home shard's continuous
//! server, preserving correctness at the cost of stealability.

use crate::faults::FaultPlan;
use crate::kv::{KvConfig, SessionId};
use crate::sched::SchedPolicy;
use crate::server::{AttentionServer, Reply, ResponseHandle, Served};
use crate::{
    BatchPolicy, DecodeHandle, DecodeRequest, QueueDepths, SchedTrace, ServeError, ServeStats,
    SessionError, Ticket,
};
use dfss_core::engine::ShapeKey;
use dfss_core::mechanism::{try_check_qkv, Attention};
use dfss_tensor::{Matrix, Scalar};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

fn lock_healed<'a, U>(m: &'a Mutex<U>) -> MutexGuard<'a, U> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The splitmix64 finalizer — the session→shard hash. Deterministic,
/// well-mixed for sequential ids, and dependency-free.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Mutable half of a [`StealJob`]: the claim cursor, the per-chunk output
/// slots, and the reply channel the finishing shard consumes.
struct StealState<T: Scalar> {
    /// First unclaimed row (chunks are claimed in row order).
    next_lo: usize,
    /// One slot per chunk, filled by whichever shard ran it.
    outputs: Vec<Option<Vec<T>>>,
    /// Chunks completed so far.
    done: usize,
    sim_latency_s: f64,
    /// When the job's first chunk was claimed (queue-wait mark).
    started: Option<Instant>,
    /// Taken exactly once — by the finisher, or by the first failure.
    reply: Option<Reply<T>>,
    /// Set on deadline shed or failure; later chunks are skipped.
    dead: bool,
}

/// One stateless prefill request queued on the [`StealPool`] as
/// `ceil(rows / chunk_rows)` independently executable row chunks.
pub(crate) struct StealJob<T: Scalar> {
    pub(crate) id: u64,
    /// The shard the router homed the job on (its chunks are stolen only
    /// by shards that would otherwise idle).
    pub(crate) home: usize,
    pub(crate) q: Matrix<T>,
    pub(crate) k: Matrix<T>,
    pub(crate) v: Matrix<T>,
    chunk_rows: usize,
    n_chunks: usize,
    pub(crate) submitted: Instant,
    pub(crate) deadline: Option<Instant>,
    state: Mutex<StealState<T>>,
}

impl<T: Scalar> StealJob<T> {
    /// Rows still unclaimed — the router's load signal for this job.
    fn pending_rows(&self) -> usize {
        let state = lock_healed(&self.state);
        if state.dead {
            0
        } else {
            self.q.rows() - state.next_lo
        }
    }

    pub(crate) fn is_dead(&self) -> bool {
        lock_healed(&self.state).dead
    }

    /// Claim the next chunk in row order. Returns `(lo, hi, idx, last)`.
    /// Caller holds the pool's job-list lock, so claims are serialized.
    fn claim_next(&self) -> (usize, usize, usize, bool) {
        let mut state = lock_healed(&self.state);
        let lo = state.next_lo;
        let hi = (lo + self.chunk_rows).min(self.q.rows());
        state.next_lo = hi;
        if state.started.is_none() {
            state.started = Some(Instant::now());
        }
        (lo, hi, lo / self.chunk_rows, hi == self.q.rows())
    }

    /// Deadline shed: mark the job dead and resolve its handle typed.
    /// Returns whether this call performed the shed (counted once).
    pub(crate) fn shed(&self) -> bool {
        let mut state = lock_healed(&self.state);
        if state.dead {
            return false;
        }
        state.dead = true;
        if let Some(reply) = state.reply.take() {
            let _ = reply.send(Err(ServeError::DeadlineExceeded {
                queued_for: self.submitted.elapsed(),
            }));
        }
        true
    }

    /// Fail the whole job (chunk panic or typed launch rejection): later
    /// chunks are skipped and the handle resolves with `e`. First failure
    /// wins; repeats are no-ops.
    pub(crate) fn fail(&self, e: ServeError) {
        let mut state = lock_healed(&self.state);
        if state.dead {
            return;
        }
        state.dead = true;
        if let Some(reply) = state.reply.take() {
            let _ = reply.send(Err(e));
        }
    }

    /// Record chunk `idx`'s output rows. If this was the job's last
    /// outstanding chunk, assemble the full output in row order and reply
    /// — returns `true` exactly once, on the finishing shard.
    pub(crate) fn complete_chunk(&self, idx: usize, rows: Vec<T>, sim_latency_s: f64) -> bool {
        let mut state = lock_healed(&self.state);
        if state.dead {
            return false;
        }
        debug_assert!(state.outputs[idx].is_none(), "chunk completed twice");
        state.outputs[idx] = Some(rows);
        state.done += 1;
        state.sim_latency_s += sim_latency_s;
        if state.done < self.n_chunks {
            return false;
        }
        let Some(reply) = state.reply.take() else {
            return false;
        };
        let (n, d) = self.q.shape();
        let d_v = self.v.cols();
        let mut out = Vec::with_capacity(n * d_v);
        for slot in state.outputs.iter_mut() {
            out.extend_from_slice(slot.as_ref().expect("all chunks done"));
            *slot = None;
        }
        let started = state.started.unwrap_or(self.submitted);
        let _ = reply.send(Ok(Served {
            output: Matrix::from_vec(n, d_v, out),
            ticket: Ticket(self.id),
            bucket: ShapeKey { n, d, d_v },
            batch_size: 1,
            queue_wait: started.saturating_duration_since(self.submitted),
            service: started.elapsed(),
            latency: self.submitted.elapsed(),
            sim_latency_s: state.sim_latency_s,
        }));
        true
    }
}

/// One claimed chunk: the job, the row range, and whether the claiming
/// shard is foreign (a steal).
pub(crate) struct StealChunk<T: Scalar> {
    pub(crate) job: Arc<StealJob<T>>,
    /// Chunk ordinal within the job (`lo / chunk_rows`).
    pub(crate) idx: usize,
    pub(crate) lo: usize,
    pub(crate) hi: usize,
    /// `home != executing shard`: a stolen chunk.
    pub(crate) stolen: bool,
}

/// The shared queue of stateless prefill chunks all shards drain.
pub(crate) struct StealPool<T: Scalar> {
    jobs: Mutex<Vec<Arc<StealJob<T>>>>,
}

impl<T: Scalar> StealPool<T> {
    pub(crate) fn new() -> StealPool<T> {
        StealPool {
            jobs: Mutex::new(Vec::new()),
        }
    }

    fn push(&self, job: Arc<StealJob<T>>) {
        lock_healed(&self.jobs).push(job);
    }

    /// Whether every queued chunk has been claimed (in-flight chunks are
    /// finished by the shard that claimed them before it exits).
    pub(crate) fn is_drained(&self) -> bool {
        lock_healed(&self.jobs).is_empty()
    }

    /// Rows still unclaimed per home shard — the router's load signal.
    fn pending_rows_by_home(&self, shards: usize) -> Vec<usize> {
        let mut rows = vec![0usize; shards];
        for job in lock_healed(&self.jobs).iter() {
            rows[job.home] += job.pending_rows();
        }
        rows
    }

    /// Claim one chunk for shard `me`: its own oldest job first; a foreign
    /// (stolen) one only when `allow_steal` — the caller passes its local
    /// scheduler's idleness, so stealing never delays a shard's own work.
    /// Jobs fully claimed (or dead) leave the queue.
    pub(crate) fn claim(&self, me: usize, allow_steal: bool) -> Option<StealChunk<T>> {
        let mut jobs = lock_healed(&self.jobs);
        jobs.retain(|j| !j.is_dead());
        let pos =
            jobs.iter()
                .position(|j| j.home == me)
                .or(if allow_steal && !jobs.is_empty() {
                    Some(0)
                } else {
                    None
                })?;
        let job = Arc::clone(&jobs[pos]);
        let (lo, hi, idx, last) = job.claim_next();
        if last {
            jobs.remove(pos);
        }
        drop(jobs);
        Some(StealChunk {
            stolen: job.home != me,
            job,
            idx,
            lo,
            hi,
        })
    }
}

/// N continuous-batching engines behind one front door — shard-pinned
/// decode sessions, least-loaded routing and work stealing for stateless
/// prefill. See the crate docs for the full routing and stealing policy.
pub struct ShardedServer<T: Scalar> {
    mech: Arc<dyn Attention<T> + Send + Sync>,
    sched: SchedPolicy,
    shards: Vec<AttentionServer<T>>,
    pool: Arc<StealPool<T>>,
    /// Global session id → (owning shard, that shard's local id).
    sessions: Mutex<HashMap<u64, (usize, SessionId)>>,
    next_session: AtomicU64,
    next_job: AtomicU64,
    /// Rotating tie-break for least-loaded prefill routing.
    rr: AtomicU64,
}

impl<T: Scalar> ShardedServer<T> {
    /// Start `shards` continuous engines over one mechanism. The KV byte
    /// budget in `kv` is divided evenly: each shard owns an independent
    /// pool of `budget_bytes / shards` (decode sessions are pinned, so a
    /// shard's pool only ever backs its own sessions).
    pub fn start(
        mech: Arc<dyn Attention<T> + Send + Sync>,
        policy: BatchPolicy,
        sched: SchedPolicy,
        kv: KvConfig,
        shards: usize,
    ) -> ShardedServer<T> {
        ShardedServer::start_with_faults(mech, policy, sched, kv, shards, Vec::new())
    }

    /// [`start`](Self::start) with one engine per host worker thread
    /// (`rayon::current_num_threads()`), the deployment default.
    pub fn start_auto(
        mech: Arc<dyn Attention<T> + Send + Sync>,
        policy: BatchPolicy,
        sched: SchedPolicy,
        kv: KvConfig,
    ) -> ShardedServer<T> {
        ShardedServer::start(mech, policy, sched, kv, rayon::current_num_threads().max(1))
    }

    /// [`start`](Self::start) with a per-shard [`FaultPlan`] (chaos
    /// testing): `plans[i]` fires on shard `i`'s front-door operations —
    /// session traffic routed to it and decode launches it runs. Missing
    /// entries mean no faults on that shard. (Pool prefill bypasses the
    /// shard front doors, so prefill chunks fault only through deadline
    /// expiry and real launch errors.)
    pub fn start_with_faults(
        mech: Arc<dyn Attention<T> + Send + Sync>,
        policy: BatchPolicy,
        sched: SchedPolicy,
        kv: KvConfig,
        shards: usize,
        mut plans: Vec<FaultPlan>,
    ) -> ShardedServer<T> {
        assert!(shards >= 1, "a sharded server needs at least one shard");
        let pool = Arc::new(StealPool::new());
        let mut kv_shard = kv;
        kv_shard.budget_bytes = kv.budget_bytes / shards as u64;
        plans.resize(shards, FaultPlan::new());
        let servers = plans
            .drain(..)
            .enumerate()
            .map(|(i, plan)| {
                let faults = if plan.is_empty() { None } else { Some(plan) };
                AttentionServer::start_continuous_inner(
                    Arc::clone(&mech),
                    policy,
                    sched,
                    dfss_kernels::GpuCtx::a100(),
                    kv_shard,
                    faults,
                    Some((i, Arc::clone(&pool))),
                )
            })
            .collect();
        ShardedServer {
            mech,
            sched,
            shards: servers,
            pool,
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(0),
            next_job: AtomicU64::new(0),
            rr: AtomicU64::new(0),
        }
    }

    /// Number of engine shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Read-only access to shard `i` (metrics, traces, queue depths).
    pub fn shard(&self, i: usize) -> &AttentionServer<T> {
        &self.shards[i]
    }

    /// The shard a session is pinned to — constant for the session's
    /// whole lifetime ([`None`] once closed or never opened).
    pub fn shard_of(&self, session: SessionId) -> Option<usize> {
        lock_healed(&self.sessions)
            .get(&session.0)
            .map(|&(shard, _)| shard)
    }

    /// Least-loaded shard by unclaimed pool rows, rotating ties so a
    /// burst of equal-load submissions spreads round-robin.
    fn least_loaded(&self) -> usize {
        let n = self.shards.len();
        let pending = self.pool.pending_rows_by_home(n);
        let start = self.rr.fetch_add(1, Ordering::Relaxed) as usize % n;
        (0..n)
            .map(|i| (start + i) % n)
            .min_by_key(|&i| pending[i])
            .expect("at least one shard")
    }

    /// Validate and enqueue one stateless prefill request. Chunkable
    /// mechanisms go to the steal pool (least-loaded home, any shard may
    /// execute chunks); non-chunkable ones run whole on the home shard.
    pub fn submit(
        &self,
        q: Matrix<T>,
        k: Matrix<T>,
        v: Matrix<T>,
    ) -> Result<ResponseHandle<T>, ServeError> {
        self.submit_with_deadline(q, k, v, None)
    }

    /// [`submit`](Self::submit) with a deadline: chunks claimed past it
    /// are shed and the handle resolves with
    /// [`ServeError::DeadlineExceeded`]. A job already partially computed
    /// sheds its remaining chunks too — a late job never occupies launches
    /// it cannot use.
    pub fn submit_with_deadline(
        &self,
        q: Matrix<T>,
        k: Matrix<T>,
        v: Matrix<T>,
        deadline: Option<Instant>,
    ) -> Result<ResponseHandle<T>, ServeError> {
        if !self.mech.supports_row_chunking() {
            let home = self.rr.fetch_add(1, Ordering::Relaxed) as usize % self.shards.len();
            return self.shards[home].submit_with_deadline(q, k, v, deadline);
        }
        if let Err(e) = try_check_qkv(self.mech.as_ref(), &q, &k, &v) {
            return Err(ServeError::Rejected(e));
        }
        let home = self.least_loaded();
        let id = self.next_job.fetch_add(1, Ordering::Relaxed);
        let (reply, rx) = mpsc::sync_channel(1);
        let chunk_rows = self.sched.prefill_chunk;
        let n_chunks = q.rows().div_ceil(chunk_rows);
        self.pool.push(Arc::new(StealJob {
            id,
            home,
            state: Mutex::new(StealState {
                next_lo: 0,
                outputs: vec![None; n_chunks],
                done: 0,
                sim_latency_s: 0.0,
                started: None,
                reply: Some(reply),
                dead: false,
            }),
            q,
            k,
            v,
            chunk_rows,
            n_chunks,
            submitted: Instant::now(),
            deadline,
        }));
        Ok(ResponseHandle::from_rx(rx))
    }

    /// Open a decode session, pinning it to `splitmix64(id) % shards` for
    /// life. Admission (widths, per-shard KV budget) runs on the owning
    /// shard; the returned id is global — use it with every later call.
    pub fn open_session(&self, d: usize, d_v: usize) -> Result<SessionId, SessionError> {
        let gid = self.next_session.fetch_add(1, Ordering::Relaxed);
        let shard = (splitmix64(gid) % self.shards.len() as u64) as usize;
        let local = self.shards[shard].open_session(d, d_v)?;
        lock_healed(&self.sessions).insert(gid, (shard, local));
        Ok(SessionId(gid))
    }

    /// Look up a global session, or fail typed.
    fn route(&self, session: SessionId) -> Result<(usize, SessionId), SessionError> {
        lock_healed(&self.sessions)
            .get(&session.0)
            .copied()
            .ok_or(SessionError::UnknownSession(session))
    }

    /// Rewrite shard-local session ids in errors back to the global id —
    /// callers never see a shard's private id space.
    fn reglobal(e: SessionError, session: SessionId) -> SessionError {
        match e {
            SessionError::UnknownSession(_) => SessionError::UnknownSession(session),
            SessionError::Evicted(_) => SessionError::Evicted(session),
            other => other,
        }
    }

    /// Append one position to a session's cache on its owning shard.
    pub fn append(
        &self,
        session: SessionId,
        k_row: Vec<T>,
        v_row: Vec<T>,
    ) -> Result<(), SessionError> {
        let (shard, local) = self.route(session)?;
        self.shards[shard]
            .append(local, k_row, v_row)
            .map_err(|e| ShardedServer::<T>::reglobal(e, session))
    }

    /// Append a block of positions at once on the owning shard.
    pub fn extend(
        &self,
        session: SessionId,
        k: Matrix<T>,
        v: Matrix<T>,
    ) -> Result<(), SessionError> {
        let (shard, local) = self.route(session)?;
        self.shards[shard]
            .extend(local, k, v)
            .map_err(|e| ShardedServer::<T>::reglobal(e, session))
    }

    /// Enqueue one decode step on the session's owning shard — decode is
    /// session-pinned and never stolen, so the step attends over exactly
    /// the pages that shard holds for the session.
    pub fn submit_decode(&self, req: DecodeRequest<T>) -> Result<DecodeHandle<T>, SessionError> {
        self.submit_decode_with_deadline(req, None)
    }

    /// [`submit_decode`](Self::submit_decode) with a deadline.
    pub fn submit_decode_with_deadline(
        &self,
        req: DecodeRequest<T>,
        deadline: Option<Instant>,
    ) -> Result<DecodeHandle<T>, SessionError> {
        let session = req.session;
        let (shard, local) = self.route(session)?;
        self.shards[shard]
            .submit_decode_with_deadline(
                DecodeRequest {
                    session: local,
                    q_row: req.q_row,
                },
                deadline,
            )
            .map_err(|e| ShardedServer::<T>::reglobal(e, session))
    }

    /// Close a session on its owning shard and retire the global id.
    pub fn close_session(&self, session: SessionId) -> Result<(), SessionError> {
        let (shard, local) = self.route(session)?;
        let res = self.shards[shard]
            .close_session(local)
            .map_err(|e| ShardedServer::<T>::reglobal(e, session));
        lock_healed(&self.sessions).remove(&session.0);
        res
    }

    /// Per-shard live counters, in shard order (`GET /metrics` renders
    /// one gauge set per shard from this).
    pub fn stats_snapshot(&self) -> Vec<ServeStats> {
        self.shards.iter().map(|s| s.stats_snapshot()).collect()
    }

    /// Per-shard live queue depths, in shard order.
    pub fn queue_depths(&self) -> Vec<QueueDepths> {
        self.shards.iter().map(|s| s.queue_depths()).collect()
    }

    /// Per-shard scheduler traces, in shard order. Each shard's trace is
    /// deterministic given its own admission order; steal executions are
    /// recorded distinctly on the executing shard.
    pub fn sched_traces(&self) -> Vec<SchedTrace> {
        self.shards.iter().map(|s| s.sched_trace()).collect()
    }

    /// Drain all shards (every queued chunk — own or stolen — runs before
    /// an engine exits) and return their lifetime counters in shard order.
    pub fn shutdown(self) -> Vec<ServeStats> {
        self.shards.into_iter().map(|s| s.shutdown()).collect()
    }
}
