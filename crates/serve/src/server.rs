//! The attention server: admission front door + batcher thread.
//!
//! Prefill requests flow through the shape-bucketed queue exactly as
//! before; decode traffic adds a session registry (synchronous admission
//! checks on the caller's thread), per-session [`KvCache`]s owned by the
//! batcher thread, and a decode queue that coalesces steps from different
//! sessions into one ragged launch per op.
//!
//! **Decode determinism**: a decode step attends over exactly the rows its
//! session had appended before the step was submitted. The batcher
//! enforces this by flushing the decode queue before applying an append or
//! close for a session that already has a queued step — cache mutations
//! can never race ahead of a waiting decode.

use crate::kv::{KvCache, SessionId};
use crate::queue::{Bucket, BucketQueue, QueuedRequest};
use crate::{BatchPolicy, DecodeRequest, ServeError, ServeStats, SessionError};
use dfss_core::engine::{AttentionEngine, DecodeStep, ShapeKey, Ticket};
use dfss_core::mechanism::{try_check_qkv, Attention, RequestError};
use dfss_kernels::GpuCtx;
use dfss_tensor::{Matrix, Scalar};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// One served prefill request, with its latency breakdown.
#[derive(Debug)]
pub struct Served<T: Scalar> {
    /// The attention output, bit-identical to a solo `forward` call.
    pub output: Matrix<T>,
    /// Engine ticket (monotone in launch order across the server's life).
    pub ticket: Ticket,
    /// Shape bucket the request was batched in.
    pub bucket: ShapeKey,
    /// Requests that shared this request's batched launch.
    pub batch_size: usize,
    /// Admission → bucket close (time spent waiting for batch-mates).
    pub queue_wait: std::time::Duration,
    /// Bucket close → outputs ready (host wall-clock of the launches).
    pub service: std::time::Duration,
    /// Admission → response (end-to-end host latency).
    pub latency: std::time::Duration,
    /// Simulated-device latency of the request's whole batch (one launch
    /// per op; every request in the batch waits for the full launch).
    pub sim_latency_s: f64,
}

/// One served decode step, with its latency breakdown.
#[derive(Debug)]
pub struct ServedDecode<T: Scalar> {
    /// The `1 × d_v` output row, bit-identical to a solo decode of the
    /// session's cache.
    pub output: Matrix<T>,
    /// Engine ticket (shared sequence with prefill tickets).
    pub ticket: Ticket,
    /// The session the step decoded.
    pub session: SessionId,
    /// The session's cached length the step attended over.
    pub cached_len: usize,
    /// Concurrent streams that shared the step's ragged launch.
    pub batch_size: usize,
    /// Admission → decode-queue close.
    pub queue_wait: std::time::Duration,
    /// Queue close → outputs ready (host wall-clock of the launches).
    pub service: std::time::Duration,
    /// Admission → response (end-to-end host latency).
    pub latency: std::time::Duration,
    /// Simulated-device latency of the step's whole ragged launch.
    pub sim_latency_s: f64,
}

/// Client-side handle for one submitted prefill request.
#[derive(Debug)]
pub struct ResponseHandle<T: Scalar> {
    rx: Receiver<Result<Served<T>, ServeError>>,
}

impl<T: Scalar> ResponseHandle<T> {
    /// Block until the request is served (or the server stops).
    pub fn wait(self) -> Result<Served<T>, ServeError> {
        match self.rx.recv() {
            Ok(res) => res,
            Err(_) => Err(ServeError::ServerStopped),
        }
    }
}

/// Client-side handle for one submitted decode step.
#[derive(Debug)]
pub struct DecodeHandle<T: Scalar> {
    rx: Receiver<Result<ServedDecode<T>, ServeError>>,
}

impl<T: Scalar> DecodeHandle<T> {
    /// Block until the step is served (or the server stops).
    pub fn wait(self) -> Result<ServedDecode<T>, ServeError> {
        match self.rx.recv() {
            Ok(res) => res,
            Err(_) => Err(ServeError::ServerStopped),
        }
    }
}

type Reply<T> = SyncSender<Result<Served<T>, ServeError>>;
type DecodeReply<T> = SyncSender<Result<ServedDecode<T>, ServeError>>;

/// Synchronous admission view of one session (the caches themselves live
/// on the batcher thread).
struct SessionMeta {
    d: usize,
    d_v: usize,
    len: usize,
}

enum Msg<T: Scalar> {
    Request(QueuedRequest<T, Reply<T>>),
    Open {
        id: u64,
        d: usize,
        d_v: usize,
    },
    Append {
        id: u64,
        k_row: Vec<T>,
        v_row: Vec<T>,
    },
    Extend {
        id: u64,
        k: Matrix<T>,
        v: Matrix<T>,
    },
    Close {
        id: u64,
    },
    Decode {
        id: u64,
        q_row: Vec<T>,
        submitted: Instant,
        reply: DecodeReply<T>,
    },
    Shutdown,
}

/// An async attention server over one mechanism.
///
/// `submit` is the prefill admission front door: it validates the triple
/// against the mechanism's shape constraints on the caller's thread (typed
/// [`RequestError`], never a panic) and enqueues it to the batcher thread,
/// returning a [`ResponseHandle`] immediately. The batcher coalesces
/// same-shape requests per [`BatchPolicy`] and serves each closed bucket as
/// one [`AttentionEngine::flush`] — a single batched launch per op.
///
/// `open_session` / `append` / `submit_decode` / `close_session` are the
/// decode front door: sessions own append-only [`KvCache`]s on the batcher
/// thread, admission checks run synchronously against a shared registry,
/// and queued decode steps close into one
/// [`AttentionEngine::flush_decode`] per batch — a single **ragged** launch
/// per op across all streams, whatever their cached lengths.
pub struct AttentionServer<T: Scalar> {
    mech: Arc<dyn Attention<T> + Send + Sync>,
    tx: Sender<Msg<T>>,
    rejected: Arc<AtomicU64>,
    next_session: AtomicU64,
    sessions: Arc<Mutex<HashMap<u64, SessionMeta>>>,
    worker: Option<JoinHandle<ServeStats>>,
}

impl<T: Scalar> AttentionServer<T> {
    /// Start a server on the paper's evaluation device (A100 simulation).
    pub fn start(
        mech: Arc<dyn Attention<T> + Send + Sync>,
        policy: BatchPolicy,
    ) -> AttentionServer<T> {
        AttentionServer::start_with_ctx(mech, policy, GpuCtx::a100())
    }

    /// Start a server whose engine runs on a caller-provided context
    /// (device config and exec mode carry over).
    pub fn start_with_ctx(
        mech: Arc<dyn Attention<T> + Send + Sync>,
        policy: BatchPolicy,
        ctx: GpuCtx,
    ) -> AttentionServer<T> {
        let (tx, rx) = mpsc::channel::<Msg<T>>();
        let worker_mech = Arc::clone(&mech);
        let worker = std::thread::Builder::new()
            .name("dfss-serve-batcher".into())
            .spawn(move || batcher_loop(worker_mech, policy, ctx, rx))
            .expect("spawn batcher thread");
        AttentionServer {
            mech,
            tx,
            rejected: Arc::new(AtomicU64::new(0)),
            next_session: AtomicU64::new(0),
            sessions: Arc::new(Mutex::new(HashMap::new())),
            worker: Some(worker),
        }
    }

    /// Validate and enqueue one prefill request. Returns immediately; the
    /// output arrives on the handle. Malformed or unservable requests come
    /// back as typed errors without reaching the queue.
    pub fn submit(
        &self,
        q: Matrix<T>,
        k: Matrix<T>,
        v: Matrix<T>,
    ) -> Result<ResponseHandle<T>, RequestError> {
        if let Err(e) = try_check_qkv(self.mech.as_ref(), &q, &k, &v) {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(e);
        }
        // Rendezvous capacity 1: the batcher never blocks sending a
        // response, clients may wait lazily.
        let (reply, rx) = mpsc::sync_channel(1);
        let msg = Msg::Request(QueuedRequest {
            q,
            k,
            v,
            submitted: Instant::now(),
            reply,
        });
        // A dropped batcher surfaces as ServerStopped on wait(); submission
        // itself stays infallible for valid requests.
        let _ = self.tx.send(msg);
        Ok(ResponseHandle { rx })
    }

    /// Open a decode session for keys of width `d` and values of width
    /// `d_v`. The session's KV cache starts empty; prime it with
    /// [`append`](Self::append) / [`extend`](Self::extend) before the first
    /// decode step.
    pub fn open_session(&self, d: usize, d_v: usize) -> Result<SessionId, SessionError> {
        if d == 0 || d_v == 0 {
            return Err(SessionError::Rejected(RequestError::EmptyRequest));
        }
        let id = self.next_session.fetch_add(1, Ordering::Relaxed);
        self.sessions
            .lock()
            .unwrap()
            .insert(id, SessionMeta { d, d_v, len: 0 });
        let _ = self.tx.send(Msg::Open { id, d, d_v });
        Ok(SessionId(id))
    }

    /// Append one position (a key row and a value row) to a session's
    /// cache. Width mismatches are rejected synchronously with a typed
    /// error; the rows themselves land on the batcher thread in submission
    /// order, so a subsequent decode step always sees them.
    pub fn append(
        &self,
        session: SessionId,
        k_row: Vec<T>,
        v_row: Vec<T>,
    ) -> Result<(), SessionError> {
        {
            let mut reg = self.sessions.lock().unwrap();
            let meta = reg
                .get_mut(&session.0)
                .ok_or(SessionError::UnknownSession(session))?;
            if k_row.len() != meta.d || v_row.len() != meta.d_v {
                return Err(SessionError::Rejected(RequestError::DecodeShapeMismatch {
                    reason: format!(
                        "append rows of width ({}, {}) into a ({}, {}) session",
                        k_row.len(),
                        v_row.len(),
                        meta.d,
                        meta.d_v
                    ),
                }));
            }
            meta.len += 1;
        }
        let _ = self.tx.send(Msg::Append {
            id: session.0,
            k_row,
            v_row,
        });
        Ok(())
    }

    /// Append a block of positions at once (prefill priming): `k` is
    /// `rows × d`, `v` is `rows × d_v`.
    pub fn extend(
        &self,
        session: SessionId,
        k: Matrix<T>,
        v: Matrix<T>,
    ) -> Result<(), SessionError> {
        {
            let mut reg = self.sessions.lock().unwrap();
            let meta = reg
                .get_mut(&session.0)
                .ok_or(SessionError::UnknownSession(session))?;
            if k.cols() != meta.d || v.cols() != meta.d_v || k.rows() != v.rows() {
                return Err(SessionError::Rejected(RequestError::DecodeShapeMismatch {
                    reason: format!(
                        "extend with K {}x{} / V {}x{} into a ({}, {}) session",
                        k.rows(),
                        k.cols(),
                        v.rows(),
                        v.cols(),
                        meta.d,
                        meta.d_v
                    ),
                }));
            }
            meta.len += k.rows();
        }
        let _ = self.tx.send(Msg::Extend {
            id: session.0,
            k,
            v,
        });
        Ok(())
    }

    /// Validate and enqueue one decode step. Returns immediately; the
    /// output row arrives on the handle. The step attends over exactly the
    /// rows appended to the session before this call.
    pub fn submit_decode(&self, req: DecodeRequest<T>) -> Result<DecodeHandle<T>, SessionError> {
        {
            let reg = self.sessions.lock().unwrap();
            let meta = reg
                .get(&req.session.0)
                .ok_or(SessionError::UnknownSession(req.session))?;
            if req.q_row.len() != meta.d {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(SessionError::Rejected(RequestError::DecodeShapeMismatch {
                    reason: format!(
                        "query row has {} elements, session width is {}",
                        req.q_row.len(),
                        meta.d
                    ),
                }));
            }
            if meta.len == 0 {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(SessionError::Rejected(RequestError::EmptyRequest));
            }
        }
        let (reply, rx) = mpsc::sync_channel(1);
        let _ = self.tx.send(Msg::Decode {
            id: req.session.0,
            q_row: req.q_row,
            submitted: Instant::now(),
            reply,
        });
        Ok(DecodeHandle { rx })
    }

    /// Close a session and drop its KV cache. Queued decode steps for the
    /// session are flushed first, so nothing already admitted is lost;
    /// subsequent operations on the id get
    /// [`SessionError::UnknownSession`].
    pub fn close_session(&self, session: SessionId) -> Result<(), SessionError> {
        self.sessions
            .lock()
            .unwrap()
            .remove(&session.0)
            .ok_or(SessionError::UnknownSession(session))?;
        let _ = self.tx.send(Msg::Close { id: session.0 });
        Ok(())
    }

    /// Drain every open bucket and queued decode step, stop the batcher and
    /// return lifetime counters.
    pub fn shutdown(mut self) -> ServeStats {
        let _ = self.tx.send(Msg::Shutdown);
        let mut stats = match self.worker.take() {
            Some(w) => w.join().unwrap_or_default(),
            None => ServeStats::default(),
        };
        stats.rejected = self.rejected.load(Ordering::Relaxed);
        stats
    }
}

impl<T: Scalar> Drop for AttentionServer<T> {
    fn drop(&mut self) {
        if let Some(w) = self.worker.take() {
            let _ = self.tx.send(Msg::Shutdown);
            let _ = w.join();
        }
    }
}

/// One queued decode step on the batcher thread.
struct PendingDecode<T: Scalar> {
    id: u64,
    q_row: Vec<T>,
    submitted: Instant,
    reply: DecodeReply<T>,
}

/// The batcher thread's session + decode state.
struct DecodeState<T: Scalar> {
    caches: HashMap<u64, KvCache<T>>,
    pending: Vec<PendingDecode<T>>,
    /// Running total of cached bytes across all open sessions.
    kv_bytes: u64,
}

impl<T: Scalar> DecodeState<T> {
    fn new() -> DecodeState<T> {
        DecodeState {
            caches: HashMap::new(),
            pending: Vec::new(),
            kv_bytes: 0,
        }
    }

    fn next_deadline(&self, policy: &BatchPolicy) -> Option<Instant> {
        self.pending
            .iter()
            .map(|p| p.submitted + policy.max_delay)
            .min()
    }

    fn has_pending_for(&self, id: u64) -> bool {
        self.pending.iter().any(|p| p.id == id)
    }
}

/// The batcher thread: shape-bucketed prefill admission plus the decode
/// queue, max-batch + deadline close policy for both, one engine flush per
/// closed batch.
fn batcher_loop<T: Scalar>(
    mech: Arc<dyn Attention<T> + Send + Sync>,
    policy: BatchPolicy,
    ctx: GpuCtx,
    rx: Receiver<Msg<T>>,
) -> ServeStats {
    let mut engine = AttentionEngine::with_ctx(mech.as_ref(), ctx);
    let mut queue: BucketQueue<T, Reply<T>> = BucketQueue::new(policy);
    let mut decode = DecodeState::new();
    let mut stats = ServeStats::default();
    let mut stopping = false;
    while !stopping {
        let deadline = match (queue.next_deadline(), decode.next_deadline(&policy)) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let msg = match deadline {
            None => match rx.recv() {
                Ok(m) => Some(m),
                Err(_) => break, // all senders gone: drain and stop
            },
            Some(deadline) => {
                let timeout = deadline.saturating_duration_since(Instant::now());
                match rx.recv_timeout(timeout) {
                    Ok(m) => Some(m),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        };
        // Greedily drain everything already waiting in the channel before
        // closing any bucket: when a launch kept the batcher busy, the
        // backlog that built up behind it coalesces into full batches
        // instead of trickling out one deadline-expired request at a time.
        let mut next = msg;
        loop {
            match next {
                Some(Msg::Request(req)) => {
                    if let Some(full) = queue.push(req) {
                        serve_bucket(&mut engine, full, &mut stats);
                    }
                }
                Some(Msg::Open { id, d, d_v }) => {
                    decode.caches.insert(id, KvCache::new(d, d_v));
                    stats.sessions_opened += 1;
                }
                Some(Msg::Append { id, k_row, v_row }) => {
                    // Determinism: a queued decode for this session must
                    // launch against the cache as of its submission.
                    if decode.has_pending_for(id) {
                        serve_decode(&mut engine, &mut decode, &mut stats);
                    }
                    if let Some(cache) = decode.caches.get_mut(&id) {
                        if cache.append(&k_row, &v_row).is_ok() {
                            stats.kv_rows_appended += 1;
                            decode.kv_bytes += ((k_row.len() + v_row.len()) * T::BYTES) as u64;
                            stats.kv_bytes_peak = stats.kv_bytes_peak.max(decode.kv_bytes);
                        }
                    }
                }
                Some(Msg::Extend { id, k, v }) => {
                    if decode.has_pending_for(id) {
                        serve_decode(&mut engine, &mut decode, &mut stats);
                    }
                    if let Some(cache) = decode.caches.get_mut(&id) {
                        let rows = k.rows();
                        let bytes = ((k.len() + v.len()) * T::BYTES) as u64;
                        if cache.extend(&k, &v).is_ok() {
                            stats.kv_rows_appended += rows as u64;
                            decode.kv_bytes += bytes;
                            stats.kv_bytes_peak = stats.kv_bytes_peak.max(decode.kv_bytes);
                        }
                    }
                }
                Some(Msg::Close { id }) => {
                    if decode.has_pending_for(id) {
                        serve_decode(&mut engine, &mut decode, &mut stats);
                    }
                    if let Some(cache) = decode.caches.remove(&id) {
                        decode.kv_bytes = decode.kv_bytes.saturating_sub(cache.bytes());
                        stats.sessions_closed += 1;
                    }
                }
                Some(Msg::Decode {
                    id,
                    q_row,
                    submitted,
                    reply,
                }) => {
                    decode.pending.push(PendingDecode {
                        id,
                        q_row,
                        submitted,
                        reply,
                    });
                    if decode.pending.len() >= policy.max_batch {
                        serve_decode(&mut engine, &mut decode, &mut stats);
                    }
                }
                Some(Msg::Shutdown) => {
                    stopping = true;
                    break;
                }
                None => break,
            }
            next = rx.try_recv().ok();
        }
        let now = Instant::now();
        for due in queue.take_due(now) {
            serve_bucket(&mut engine, due, &mut stats);
        }
        if decode
            .next_deadline(&policy)
            .is_some_and(|deadline| deadline <= now)
        {
            serve_decode(&mut engine, &mut decode, &mut stats);
        }
    }
    for bucket in queue.take_all() {
        serve_bucket(&mut engine, bucket, &mut stats);
    }
    serve_decode(&mut engine, &mut decode, &mut stats);
    stats
}

/// Launch one closed prefill bucket: engine submit × B, one flush (one
/// batched launch per op), reply per request with its latency breakdown.
fn serve_bucket<T: Scalar>(
    engine: &mut AttentionEngine<'_, T>,
    bucket: Bucket<T, Reply<T>>,
    stats: &mut ServeStats,
) {
    let closed_at = Instant::now();
    let mut waiting = Vec::with_capacity(bucket.requests.len());
    for req in bucket.requests {
        match engine.submit(req.q, req.k, req.v) {
            Ok(_) => waiting.push((req.reply, req.submitted)),
            Err(e) => {
                // Admission already validated; a typed reply (not a panic)
                // keeps the batcher alive if constraints ever diverge.
                let _ = req.reply.send(Err(ServeError::Rejected(e)));
            }
        }
    }
    let results = engine.flush();
    let service = closed_at.elapsed();
    stats.batches += 1;
    stats.max_batch = stats.max_batch.max(results.len());
    stats.total_sim_latency_s += engine.last_flush().sim_latency_s();
    // Flush results come back in ticket (= submission) order, matching
    // `waiting`.
    for (res, (reply, submitted)) in results.into_iter().zip(waiting) {
        stats.served += 1;
        let served = Served {
            output: res
                .output
                .expect("serving engines run in exec mode and materialise outputs"),
            ticket: res.ticket,
            bucket: res.bucket,
            batch_size: res.batch_size,
            queue_wait: closed_at.saturating_duration_since(submitted),
            service,
            latency: submitted.elapsed(),
            sim_latency_s: res.sim_latency_s,
        };
        let _ = reply.send(Ok(served));
    }
    // Bound the owned context: the timeline's job is done once the flush
    // report is folded into the stats.
    engine.reset_timeline();
}

/// Launch the queued decode steps as one ragged flush (one launch per op
/// across all streams), reply per step with its latency breakdown. A call
/// with nothing queued is a no-op.
fn serve_decode<T: Scalar>(
    engine: &mut AttentionEngine<'_, T>,
    decode: &mut DecodeState<T>,
    stats: &mut ServeStats,
) {
    if decode.pending.is_empty() {
        return;
    }
    let closed_at = Instant::now();
    let pending = std::mem::take(&mut decode.pending);
    // Admission validated widths and non-empty caches; a session whose
    // cache vanished between admission and launch (registry/batcher race on
    // a close) gets a typed rejection, not a panic.
    let mut live: Vec<&PendingDecode<T>> = Vec::with_capacity(pending.len());
    for p in &pending {
        match decode.caches.get(&p.id) {
            Some(cache) if !cache.is_empty() => live.push(p),
            _ => {
                let _ = p
                    .reply
                    .send(Err(ServeError::Rejected(RequestError::EmptyRequest)));
            }
        }
    }
    if live.is_empty() {
        return;
    }
    let steps: Vec<DecodeStep<'_, T>> = live
        .iter()
        .map(|p| {
            let cache = &decode.caches[&p.id];
            DecodeStep {
                q_row: &p.q_row,
                k_rows: cache.k_rows(),
                v_rows: cache.v_rows(),
                len: cache.len(),
                d: cache.d(),
                d_v: cache.d_v(),
            }
        })
        .collect();
    match engine.flush_decode(&steps) {
        Ok(results) => {
            let service = closed_at.elapsed();
            // One "batch" per ragged launch group: the engine buckets steps
            // by (d, d_v), so a flush over mixed-width sessions runs (and
            // counts) several launches, each sized by its own streams.
            for bucket in &engine.last_decode().buckets {
                stats.decode_batches += 1;
                stats.max_decode_batch = stats.max_decode_batch.max(bucket.streams);
            }
            stats.total_sim_latency_s += engine.last_decode().sim_latency_s();
            // Results come back in step order, matching `live`.
            for (res, p) in results.into_iter().zip(&live) {
                stats.decode_steps += 1;
                let served = ServedDecode {
                    output: res
                        .output
                        .expect("serving engines run in exec mode and materialise outputs"),
                    ticket: res.ticket,
                    session: SessionId(p.id),
                    cached_len: res.cached_len,
                    batch_size: res.batch_size,
                    queue_wait: closed_at.saturating_duration_since(p.submitted),
                    service,
                    latency: p.submitted.elapsed(),
                    sim_latency_s: res.sim_latency_s,
                };
                let _ = p.reply.send(Ok(served));
            }
        }
        Err(e) => {
            for p in &live {
                let _ = p.reply.send(Err(ServeError::Rejected(e.clone())));
            }
        }
    }
    engine.reset_timeline();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SessionError;
    use dfss_core::dfss::DfssAttention;
    use dfss_core::full::FullAttention;
    use dfss_nmsparse::NmPattern;
    use dfss_tensor::Rng;
    use std::time::Duration;

    fn request(n: usize, d: usize, rng: &mut Rng) -> (Matrix<f32>, Matrix<f32>, Matrix<f32>) {
        (
            Matrix::random_normal(n, d, 0.0, 1.0, &mut *rng),
            Matrix::random_normal(n, d, 0.0, 1.0, &mut *rng),
            Matrix::random_normal(n, d, 0.0, 1.0, &mut *rng),
        )
    }

    fn row(d: usize, rng: &mut Rng) -> Vec<f32> {
        (0..d).map(|_| rng.normal(0.0, 1.0)).collect()
    }

    #[test]
    fn served_outputs_are_bit_identical_to_solo_forward() {
        let mech: Arc<dyn Attention<f32> + Send + Sync> =
            Arc::new(DfssAttention::new(NmPattern::P1_2));
        let server = AttentionServer::start(
            Arc::clone(&mech),
            BatchPolicy::batched(4, Duration::from_millis(5)),
        );
        let mut rng = Rng::new(3);
        let mut handles = Vec::new();
        let mut solo = Vec::new();
        for _ in 0..8 {
            let (q, k, v) = request(32, 16, &mut rng);
            let mut sctx = GpuCtx::a100();
            solo.push(mech.forward(&mut sctx, &q, &k, &v));
            handles.push(server.submit(q, k, v).unwrap());
        }
        for (i, (h, want)) in handles.into_iter().zip(&solo).enumerate() {
            let served = h.wait().expect("served");
            let same = served
                .output
                .as_slice()
                .iter()
                .zip(want.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "request {i} diverged from solo forward");
            assert!(served.batch_size >= 1 && served.batch_size <= 4);
            assert!(served.sim_latency_s > 0.0);
            assert!(served.latency >= served.service);
        }
        let stats = server.shutdown();
        assert_eq!(stats.served, 8);
        assert!(stats.batches >= 2); // max_batch 4 caps every launch
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn max_batch_fills_before_deadline() {
        let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(FullAttention);
        // Deadline far away: only the max-batch close can fire quickly.
        let server = AttentionServer::start(
            Arc::clone(&mech),
            BatchPolicy::batched(3, Duration::from_secs(600)),
        );
        let mut rng = Rng::new(5);
        let mut handles = Vec::new();
        for _ in 0..3 {
            let (q, k, v) = request(16, 8, &mut rng);
            handles.push(server.submit(q, k, v).unwrap());
        }
        for h in handles {
            let served = h.wait().expect("served");
            assert_eq!(served.batch_size, 3);
        }
        let stats = server.shutdown();
        assert_eq!((stats.served, stats.batches), (3, 1));
        assert_eq!(stats.max_batch, 3);
    }

    #[test]
    fn deadline_closes_partial_buckets() {
        let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(FullAttention);
        let server = AttentionServer::start(
            Arc::clone(&mech),
            BatchPolicy::batched(1000, Duration::from_millis(10)),
        );
        let mut rng = Rng::new(7);
        let (q, k, v) = request(16, 8, &mut rng);
        let t0 = Instant::now();
        let served = server.submit(q, k, v).unwrap().wait().expect("served");
        assert!(
            t0.elapsed() >= Duration::from_millis(10),
            "closed too early"
        );
        assert_eq!(served.batch_size, 1);
        assert!(served.queue_wait >= Duration::from_millis(9));
        let _ = server.shutdown();
    }

    #[test]
    fn heterogeneous_shapes_never_share_a_launch() {
        let mech: Arc<dyn Attention<f32> + Send + Sync> =
            Arc::new(DfssAttention::new(NmPattern::P1_2));
        let server = AttentionServer::start(
            Arc::clone(&mech),
            BatchPolicy::batched(8, Duration::from_millis(5)),
        );
        let mut rng = Rng::new(9);
        let mut handles = Vec::new();
        for i in 0..6 {
            let n = if i % 2 == 0 { 32 } else { 64 };
            let (q, k, v) = request(n, 8, &mut rng);
            handles.push((n, server.submit(q, k, v).unwrap()));
        }
        for (n, h) in handles {
            let served = h.wait().expect("served");
            assert_eq!(served.bucket.n, n);
            assert_eq!(served.batch_size, 3);
            assert_eq!(served.output.rows(), n);
        }
        let stats = server.shutdown();
        assert_eq!((stats.served, stats.batches), (6, 2));
    }

    #[test]
    fn bad_requests_get_typed_errors_and_server_survives() {
        let mech: Arc<dyn Attention<f32> + Send + Sync> =
            Arc::new(DfssAttention::new(NmPattern::P1_2));
        let server = AttentionServer::start(Arc::clone(&mech), BatchPolicy::per_request());
        // n = 31 violates the 1:2 group alignment.
        let q = Matrix::<f32>::zeros(31, 8);
        let err = server.submit(q.clone(), q.clone(), q.clone()).unwrap_err();
        assert!(matches!(err, RequestError::Unsupported { .. }));
        // K mismatch.
        let q32 = Matrix::<f32>::zeros(32, 8);
        let k_bad = Matrix::<f32>::zeros(16, 8);
        let err = server.submit(q32.clone(), k_bad, q32.clone()).unwrap_err();
        assert!(matches!(err, RequestError::KShapeMismatch { .. }));
        // The server still serves valid traffic afterwards.
        let mut rng = Rng::new(11);
        let (q, k, v) = request(32, 8, &mut rng);
        let served = server.submit(q, k, v).unwrap().wait().expect("served");
        assert_eq!(served.batch_size, 1);
        let stats = server.shutdown();
        assert_eq!((stats.served, stats.rejected), (1, 2));
    }

    #[test]
    fn shutdown_drains_open_buckets() {
        let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(FullAttention);
        // Deadline far in the future: only the shutdown drain can serve.
        let server = AttentionServer::start(
            Arc::clone(&mech),
            BatchPolicy::batched(1000, Duration::from_secs(600)),
        );
        let mut rng = Rng::new(13);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let (q, k, v) = request(16, 8, &mut rng);
            handles.push(server.submit(q, k, v).unwrap());
        }
        let stats = server.shutdown();
        assert_eq!((stats.served, stats.batches), (4, 1));
        for h in handles {
            assert!(h.wait().is_ok());
        }
    }

    #[test]
    fn decode_steps_batch_across_sessions_and_match_solo_decode() {
        let mech: Arc<dyn Attention<f32> + Send + Sync> =
            Arc::new(DfssAttention::new(NmPattern::P1_2));
        let server = AttentionServer::start(
            Arc::clone(&mech),
            BatchPolicy::batched(3, Duration::from_secs(600)),
        );
        let mut rng = Rng::new(17);
        let (d, d_v) = (8usize, 8usize);
        // Three sessions with different (and misaligned) cached lengths.
        let lens = [5usize, 12, 9];
        let mut sessions = Vec::new();
        let mut caches = Vec::new();
        for &len in &lens {
            let s = server.open_session(d, d_v).unwrap();
            let k = Matrix::<f32>::random_normal(len, d, 0.0, 1.0, &mut rng);
            let v = Matrix::<f32>::random_normal(len, d_v, 0.0, 1.0, &mut rng);
            server.extend(s, k.clone(), v.clone()).unwrap();
            sessions.push(s);
            caches.push((k, v));
        }
        let q_rows: Vec<Vec<f32>> = lens.iter().map(|_| row(d, &mut rng)).collect();
        // max_batch = 3: the third submission closes the decode batch.
        let handles: Vec<DecodeHandle<f32>> = sessions
            .iter()
            .zip(&q_rows)
            .map(|(&s, q)| {
                server
                    .submit_decode(DecodeRequest {
                        session: s,
                        q_row: q.clone(),
                    })
                    .unwrap()
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let served = h.wait().expect("served");
            assert_eq!(served.batch_size, 3, "steps must share one ragged launch");
            assert_eq!(served.cached_len, lens[i]);
            assert_eq!(served.session, sessions[i]);
            assert!(served.sim_latency_s > 0.0);
            let mut sctx = GpuCtx::a100();
            let q_row = Matrix::from_vec(1, d, q_rows[i].clone());
            let want = mech.decode(&mut sctx, &q_row, &caches[i].0, &caches[i].1);
            let same = served
                .output
                .as_slice()
                .iter()
                .zip(want.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "stream {i} diverged from solo decode");
        }
        let stats = server.shutdown();
        assert_eq!((stats.decode_steps, stats.decode_batches), (3, 1));
        assert_eq!(stats.max_decode_batch, 3);
        assert_eq!(stats.sessions_opened, 3);
        assert_eq!(stats.kv_rows_appended, 26);
        assert_eq!(stats.kv_bytes_peak, 26 * (8 + 8) * 4);
    }

    #[test]
    fn appends_after_a_queued_decode_do_not_leak_into_it() {
        // The decode step must see the cache as of its submission even if
        // an append for the same session arrives while it waits for
        // batch-mates.
        let mech: Arc<dyn Attention<f32> + Send + Sync> =
            Arc::new(DfssAttention::new(NmPattern::P1_2));
        let server = AttentionServer::start(
            Arc::clone(&mech),
            BatchPolicy::batched(1000, Duration::from_secs(600)),
        );
        let mut rng = Rng::new(19);
        let (d, d_v) = (8usize, 8usize);
        let s = server.open_session(d, d_v).unwrap();
        let k = Matrix::<f32>::random_normal(6, d, 0.0, 1.0, &mut rng);
        let v = Matrix::<f32>::random_normal(6, d_v, 0.0, 1.0, &mut rng);
        server.extend(s, k.clone(), v.clone()).unwrap();
        let q = row(d, &mut rng);
        let handle = server
            .submit_decode(DecodeRequest {
                session: s,
                q_row: q.clone(),
            })
            .unwrap();
        // This append forces the queued step to flush against the 6-row
        // cache before the 7th row lands.
        server
            .append(s, row(d, &mut rng), row(d_v, &mut rng))
            .unwrap();
        let served = handle.wait().expect("served");
        assert_eq!(served.cached_len, 6);
        let mut sctx = GpuCtx::a100();
        let want = mech.decode(&mut sctx, &Matrix::from_vec(1, d, q), &k, &v);
        let same = served
            .output
            .as_slice()
            .iter()
            .zip(want.as_slice())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "queued decode saw appended rows");
        let _ = server.shutdown();
    }

    #[test]
    fn session_front_door_rejects_bad_operations() {
        let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(FullAttention);
        let server = AttentionServer::start(Arc::clone(&mech), BatchPolicy::per_request());
        let ghost = SessionId(999);
        assert_eq!(
            server
                .append(ghost, vec![0.0; 4], vec![0.0; 4])
                .unwrap_err(),
            SessionError::UnknownSession(ghost)
        );
        let s = server.open_session(4, 4).unwrap();
        // Wrong widths.
        assert!(matches!(
            server.append(s, vec![0.0; 3], vec![0.0; 4]).unwrap_err(),
            SessionError::Rejected(RequestError::DecodeShapeMismatch { .. })
        ));
        // Decode against an empty cache.
        assert!(matches!(
            server
                .submit_decode(DecodeRequest {
                    session: s,
                    q_row: vec![0.0; 4]
                })
                .unwrap_err(),
            SessionError::Rejected(RequestError::EmptyRequest)
        ));
        // Close, then everything is unknown.
        server.close_session(s).unwrap();
        assert_eq!(
            server.close_session(s).unwrap_err(),
            SessionError::UnknownSession(s)
        );
        let stats = server.shutdown();
        assert_eq!((stats.sessions_opened, stats.sessions_closed), (1, 1));
        assert_eq!(stats.decode_steps, 0);
    }

    #[test]
    fn shutdown_drains_queued_decode_steps() {
        let mech: Arc<dyn Attention<f32> + Send + Sync> =
            Arc::new(DfssAttention::new(NmPattern::P1_2));
        let server = AttentionServer::start(
            Arc::clone(&mech),
            BatchPolicy::batched(1000, Duration::from_secs(600)),
        );
        let mut rng = Rng::new(23);
        let s = server.open_session(8, 8).unwrap();
        server
            .extend(
                s,
                Matrix::random_normal(4, 8, 0.0, 1.0, &mut rng),
                Matrix::random_normal(4, 8, 0.0, 1.0, &mut rng),
            )
            .unwrap();
        let handle = server
            .submit_decode(DecodeRequest {
                session: s,
                q_row: row(8, &mut rng),
            })
            .unwrap();
        let stats = server.shutdown();
        assert_eq!((stats.decode_steps, stats.decode_batches), (1, 1));
        assert!(handle.wait().is_ok());
    }

    #[test]
    fn mixed_width_decode_flush_counts_per_launch_batches() {
        // Two sessions with different head widths land in separate (d, d_v)
        // buckets of the same flush: stats must count one batch per ragged
        // launch group, each sized by its own streams — not one flush-wide
        // blob.
        let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(FullAttention);
        let server = AttentionServer::start(
            Arc::clone(&mech),
            BatchPolicy::batched(2, Duration::from_secs(600)),
        );
        let mut rng = Rng::new(29);
        let mut handles = Vec::new();
        for d in [4usize, 8] {
            let s = server.open_session(d, d).unwrap();
            server
                .extend(
                    s,
                    Matrix::random_normal(5, d, 0.0, 1.0, &mut rng),
                    Matrix::random_normal(5, d, 0.0, 1.0, &mut rng),
                )
                .unwrap();
            handles.push(
                server
                    .submit_decode(DecodeRequest {
                        session: s,
                        q_row: row(d, &mut rng),
                    })
                    .unwrap(),
            );
        }
        for h in handles {
            let served = h.wait().expect("served");
            assert_eq!(served.batch_size, 1, "each width is its own launch");
        }
        let stats = server.shutdown();
        assert_eq!(stats.decode_steps, 2);
        assert_eq!(stats.decode_batches, 2, "one batch per ragged launch");
        assert_eq!(stats.max_decode_batch, 1);
    }

    #[test]
    fn idle_server_records_no_batches() {
        // Deadline-close with an empty queue must be a no-op: a server that
        // saw no traffic reports zero launches of either kind.
        let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(FullAttention);
        let server: AttentionServer<f32> = AttentionServer::start(
            Arc::clone(&mech),
            BatchPolicy::batched(4, Duration::from_millis(1)),
        );
        std::thread::sleep(Duration::from_millis(20));
        let stats = server.shutdown();
        assert_eq!((stats.batches, stats.decode_batches), (0, 0));
        assert_eq!(stats.total_sim_latency_s, 0.0);
    }
}
