//! The attention server: admission front door + batcher thread.

use crate::queue::{Bucket, BucketQueue, QueuedRequest};
use crate::{BatchPolicy, ServeError, ServeStats};
use dfss_core::engine::{AttentionEngine, ShapeKey, Ticket};
use dfss_core::mechanism::{try_check_qkv, Attention, RequestError};
use dfss_kernels::GpuCtx;
use dfss_tensor::{Matrix, Scalar};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// One served request, with its latency breakdown.
#[derive(Debug)]
pub struct Served<T: Scalar> {
    /// The attention output, bit-identical to a solo `forward` call.
    pub output: Matrix<T>,
    /// Engine ticket (monotone in launch order across the server's life).
    pub ticket: Ticket,
    /// Shape bucket the request was batched in.
    pub bucket: ShapeKey,
    /// Requests that shared this request's batched launch.
    pub batch_size: usize,
    /// Admission → bucket close (time spent waiting for batch-mates).
    pub queue_wait: std::time::Duration,
    /// Bucket close → outputs ready (host wall-clock of the launches).
    pub service: std::time::Duration,
    /// Admission → response (end-to-end host latency).
    pub latency: std::time::Duration,
    /// Simulated-device latency of the request's whole batch (one launch
    /// per op; every request in the batch waits for the full launch).
    pub sim_latency_s: f64,
}

/// Client-side handle for one submitted request.
#[derive(Debug)]
pub struct ResponseHandle<T: Scalar> {
    rx: Receiver<Result<Served<T>, ServeError>>,
}

impl<T: Scalar> ResponseHandle<T> {
    /// Block until the request is served (or the server stops).
    pub fn wait(self) -> Result<Served<T>, ServeError> {
        match self.rx.recv() {
            Ok(res) => res,
            Err(_) => Err(ServeError::ServerStopped),
        }
    }
}

type Reply<T> = SyncSender<Result<Served<T>, ServeError>>;

enum Msg<T: Scalar> {
    Request(QueuedRequest<T, Reply<T>>),
    Shutdown,
}

/// An async attention server over one mechanism.
///
/// `submit` is the admission front door: it validates the triple against
/// the mechanism's shape constraints on the caller's thread (typed
/// [`RequestError`], never a panic) and enqueues it to the batcher thread,
/// returning a [`ResponseHandle`] immediately. The batcher coalesces
/// same-shape requests per [`BatchPolicy`] and serves each closed bucket as
/// one [`AttentionEngine::flush`] — a single batched launch per op.
pub struct AttentionServer<T: Scalar> {
    mech: Arc<dyn Attention<T> + Send + Sync>,
    tx: Sender<Msg<T>>,
    rejected: Arc<AtomicU64>,
    worker: Option<JoinHandle<ServeStats>>,
}

impl<T: Scalar> AttentionServer<T> {
    /// Start a server on the paper's evaluation device (A100 simulation).
    pub fn start(
        mech: Arc<dyn Attention<T> + Send + Sync>,
        policy: BatchPolicy,
    ) -> AttentionServer<T> {
        AttentionServer::start_with_ctx(mech, policy, GpuCtx::a100())
    }

    /// Start a server whose engine runs on a caller-provided context
    /// (device config and exec mode carry over).
    pub fn start_with_ctx(
        mech: Arc<dyn Attention<T> + Send + Sync>,
        policy: BatchPolicy,
        ctx: GpuCtx,
    ) -> AttentionServer<T> {
        let (tx, rx) = mpsc::channel::<Msg<T>>();
        let worker_mech = Arc::clone(&mech);
        let worker = std::thread::Builder::new()
            .name("dfss-serve-batcher".into())
            .spawn(move || batcher_loop(worker_mech, policy, ctx, rx))
            .expect("spawn batcher thread");
        AttentionServer {
            mech,
            tx,
            rejected: Arc::new(AtomicU64::new(0)),
            worker: Some(worker),
        }
    }

    /// Validate and enqueue one request. Returns immediately; the output
    /// arrives on the handle. Malformed or unservable requests come back
    /// as typed errors without reaching the queue.
    pub fn submit(
        &self,
        q: Matrix<T>,
        k: Matrix<T>,
        v: Matrix<T>,
    ) -> Result<ResponseHandle<T>, RequestError> {
        if let Err(e) = try_check_qkv(self.mech.as_ref(), &q, &k, &v) {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(e);
        }
        // Rendezvous capacity 1: the batcher never blocks sending a
        // response, clients may wait lazily.
        let (reply, rx) = mpsc::sync_channel(1);
        let msg = Msg::Request(QueuedRequest {
            q,
            k,
            v,
            submitted: Instant::now(),
            reply,
        });
        // A dropped batcher surfaces as ServerStopped on wait(); submission
        // itself stays infallible for valid requests.
        let _ = self.tx.send(msg);
        Ok(ResponseHandle { rx })
    }

    /// Drain every open bucket, stop the batcher and return lifetime
    /// counters.
    pub fn shutdown(mut self) -> ServeStats {
        let _ = self.tx.send(Msg::Shutdown);
        let mut stats = match self.worker.take() {
            Some(w) => w.join().unwrap_or_default(),
            None => ServeStats::default(),
        };
        stats.rejected = self.rejected.load(Ordering::Relaxed);
        stats
    }
}

impl<T: Scalar> Drop for AttentionServer<T> {
    fn drop(&mut self) {
        if let Some(w) = self.worker.take() {
            let _ = self.tx.send(Msg::Shutdown);
            let _ = w.join();
        }
    }
}

/// The batcher thread: shape-bucketed admission, max-batch + deadline close
/// policy, one engine flush per closed bucket.
fn batcher_loop<T: Scalar>(
    mech: Arc<dyn Attention<T> + Send + Sync>,
    policy: BatchPolicy,
    ctx: GpuCtx,
    rx: Receiver<Msg<T>>,
) -> ServeStats {
    let mut engine = AttentionEngine::with_ctx(mech.as_ref(), ctx);
    let mut queue: BucketQueue<T, Reply<T>> = BucketQueue::new(policy);
    let mut stats = ServeStats::default();
    let mut stopping = false;
    while !stopping {
        let msg = match queue.next_deadline() {
            None => match rx.recv() {
                Ok(m) => Some(m),
                Err(_) => break, // all senders gone: drain and stop
            },
            Some(deadline) => {
                let timeout = deadline.saturating_duration_since(Instant::now());
                match rx.recv_timeout(timeout) {
                    Ok(m) => Some(m),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        };
        // Greedily drain everything already waiting in the channel before
        // closing any bucket: when a launch kept the batcher busy, the
        // backlog that built up behind it coalesces into full batches
        // instead of trickling out one deadline-expired request at a time.
        let mut next = msg;
        loop {
            match next {
                Some(Msg::Request(req)) => {
                    if let Some(full) = queue.push(req) {
                        serve_bucket(&mut engine, full, &mut stats);
                    }
                }
                Some(Msg::Shutdown) => {
                    stopping = true;
                    break;
                }
                None => break,
            }
            next = rx.try_recv().ok();
        }
        for due in queue.take_due(Instant::now()) {
            serve_bucket(&mut engine, due, &mut stats);
        }
    }
    for bucket in queue.take_all() {
        serve_bucket(&mut engine, bucket, &mut stats);
    }
    stats
}

/// Launch one closed bucket: engine submit × B, one flush (one batched
/// launch per op), reply per request with its latency breakdown.
fn serve_bucket<T: Scalar>(
    engine: &mut AttentionEngine<'_, T>,
    bucket: Bucket<T, Reply<T>>,
    stats: &mut ServeStats,
) {
    let closed_at = Instant::now();
    let mut waiting = Vec::with_capacity(bucket.requests.len());
    for req in bucket.requests {
        match engine.submit(req.q, req.k, req.v) {
            Ok(_) => waiting.push((req.reply, req.submitted)),
            Err(e) => {
                // Admission already validated; a typed reply (not a panic)
                // keeps the batcher alive if constraints ever diverge.
                let _ = req.reply.send(Err(ServeError::Rejected(e)));
            }
        }
    }
    let results = engine.flush();
    let service = closed_at.elapsed();
    stats.batches += 1;
    stats.max_batch = stats.max_batch.max(results.len());
    stats.total_sim_latency_s += engine.last_flush().sim_latency_s();
    // Flush results come back in ticket (= submission) order, matching
    // `waiting`.
    for (res, (reply, submitted)) in results.into_iter().zip(waiting) {
        stats.served += 1;
        let served = Served {
            output: res
                .output
                .expect("serving engines run in exec mode and materialise outputs"),
            ticket: res.ticket,
            bucket: res.bucket,
            batch_size: res.batch_size,
            queue_wait: closed_at.saturating_duration_since(submitted),
            service,
            latency: submitted.elapsed(),
            sim_latency_s: res.sim_latency_s,
        };
        let _ = reply.send(Ok(served));
    }
    // Bound the owned context: the timeline's job is done once the flush
    // report is folded into the stats.
    engine.reset_timeline();
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfss_core::dfss::DfssAttention;
    use dfss_core::full::FullAttention;
    use dfss_nmsparse::NmPattern;
    use dfss_tensor::Rng;
    use std::time::Duration;

    fn request(n: usize, d: usize, rng: &mut Rng) -> (Matrix<f32>, Matrix<f32>, Matrix<f32>) {
        (
            Matrix::random_normal(n, d, 0.0, 1.0, rng),
            Matrix::random_normal(n, d, 0.0, 1.0, rng),
            Matrix::random_normal(n, d, 0.0, 1.0, rng),
        )
    }

    #[test]
    fn served_outputs_are_bit_identical_to_solo_forward() {
        let mech: Arc<dyn Attention<f32> + Send + Sync> =
            Arc::new(DfssAttention::new(NmPattern::P1_2));
        let server = AttentionServer::start(
            Arc::clone(&mech),
            BatchPolicy::batched(4, Duration::from_millis(5)),
        );
        let mut rng = Rng::new(3);
        let mut handles = Vec::new();
        let mut solo = Vec::new();
        for _ in 0..8 {
            let (q, k, v) = request(32, 16, &mut rng);
            let mut sctx = GpuCtx::a100();
            solo.push(mech.forward(&mut sctx, &q, &k, &v));
            handles.push(server.submit(q, k, v).unwrap());
        }
        for (i, (h, want)) in handles.into_iter().zip(&solo).enumerate() {
            let served = h.wait().expect("served");
            let same = served
                .output
                .as_slice()
                .iter()
                .zip(want.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "request {i} diverged from solo forward");
            assert!(served.batch_size >= 1 && served.batch_size <= 4);
            assert!(served.sim_latency_s > 0.0);
            assert!(served.latency >= served.service);
        }
        let stats = server.shutdown();
        assert_eq!(stats.served, 8);
        assert!(stats.batches >= 2); // max_batch 4 caps every launch
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn max_batch_fills_before_deadline() {
        let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(FullAttention);
        // Deadline far away: only the max-batch close can fire quickly.
        let server = AttentionServer::start(
            Arc::clone(&mech),
            BatchPolicy::batched(3, Duration::from_secs(600)),
        );
        let mut rng = Rng::new(5);
        let mut handles = Vec::new();
        for _ in 0..3 {
            let (q, k, v) = request(16, 8, &mut rng);
            handles.push(server.submit(q, k, v).unwrap());
        }
        for h in handles {
            let served = h.wait().expect("served");
            assert_eq!(served.batch_size, 3);
        }
        let stats = server.shutdown();
        assert_eq!((stats.served, stats.batches), (3, 1));
        assert_eq!(stats.max_batch, 3);
    }

    #[test]
    fn deadline_closes_partial_buckets() {
        let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(FullAttention);
        let server = AttentionServer::start(
            Arc::clone(&mech),
            BatchPolicy::batched(1000, Duration::from_millis(10)),
        );
        let mut rng = Rng::new(7);
        let (q, k, v) = request(16, 8, &mut rng);
        let t0 = Instant::now();
        let served = server.submit(q, k, v).unwrap().wait().expect("served");
        assert!(
            t0.elapsed() >= Duration::from_millis(10),
            "closed too early"
        );
        assert_eq!(served.batch_size, 1);
        assert!(served.queue_wait >= Duration::from_millis(9));
        let _ = server.shutdown();
    }

    #[test]
    fn heterogeneous_shapes_never_share_a_launch() {
        let mech: Arc<dyn Attention<f32> + Send + Sync> =
            Arc::new(DfssAttention::new(NmPattern::P1_2));
        let server = AttentionServer::start(
            Arc::clone(&mech),
            BatchPolicy::batched(8, Duration::from_millis(5)),
        );
        let mut rng = Rng::new(9);
        let mut handles = Vec::new();
        for i in 0..6 {
            let n = if i % 2 == 0 { 32 } else { 64 };
            let (q, k, v) = request(n, 8, &mut rng);
            handles.push((n, server.submit(q, k, v).unwrap()));
        }
        for (n, h) in handles {
            let served = h.wait().expect("served");
            assert_eq!(served.bucket.n, n);
            assert_eq!(served.batch_size, 3);
            assert_eq!(served.output.rows(), n);
        }
        let stats = server.shutdown();
        assert_eq!((stats.served, stats.batches), (6, 2));
    }

    #[test]
    fn bad_requests_get_typed_errors_and_server_survives() {
        let mech: Arc<dyn Attention<f32> + Send + Sync> =
            Arc::new(DfssAttention::new(NmPattern::P1_2));
        let server = AttentionServer::start(Arc::clone(&mech), BatchPolicy::per_request());
        // n = 31 violates the 1:2 group alignment.
        let q = Matrix::<f32>::zeros(31, 8);
        let err = server.submit(q.clone(), q.clone(), q.clone()).unwrap_err();
        assert!(matches!(err, RequestError::Unsupported { .. }));
        // K mismatch.
        let q32 = Matrix::<f32>::zeros(32, 8);
        let k_bad = Matrix::<f32>::zeros(16, 8);
        let err = server.submit(q32.clone(), k_bad, q32.clone()).unwrap_err();
        assert!(matches!(err, RequestError::KShapeMismatch { .. }));
        // The server still serves valid traffic afterwards.
        let mut rng = Rng::new(11);
        let (q, k, v) = request(32, 8, &mut rng);
        let served = server.submit(q, k, v).unwrap().wait().expect("served");
        assert_eq!(served.batch_size, 1);
        let stats = server.shutdown();
        assert_eq!((stats.served, stats.rejected), (1, 2));
    }

    #[test]
    fn shutdown_drains_open_buckets() {
        let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(FullAttention);
        // Deadline far in the future: only the shutdown drain can serve.
        let server = AttentionServer::start(
            Arc::clone(&mech),
            BatchPolicy::batched(1000, Duration::from_secs(600)),
        );
        let mut rng = Rng::new(13);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let (q, k, v) = request(16, 8, &mut rng);
            handles.push(server.submit(q, k, v).unwrap());
        }
        let stats = server.shutdown();
        assert_eq!((stats.served, stats.batches), (4, 1));
        for h in handles {
            assert!(h.wait().is_ok());
        }
    }
}
