//! The attention server: admission front door + batcher thread.
//!
//! Prefill requests flow through the shape-bucketed queue exactly as
//! before; decode traffic adds a session registry (synchronous admission
//! checks on the caller's thread), per-session [`PagedKvCache`] page
//! tables over one batcher-owned [`KvPool`], and a decode queue that
//! coalesces steps from different sessions into one ragged launch per op.
//!
//! **Decode determinism**: a decode step attends over exactly the rows its
//! session had appended before the step was submitted. The batcher
//! enforces this by flushing the decode queue before applying an append or
//! close for a session that already has a queued step — cache mutations
//! can never race ahead of a waiting decode.
//!
//! **Memory governance**: the registry mirrors every session's page count,
//! so admission *reserves* pool pages synchronously before a row is
//! accepted. Reservation failure surfaces as typed back-pressure
//! ([`SessionError::KvBudgetExhausted`]) or, under
//! [`KvConfig::evict_idle`], evicts idle sessions in deterministic LRU
//! order (oldest `last_used`, ties to the smallest id) until the
//! reservation fits. Every session-mutating message is sent **while the
//! registry lock is held**, so the batcher observes mutations in the exact
//! order the accounting admitted them — its pool allocation can therefore
//! never fail, and the budget is enforced without the batcher ever
//! blocking a client.

use crate::faults::{FaultArm, FaultKind, FaultPlan, FaultyAttention};
use crate::kv::{KvConfig, KvDtype, KvPool, PagedKvCache, SessionId};
use crate::queue::{Bucket, BucketQueue, QueuedRequest};
use crate::sched::{ChunkPlan, SchedPolicy, SchedTrace, Scheduler};
use crate::shard::{StealChunk, StealPool};
use crate::{BatchPolicy, DecodeRequest, ServeError, ServeStats, SessionError};
use dfss_core::engine::{AttentionEngine, DecodeStep, ShapeKey, Ticket};
use dfss_core::mechanism::{try_check_qkv, Attention, RequestError};
use dfss_kernels::GpuCtx;
use dfss_tensor::{Bf16, Matrix, Scalar};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One served prefill request, with its latency breakdown.
#[derive(Debug)]
pub struct Served<T: Scalar> {
    /// The attention output, bit-identical to a solo `forward` call.
    pub output: Matrix<T>,
    /// Engine ticket (monotone in launch order across the server's life).
    pub ticket: Ticket,
    /// Shape bucket the request was batched in.
    pub bucket: ShapeKey,
    /// Requests that shared this request's batched launch.
    pub batch_size: usize,
    /// Admission → bucket close (time spent waiting for batch-mates).
    pub queue_wait: std::time::Duration,
    /// Bucket close → outputs ready (host wall-clock of the launches).
    pub service: std::time::Duration,
    /// Admission → response (end-to-end host latency).
    pub latency: std::time::Duration,
    /// Simulated-device latency of the request's whole batch (one launch
    /// per op; every request in the batch waits for the full launch).
    pub sim_latency_s: f64,
}

/// One served decode step, with its latency breakdown.
#[derive(Debug)]
pub struct ServedDecode<T: Scalar> {
    /// The `1 × d_v` output row, bit-identical to a solo decode of the
    /// session's cache.
    pub output: Matrix<T>,
    /// Engine ticket (shared sequence with prefill tickets).
    pub ticket: Ticket,
    /// The session the step decoded.
    pub session: SessionId,
    /// The session's cached length the step attended over.
    pub cached_len: usize,
    /// Concurrent streams that shared the step's ragged launch.
    pub batch_size: usize,
    /// Admission → decode-queue close.
    pub queue_wait: std::time::Duration,
    /// Queue close → outputs ready (host wall-clock of the launches).
    pub service: std::time::Duration,
    /// Admission → response (end-to-end host latency).
    pub latency: std::time::Duration,
    /// Simulated-device latency of the step's whole ragged launch.
    pub sim_latency_s: f64,
}

/// Client-side handle for one submitted prefill request.
#[derive(Debug)]
pub struct ResponseHandle<T: Scalar> {
    rx: Receiver<Result<Served<T>, ServeError>>,
}

impl<T: Scalar> ResponseHandle<T> {
    /// Block until the request is served, or fail typed: a dead batcher
    /// (crash or shutdown before service) surfaces as
    /// [`ServeError::ServerGone`], never a hang or a propagated panic.
    pub fn wait(self) -> Result<Served<T>, ServeError> {
        match self.rx.recv() {
            Ok(res) => res,
            Err(_) => Err(ServeError::ServerGone),
        }
    }

    /// Like [`wait`](Self::wait) but bounded: returns
    /// [`ServeError::WaitTimeout`] if the response has not arrived within
    /// `timeout`. Takes `&self`, so a timed-out handle can be waited
    /// again (the request is still in flight).
    pub fn wait_timeout(&self, timeout: Duration) -> Result<Served<T>, ServeError> {
        match self.rx.recv_timeout(timeout) {
            Ok(res) => res,
            Err(RecvTimeoutError::Timeout) => Err(ServeError::WaitTimeout),
            Err(RecvTimeoutError::Disconnected) => Err(ServeError::ServerGone),
        }
    }
}

/// Client-side handle for one submitted decode step.
#[derive(Debug)]
pub struct DecodeHandle<T: Scalar> {
    rx: Receiver<Result<ServedDecode<T>, ServeError>>,
}

impl<T: Scalar> DecodeHandle<T> {
    /// Block until the step is served, or fail typed: a dead batcher
    /// surfaces as [`ServeError::ServerGone`], never a hang.
    pub fn wait(self) -> Result<ServedDecode<T>, ServeError> {
        match self.rx.recv() {
            Ok(res) => res,
            Err(_) => Err(ServeError::ServerGone),
        }
    }

    /// Like [`wait`](Self::wait) but bounded: returns
    /// [`ServeError::WaitTimeout`] if the response has not arrived within
    /// `timeout`. Takes `&self`, so a timed-out handle can be waited
    /// again.
    pub fn wait_timeout(&self, timeout: Duration) -> Result<ServedDecode<T>, ServeError> {
        match self.rx.recv_timeout(timeout) {
            Ok(res) => res,
            Err(RecvTimeoutError::Timeout) => Err(ServeError::WaitTimeout),
            Err(RecvTimeoutError::Disconnected) => Err(ServeError::ServerGone),
        }
    }
}

pub(crate) type Reply<T> = SyncSender<Result<Served<T>, ServeError>>;
type DecodeReply<T> = SyncSender<Result<ServedDecode<T>, ServeError>>;

impl<T: Scalar> ResponseHandle<T> {
    /// Build a handle over a raw reply channel — the sharded front door
    /// replies from whichever shard finishes the job's last chunk.
    pub(crate) fn from_rx(rx: Receiver<Result<Served<T>, ServeError>>) -> ResponseHandle<T> {
        ResponseHandle { rx }
    }
}

/// Synchronous admission view of one session (the caches themselves live
/// on the batcher thread; the registry mirrors their geometry exactly).
struct SessionMeta {
    d: usize,
    d_v: usize,
    len: usize,
    rows_per_page_k: usize,
    rows_per_page_v: usize,
    /// Pool pages this session holds (K + V tables).
    pages: usize,
    /// Logical bytes this session's cached rows occupy — the per-session
    /// term of the governor's `kv_bytes` sum, kept here so a poisoned
    /// registry can rebuild its aggregates from the sessions alone.
    bytes: u64,
    /// Logical LRU timestamp — the registry clock at the session's last
    /// append/extend/decode admission.
    last_used: u64,
    /// Decode steps admitted but not yet served; an inflight session is
    /// never an eviction victim (its queued steps must see their rows).
    inflight: usize,
    /// Whether the LRU policy reclaimed this session's pages.
    evicted: bool,
}

/// The shared admission state: session metadata plus the KV governor —
/// a synchronous mirror of the batcher's pool occupancy that lets the
/// front door reserve pages (and so apply back-pressure) without a
/// round-trip to the batcher thread.
struct Registry {
    sessions: HashMap<u64, SessionMeta>,
    /// Pool pages the budget admits in total.
    capacity_pages: usize,
    /// Pages reserved by open sessions (== the pool's allocated count
    /// once the batcher has drained the channel).
    pages_used: usize,
    /// Logical bytes cached across open sessions.
    kv_bytes: u64,
    kv_bytes_peak: u64,
    kv_pages_allocated: u64,
    kv_pages_freed: u64,
    evictions: u64,
    admission_rejections: u64,
    /// LRU clock, bumped on every session touch.
    clock: u64,
}

impl Registry {
    fn new(capacity_pages: usize) -> Registry {
        Registry {
            sessions: HashMap::new(),
            capacity_pages,
            pages_used: 0,
            kv_bytes: 0,
            kv_bytes_peak: 0,
            kv_pages_allocated: 0,
            kv_pages_freed: 0,
            evictions: 0,
            admission_rejections: 0,
            clock: 0,
        }
    }

    fn free_pages(&self) -> usize {
        self.capacity_pages - self.pages_used
    }

    fn touch(&mut self, id: u64) {
        let t = self.clock;
        self.clock += 1;
        if let Some(meta) = self.sessions.get_mut(&id) {
            meta.last_used = t;
        }
    }

    /// The deterministic LRU eviction victim: among sessions other than
    /// `requester` that are not evicted, hold pages, and have no decode
    /// step in flight, the least recently used (ties to the smallest id).
    fn pick_victim(&self, requester: u64) -> Option<u64> {
        self.sessions
            .iter()
            .filter(|(&id, m)| id != requester && !m.evicted && m.pages > 0 && m.inflight == 0)
            .min_by_key(|(&id, m)| (m.last_used, id))
            .map(|(&id, _)| id)
    }

    /// Pages held by sessions `pick_victim` could reclaim for `requester`.
    fn evictable_pages(&self, requester: u64) -> usize {
        self.sessions
            .iter()
            .filter(|(&id, m)| id != requester && !m.evicted && m.pages > 0 && m.inflight == 0)
            .map(|(_, m)| m.pages)
            .sum()
    }

    /// Rebuild the governor aggregates (`pages_used`, `kv_bytes`) from the
    /// per-session metadata — the recovery step after a thread panicked
    /// while holding the registry lock. A panicking mutation can leave the
    /// aggregates mid-update, but the per-session rows it had not reached
    /// are still exact, so summing them restores a consistent (and safe:
    /// reservation-side) view. Monotone lifetime counters
    /// (`kv_pages_allocated`/`freed`, peaks) are left as recorded.
    fn restore_invariants(&mut self) {
        self.pages_used = self.sessions.values().map(|m| m.pages).sum();
        self.kv_bytes = self.sessions.values().map(|m| m.bytes).sum();
        self.kv_bytes_peak = self.kv_bytes_peak.max(self.kv_bytes);
    }
}

/// Lock the registry, healing a poisoned mutex instead of propagating the
/// panic: the guard is taken out of the `PoisonError` and the governor's
/// invariants are restored from the per-session metadata. One panicked
/// thread (a client killed mid-call, a batcher fault) therefore cannot
/// brick every later API call — the poison-recovery half of the server's
/// panic-isolation story.
fn lock_healed(registry: &Mutex<Registry>) -> MutexGuard<'_, Registry> {
    match registry.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            let mut guard = poisoned.into_inner();
            guard.restore_invariants();
            guard
        }
    }
}

/// Lock the shared lifetime counters, healing poison. The serve paths
/// catch panics before they can unwind through an increment, but the
/// counters are observable live (`/metrics`), so a reader must never be
/// brickable by a writer's death either.
fn lock_stats(stats: &Mutex<ServeStats>) -> MutexGuard<'_, ServeStats> {
    match stats.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A live snapshot of the batcher's queues — what `GET /metrics` reports
/// as per-bucket depth gauges. Refreshed by the batcher once per loop
/// iteration, so it trails the true queue by at most one message drain.
#[derive(Clone, Debug, Default)]
pub struct QueueDepths {
    /// Open prefill buckets: shape key → requests waiting in it.
    pub prefill: Vec<(ShapeKey, usize)>,
    /// Decode steps queued for the next ragged launch.
    pub decode: usize,
}

enum Msg<T: Scalar> {
    Request(QueuedRequest<T, Reply<T>>),
    Open {
        id: u64,
        d: usize,
        d_v: usize,
    },
    Append {
        id: u64,
        k_row: Vec<T>,
        v_row: Vec<T>,
    },
    Extend {
        id: u64,
        k: Matrix<T>,
        v: Matrix<T>,
    },
    Close {
        id: u64,
    },
    /// Reclaim the session's pages (registry already marked it evicted).
    Evict {
        id: u64,
    },
    Decode {
        id: u64,
        q_row: Vec<T>,
        submitted: Instant,
        deadline: Option<Instant>,
        fault: Option<FaultKind>,
        reply: DecodeReply<T>,
    },
    Shutdown,
}

/// An async attention server over one mechanism.
///
/// `submit` is the prefill admission front door: it validates the triple
/// against the mechanism's shape constraints on the caller's thread (typed
/// [`RequestError`], never a panic) and enqueues it to the batcher thread,
/// returning a [`ResponseHandle`] immediately. The batcher coalesces
/// same-shape requests per [`BatchPolicy`] and serves each closed bucket as
/// one [`AttentionEngine::flush`] — a single batched launch per op.
///
/// `open_session` / `append` / `submit_decode` / `close_session` are the
/// decode front door: sessions own [`PagedKvCache`] page tables over one
/// batcher-owned [`KvPool`], admission checks (shapes **and** the KV page
/// budget) run synchronously against a shared registry, and queued decode
/// steps close into one [`AttentionEngine::flush_decode`] per batch — a
/// single **ragged** launch per op across all streams, whatever their
/// cached lengths.
pub struct AttentionServer<T: Scalar> {
    mech: Arc<dyn Attention<T> + Send + Sync>,
    kv: KvConfig,
    policy: BatchPolicy,
    tx: Sender<Msg<T>>,
    rejected: Arc<AtomicU64>,
    overload_sheds: AtomicU64,
    next_session: AtomicU64,
    /// Front-door operation ordinal — the key space of [`FaultPlan`].
    next_op: AtomicU64,
    faults: Option<Arc<FaultPlan>>,
    /// Requests enqueued but not yet launched (prefill + decode), the
    /// quantity [`BatchPolicy::max_queue_depth`] bounds.
    depth: Arc<AtomicU64>,
    registry: Arc<Mutex<Registry>>,
    /// Lifetime counters, shared with the batcher so observers can read
    /// them live ([`stats_snapshot`](Self::stats_snapshot)) instead of
    /// only at shutdown.
    stats: Arc<Mutex<ServeStats>>,
    /// Live queue-depth snapshot, refreshed by the batcher each loop.
    depths: Arc<Mutex<QueueDepths>>,
    /// The continuous scheduler's replayable event log (empty under the
    /// classic flush-cadence batcher), published incrementally by the
    /// worker once per loop pass.
    sched_trace: Arc<Mutex<SchedTrace>>,
    worker: Option<JoinHandle<()>>,
}

impl<T: Scalar> AttentionServer<T> {
    /// Start a server on the paper's evaluation device (A100 simulation)
    /// with an unbounded KV budget.
    pub fn start(
        mech: Arc<dyn Attention<T> + Send + Sync>,
        policy: BatchPolicy,
    ) -> AttentionServer<T> {
        AttentionServer::start_with_ctx(mech, policy, GpuCtx::a100())
    }

    /// Start a server with an explicit KV geometry and byte budget (A100
    /// simulation context).
    pub fn start_with_kv(
        mech: Arc<dyn Attention<T> + Send + Sync>,
        policy: BatchPolicy,
        kv: KvConfig,
    ) -> AttentionServer<T> {
        AttentionServer::start_inner(mech, policy, GpuCtx::a100(), kv, None)
    }

    /// Start a server whose engine runs on a caller-provided context
    /// (device config and exec mode carry over).
    pub fn start_with_ctx(
        mech: Arc<dyn Attention<T> + Send + Sync>,
        policy: BatchPolicy,
        ctx: GpuCtx,
    ) -> AttentionServer<T> {
        AttentionServer::start_with_ctx_kv(mech, policy, ctx, KvConfig::default())
    }

    /// Start a server with both a caller-provided context and KV config.
    pub fn start_with_ctx_kv(
        mech: Arc<dyn Attention<T> + Send + Sync>,
        policy: BatchPolicy,
        ctx: GpuCtx,
        kv: KvConfig,
    ) -> AttentionServer<T> {
        AttentionServer::start_inner(mech, policy, ctx, kv, None)
    }

    /// Start a server with a deterministic [`FaultPlan`] (chaos testing):
    /// the plan's faults fire at the scheduled front-door operation
    /// indices — see [`FaultKind`] for what each does. A100 context,
    /// unbounded KV budget.
    pub fn start_with_faults(
        mech: Arc<dyn Attention<T> + Send + Sync>,
        policy: BatchPolicy,
        faults: FaultPlan,
    ) -> AttentionServer<T> {
        AttentionServer::start_inner(
            mech,
            policy,
            GpuCtx::a100(),
            KvConfig::default(),
            Some(faults),
        )
    }

    /// [`start_with_faults`](Self::start_with_faults) with an explicit KV
    /// geometry and budget.
    pub fn start_with_kv_faults(
        mech: Arc<dyn Attention<T> + Send + Sync>,
        policy: BatchPolicy,
        kv: KvConfig,
        faults: FaultPlan,
    ) -> AttentionServer<T> {
        AttentionServer::start_inner(mech, policy, GpuCtx::a100(), kv, Some(faults))
    }

    /// Start a **continuous batching** server: instead of the separate
    /// prefill/decode flush cadence, one admission loop packs — every
    /// scheduler iteration — all ready decode steps together with chunked
    /// prefill work (`SchedPolicy::prefill_chunk`-row slices, resumable
    /// across iterations) under `SchedPolicy::iter_budget_rows`. No decode
    /// step waits behind a whole cold prefill; no prefill starves under
    /// decode-heavy load. A100 context, unbounded KV budget.
    pub fn start_continuous(
        mech: Arc<dyn Attention<T> + Send + Sync>,
        policy: BatchPolicy,
        sched: SchedPolicy,
    ) -> AttentionServer<T> {
        AttentionServer::start_continuous_inner(
            mech,
            policy,
            sched,
            GpuCtx::a100(),
            KvConfig::default(),
            None,
            None,
        )
    }

    /// [`start_continuous`](Self::start_continuous) with an explicit KV
    /// geometry and byte budget.
    pub fn start_continuous_with_kv(
        mech: Arc<dyn Attention<T> + Send + Sync>,
        policy: BatchPolicy,
        sched: SchedPolicy,
        kv: KvConfig,
    ) -> AttentionServer<T> {
        AttentionServer::start_continuous_inner(mech, policy, sched, GpuCtx::a100(), kv, None, None)
    }

    /// [`start_continuous`](Self::start_continuous) with a KV config and a
    /// deterministic [`FaultPlan`] — the chaos harness for the continuous
    /// path.
    pub fn start_continuous_with_kv_faults(
        mech: Arc<dyn Attention<T> + Send + Sync>,
        policy: BatchPolicy,
        sched: SchedPolicy,
        kv: KvConfig,
        faults: FaultPlan,
    ) -> AttentionServer<T> {
        AttentionServer::start_continuous_inner(
            mech,
            policy,
            sched,
            GpuCtx::a100(),
            kv,
            Some(faults),
            None,
        )
    }

    /// One shard of a [`crate::ShardedServer`]: a continuous server that
    /// additionally polls the shared steal pool for queued prefill chunks
    /// (its own first, foreign shards' when otherwise idle).
    pub(crate) fn start_continuous_inner(
        mech: Arc<dyn Attention<T> + Send + Sync>,
        policy: BatchPolicy,
        sched: SchedPolicy,
        ctx: GpuCtx,
        kv: KvConfig,
        faults: Option<FaultPlan>,
        steal: Option<(usize, Arc<StealPool<T>>)>,
    ) -> AttentionServer<T> {
        AttentionServer::spawn(mech, policy, ctx, kv, faults, Some(sched), steal)
    }

    fn start_inner(
        mech: Arc<dyn Attention<T> + Send + Sync>,
        policy: BatchPolicy,
        ctx: GpuCtx,
        kv: KvConfig,
        faults: Option<FaultPlan>,
    ) -> AttentionServer<T> {
        AttentionServer::spawn(mech, policy, ctx, kv, faults, None, None)
    }

    fn spawn(
        mech: Arc<dyn Attention<T> + Send + Sync>,
        policy: BatchPolicy,
        ctx: GpuCtx,
        kv: KvConfig,
        faults: Option<FaultPlan>,
        sched: Option<SchedPolicy>,
        steal: Option<(usize, Arc<StealPool<T>>)>,
    ) -> AttentionServer<T> {
        let (tx, rx) = mpsc::channel::<Msg<T>>();
        // The governed capacity is the pool's physical capacity at the
        // *stored* element width — a bf16 store doubles it over f32
        // compute for the same byte budget.
        let registry = Arc::new(Mutex::new(Registry::new(kv.storage_capacity_pages::<T>())));
        let depth = Arc::new(AtomicU64::new(0));
        let arm = Arc::new(FaultArm::default());
        // Fault injection is zero-cost when absent: without a plan the
        // engine runs the mechanism directly (no wrapper, no per-launch
        // latch check) and the front door never consults a plan.
        let worker_mech: Arc<dyn Attention<T> + Send + Sync> = if faults.is_some() {
            Arc::new(FaultyAttention {
                inner: Arc::clone(&mech),
                arm: Arc::clone(&arm),
            })
        } else {
            Arc::clone(&mech)
        };
        let stats = Arc::new(Mutex::new(ServeStats::default()));
        let depths = Arc::new(Mutex::new(QueueDepths::default()));
        let sched_trace = Arc::new(Mutex::new(SchedTrace::default()));
        let worker_registry = Arc::clone(&registry);
        let worker_depth = Arc::clone(&depth);
        let worker_stats = Arc::clone(&stats);
        let worker_depths = Arc::clone(&depths);
        let worker_trace = Arc::clone(&sched_trace);
        let worker = std::thread::Builder::new()
            .name("dfss-serve-batcher".into())
            .spawn(move || match sched {
                Some(sched) => continuous_loop(
                    worker_mech,
                    policy,
                    sched,
                    ctx,
                    kv,
                    worker_registry,
                    worker_depth,
                    worker_stats,
                    worker_depths,
                    worker_trace,
                    arm,
                    rx,
                    steal,
                ),
                None => batcher_loop(
                    worker_mech,
                    policy,
                    ctx,
                    kv,
                    worker_registry,
                    worker_depth,
                    worker_stats,
                    worker_depths,
                    arm,
                    rx,
                ),
            })
            .expect("spawn batcher thread");
        AttentionServer {
            mech,
            tx,
            policy,
            rejected: Arc::new(AtomicU64::new(0)),
            overload_sheds: AtomicU64::new(0),
            next_session: AtomicU64::new(0),
            next_op: AtomicU64::new(0),
            faults: faults.map(Arc::new),
            depth,
            registry,
            stats,
            depths,
            sched_trace,
            kv,
            worker: Some(worker),
        }
    }

    /// The continuous scheduler's replayable event log so far (empty for
    /// a classic flush-cadence server). Logical content only — two
    /// servers fed the same admission sequence under the same policy
    /// render byte-identical traces ([`SchedTrace::render`]).
    pub fn sched_trace(&self) -> SchedTrace {
        match self.sched_trace.lock() {
            Ok(guard) => guard.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }

    /// The fault scheduled for this front-door operation, consuming one
    /// operation ordinal. No-op (and no ordinal bookkeeping observable)
    /// without a plan.
    fn next_fault(&self) -> Option<FaultKind> {
        let plan = self.faults.as_ref()?;
        let op = self.next_op.fetch_add(1, Ordering::Relaxed);
        plan.get(op)
    }

    /// Shed at admission when the unlaunched-request count is at the
    /// policy bound. Returns the observed depth on refusal.
    fn check_depth(&self) -> Result<(), usize> {
        if let Some(bound) = self.policy.max_queue_depth {
            let depth = self.depth.load(Ordering::SeqCst) as usize;
            if depth >= bound {
                self.overload_sheds.fetch_add(1, Ordering::Relaxed);
                return Err(depth);
            }
        }
        Ok(())
    }

    /// The server's KV geometry and budget.
    pub fn kv_config(&self) -> KvConfig {
        self.kv
    }

    /// Validate and enqueue one prefill request. Returns immediately; the
    /// output arrives on the handle. Malformed or unservable requests come
    /// back as [`ServeError::Rejected`] without reaching the queue, and a
    /// queue at [`BatchPolicy::max_queue_depth`] sheds the submission with
    /// [`ServeError::Overloaded`] (transient — see [`crate::retry`]).
    pub fn submit(
        &self,
        q: Matrix<T>,
        k: Matrix<T>,
        v: Matrix<T>,
    ) -> Result<ResponseHandle<T>, ServeError> {
        self.submit_with_deadline(q, k, v, None)
    }

    /// [`submit`](Self::submit) with a deadline: if the request is still
    /// queued (its bucket unclosed) past `deadline`, it is shed *before*
    /// packing and its handle resolves with
    /// [`ServeError::DeadlineExceeded`] — it never occupies a launch it
    /// cannot use.
    pub fn submit_with_deadline(
        &self,
        q: Matrix<T>,
        k: Matrix<T>,
        v: Matrix<T>,
        deadline: Option<Instant>,
    ) -> Result<ResponseHandle<T>, ServeError> {
        let fault = self.next_fault();
        if let Err(e) = try_check_qkv(self.mech.as_ref(), &q, &k, &v) {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Rejected(e));
        }
        if let Err(depth) = self.check_depth() {
            return Err(ServeError::Overloaded { depth });
        }
        self.depth.fetch_add(1, Ordering::SeqCst);
        // Rendezvous capacity 1: the batcher never blocks sending a
        // response, clients may wait lazily.
        let (reply, rx) = mpsc::sync_channel(1);
        let msg = Msg::Request(QueuedRequest {
            q,
            k,
            v,
            submitted: Instant::now(),
            deadline,
            fault,
            reply,
        });
        // A dropped batcher surfaces as ServerGone on wait(); submission
        // itself stays infallible for valid requests.
        let _ = self.tx.send(msg);
        Ok(ResponseHandle { rx })
    }

    /// Open a decode session for keys of width `d` and values of width
    /// `d_v`. The session's KV cache starts empty; prime it with
    /// [`append`](Self::append) / [`extend`](Self::extend) before the first
    /// decode step.
    ///
    /// Admission checks that the pool could back at least the session's
    /// first position (one K page + one V page, free now or reclaimable
    /// under `evict_idle`) — a server already pinned to its budget refuses
    /// new sessions with [`SessionError::KvBudgetExhausted`] instead of
    /// accepting a stream it can never grow. Nothing is reserved until the
    /// first row arrives.
    pub fn open_session(&self, d: usize, d_v: usize) -> Result<SessionId, SessionError> {
        if d == 0 || d_v == 0 {
            return Err(SessionError::Rejected(RequestError::EmptyRequest));
        }
        if self.kv.page_elems < d || self.kv.page_elems < d_v {
            return Err(SessionError::Rejected(RequestError::DecodeShapeMismatch {
                reason: format!(
                    "kv pages hold {} elements, too small for rows of width ({d}, {d_v})",
                    self.kv.page_elems
                ),
            }));
        }
        let fault = self.next_fault();
        let id = self.next_session.fetch_add(1, Ordering::Relaxed);
        let mut reg = lock_healed(&self.registry);
        let reachable = if matches!(fault, Some(FaultKind::ExhaustPool)) {
            // Injected exhaustion: admit as if the pool had nothing left.
            0
        } else {
            reg.free_pages()
                + if self.kv.evict_idle {
                    reg.evictable_pages(id)
                } else {
                    0
                }
        };
        if reachable < 2 {
            reg.admission_rejections += 1;
            return Err(SessionError::KvBudgetExhausted {
                need: 2,
                free: reachable.min(reg.free_pages()),
            });
        }
        let t = reg.clock;
        reg.clock += 1;
        reg.sessions.insert(
            id,
            SessionMeta {
                d,
                d_v,
                len: 0,
                rows_per_page_k: self.kv.rows_per_page(d),
                rows_per_page_v: self.kv.rows_per_page(d_v),
                pages: 0,
                bytes: 0,
                last_used: t,
                inflight: 0,
                evicted: false,
            },
        );
        let _ = self.tx.send(Msg::Open { id, d, d_v });
        Ok(SessionId(id))
    }

    /// Reserve `need` pool pages for `requester`, evicting idle sessions
    /// in deterministic LRU order when the policy allows. Caller holds the
    /// registry lock; eviction messages go out under that same lock so the
    /// batcher frees the victims' pages before the requester's rows land.
    fn reserve_pages(
        &self,
        reg: &mut Registry,
        requester: u64,
        need: usize,
    ) -> Result<(), SessionError> {
        while reg.free_pages() < need {
            let victim = if self.kv.evict_idle {
                reg.pick_victim(requester)
            } else {
                None
            };
            let Some(vid) = victim else {
                reg.admission_rejections += 1;
                return Err(SessionError::KvBudgetExhausted {
                    need,
                    free: reg.free_pages(),
                });
            };
            let meta = reg.sessions.get_mut(&vid).expect("victim is registered");
            let freed = meta.pages;
            let bytes = meta.bytes;
            meta.pages = 0;
            meta.len = 0;
            meta.bytes = 0;
            meta.evicted = true;
            reg.pages_used -= freed;
            reg.kv_pages_freed += freed as u64;
            reg.kv_bytes = reg.kv_bytes.saturating_sub(bytes);
            reg.evictions += 1;
            let _ = self.tx.send(Msg::Evict { id: vid });
        }
        reg.pages_used += need;
        reg.kv_pages_allocated += need as u64;
        Ok(())
    }

    /// Charge `rows` admitted positions to the session and the governor.
    /// Caller holds the registry lock and has already reserved the pages.
    /// Bytes are charged at the **stored** element width — half of
    /// `T::BYTES` under a bf16 KV store.
    fn charge_rows(&self, reg: &mut Registry, id: u64, rows: usize, pages: usize) {
        let meta = reg.sessions.get_mut(&id).expect("session is registered");
        meta.len += rows;
        meta.pages += pages;
        let bytes = (rows * (meta.d + meta.d_v) * self.kv.storage_elem_bytes::<T>()) as u64;
        meta.bytes += bytes;
        reg.kv_bytes += bytes;
        reg.kv_bytes_peak = reg.kv_bytes_peak.max(reg.kv_bytes);
        reg.touch(id);
    }

    /// Append one position (a key row and a value row) to a session's
    /// cache. Width mismatches and budget exhaustion are rejected
    /// synchronously with typed errors; the rows themselves land on the
    /// batcher thread in submission order, so a subsequent decode step
    /// always sees them.
    pub fn append(
        &self,
        session: SessionId,
        k_row: Vec<T>,
        v_row: Vec<T>,
    ) -> Result<(), SessionError> {
        {
            let fault = self.next_fault();
            let mut reg = lock_healed(&self.registry);
            let meta = reg
                .sessions
                .get(&session.0)
                .ok_or(SessionError::UnknownSession(session))?;
            if meta.evicted {
                return Err(SessionError::Evicted(session));
            }
            if k_row.len() != meta.d || v_row.len() != meta.d_v {
                return Err(SessionError::Rejected(RequestError::DecodeShapeMismatch {
                    reason: format!(
                        "append rows of width ({}, {}) into a ({}, {}) session",
                        k_row.len(),
                        v_row.len(),
                        meta.d,
                        meta.d_v
                    ),
                }));
            }
            let need = crate::kv::pages_for_growth(meta.len, 1, meta.rows_per_page_k)
                + crate::kv::pages_for_growth(meta.len, 1, meta.rows_per_page_v);
            if matches!(fault, Some(FaultKind::ExhaustPool)) {
                reg.admission_rejections += 1;
                return Err(SessionError::KvBudgetExhausted { need, free: 0 });
            }
            self.reserve_pages(&mut reg, session.0, need)?;
            self.charge_rows(&mut reg, session.0, 1, need);
            // Send under the lock: the batcher sees mutations in admission
            // order, so the pages reserved above are free when this lands.
            let _ = self.tx.send(Msg::Append {
                id: session.0,
                k_row,
                v_row,
            });
        }
        Ok(())
    }

    /// Append a block of positions at once (prefill priming): `k` is
    /// `rows × d`, `v` is `rows × d_v`. Atomic under the budget: either
    /// every page the block needs is reserved or nothing changes.
    pub fn extend(
        &self,
        session: SessionId,
        k: Matrix<T>,
        v: Matrix<T>,
    ) -> Result<(), SessionError> {
        {
            let fault = self.next_fault();
            let mut reg = lock_healed(&self.registry);
            let meta = reg
                .sessions
                .get(&session.0)
                .ok_or(SessionError::UnknownSession(session))?;
            if meta.evicted {
                return Err(SessionError::Evicted(session));
            }
            if k.cols() != meta.d || v.cols() != meta.d_v || k.rows() != v.rows() {
                return Err(SessionError::Rejected(RequestError::DecodeShapeMismatch {
                    reason: format!(
                        "extend with K {}x{} / V {}x{} into a ({}, {}) session",
                        k.rows(),
                        k.cols(),
                        v.rows(),
                        v.cols(),
                        meta.d,
                        meta.d_v
                    ),
                }));
            }
            let rows = k.rows();
            let need = crate::kv::pages_for_growth(meta.len, rows, meta.rows_per_page_k)
                + crate::kv::pages_for_growth(meta.len, rows, meta.rows_per_page_v);
            if matches!(fault, Some(FaultKind::ExhaustPool)) {
                reg.admission_rejections += 1;
                return Err(SessionError::KvBudgetExhausted { need, free: 0 });
            }
            self.reserve_pages(&mut reg, session.0, need)?;
            self.charge_rows(&mut reg, session.0, rows, need);
            let _ = self.tx.send(Msg::Extend {
                id: session.0,
                k,
                v,
            });
        }
        Ok(())
    }

    /// Validate and enqueue one decode step. Returns immediately; the
    /// output row arrives on the handle. The step attends over exactly the
    /// rows appended to the session before this call. A session whose
    /// pages were reclaimed by eviction gets
    /// [`SessionError::Evicted`] — its history is gone — and a queue at
    /// [`BatchPolicy::max_queue_depth`] sheds the step with
    /// [`SessionError::Overloaded`] (transient — see [`crate::retry`]).
    pub fn submit_decode(&self, req: DecodeRequest<T>) -> Result<DecodeHandle<T>, SessionError> {
        self.submit_decode_with_deadline(req, None)
    }

    /// [`submit_decode`](Self::submit_decode) with a deadline: a step
    /// still queued past `deadline` is shed *before* packing and its
    /// handle resolves with [`ServeError::DeadlineExceeded`].
    pub fn submit_decode_with_deadline(
        &self,
        req: DecodeRequest<T>,
        deadline: Option<Instant>,
    ) -> Result<DecodeHandle<T>, SessionError> {
        let fault = self.next_fault();
        let (reply, rx) = mpsc::sync_channel(1);
        {
            let mut reg = lock_healed(&self.registry);
            let meta = reg
                .sessions
                .get(&req.session.0)
                .ok_or(SessionError::UnknownSession(req.session))?;
            if meta.evicted {
                return Err(SessionError::Evicted(req.session));
            }
            if req.q_row.len() != meta.d {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(SessionError::Rejected(RequestError::DecodeShapeMismatch {
                    reason: format!(
                        "query row has {} elements, session width is {}",
                        req.q_row.len(),
                        meta.d
                    ),
                }));
            }
            if meta.len == 0 {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(SessionError::Rejected(RequestError::EmptyRequest));
            }
            if let Err(depth) = self.check_depth() {
                return Err(SessionError::Overloaded { depth });
            }
            self.depth.fetch_add(1, Ordering::SeqCst);
            let meta = reg.sessions.get_mut(&req.session.0).expect("checked above");
            meta.inflight += 1;
            reg.touch(req.session.0);
            let _ = self.tx.send(Msg::Decode {
                id: req.session.0,
                q_row: req.q_row,
                submitted: Instant::now(),
                deadline,
                fault,
                reply,
            });
        }
        Ok(DecodeHandle { rx })
    }

    /// Close a session and return its KV pages to the pool. Queued decode
    /// steps for the session are flushed first, so nothing already
    /// admitted is lost; subsequent operations on the id get
    /// [`SessionError::UnknownSession`]. Closing is always valid — also
    /// for evicted sessions (that is how their ids are retired).
    pub fn close_session(&self, session: SessionId) -> Result<(), SessionError> {
        let mut reg = lock_healed(&self.registry);
        let meta = reg
            .sessions
            .remove(&session.0)
            .ok_or(SessionError::UnknownSession(session))?;
        reg.pages_used -= meta.pages;
        reg.kv_pages_freed += meta.pages as u64;
        reg.kv_bytes = reg.kv_bytes.saturating_sub(meta.bytes);
        let _ = self.tx.send(Msg::Close { id: session.0 });
        Ok(())
    }

    /// Drain every open bucket and queued decode step, stop the batcher and
    /// return lifetime counters. Sessions still open are drained too —
    /// their pages count as freed, so a clean shutdown always reconciles
    /// to `kv_pages_allocated == kv_pages_freed`.
    pub fn shutdown(mut self) -> ServeStats {
        let _ = self.tx.send(Msg::Shutdown);
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
        let mut stats = lock_stats(&self.stats).clone();
        stats.rejected = self.rejected.load(Ordering::Relaxed);
        stats.overload_sheds = self.overload_sheds.load(Ordering::Relaxed);
        let mut reg = lock_healed(&self.registry);
        // The batcher's exit released every remaining cache into the pool;
        // mirror that drain here so the lifetime counters reconcile.
        let remaining: u64 = reg.sessions.values().map(|m| m.pages as u64).sum();
        reg.kv_pages_freed += remaining;
        reg.pages_used = 0;
        reg.kv_bytes = 0;
        reg.sessions.clear();
        stats.kv_bytes_peak = reg.kv_bytes_peak;
        stats.kv_pages_allocated = reg.kv_pages_allocated;
        stats.kv_pages_freed = reg.kv_pages_freed;
        stats.evictions = reg.evictions;
        stats.admission_rejections = reg.admission_rejections;
        stats
    }

    /// A live copy of the lifetime counters — the same aggregates
    /// [`shutdown`](Self::shutdown) returns, readable while the server
    /// is serving (`GET /metrics` is built on this). Counters the
    /// batcher owns trail its in-progress launch by at most one lock
    /// acquisition.
    pub fn stats_snapshot(&self) -> ServeStats {
        let mut stats = lock_stats(&self.stats).clone();
        stats.rejected = self.rejected.load(Ordering::Relaxed);
        stats.overload_sheds = self.overload_sheds.load(Ordering::Relaxed);
        let reg = lock_healed(&self.registry);
        stats.kv_bytes_peak = reg.kv_bytes_peak;
        stats.kv_pages_allocated = reg.kv_pages_allocated;
        stats.kv_pages_freed = reg.kv_pages_freed;
        stats.evictions = reg.evictions;
        stats.admission_rejections = reg.admission_rejections;
        stats
    }

    /// The batcher's live queue-depth snapshot (per-bucket prefill
    /// depths + the decode queue), refreshed once per batcher loop.
    pub fn queue_depths(&self) -> QueueDepths {
        match self.depths.lock() {
            Ok(guard) => guard.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }

    /// Test hook: kill a thread while it holds the registry lock with
    /// scribbled mirror counters, leaving the mutex poisoned — the
    /// setup for every `lock_healed` recovery test.
    #[cfg(test)]
    pub(crate) fn poison_registry_for_test(&self) {
        let registry = Arc::clone(&self.registry);
        let scribbler = std::thread::spawn(move || {
            let mut reg = registry.lock().unwrap();
            reg.pages_used = 9999;
            reg.kv_bytes = u64::MAX;
            panic!("client died mid-critical-section");
        });
        assert!(scribbler.join().is_err(), "scribbler must poison the lock");
    }
}

impl<T: Scalar> Drop for AttentionServer<T> {
    fn drop(&mut self) {
        if let Some(w) = self.worker.take() {
            let _ = self.tx.send(Msg::Shutdown);
            let _ = w.join();
        }
    }
}

/// One queued decode step on the batcher thread.
struct PendingDecode<T: Scalar> {
    id: u64,
    q_row: Vec<T>,
    submitted: Instant,
    deadline: Option<Instant>,
    fault: Option<FaultKind>,
    reply: DecodeReply<T>,
}

/// The batcher's KV storage, resolved once from [`KvConfig::kv_dtype`]:
/// one pool plus the per-session page tables over it, either at the
/// compute dtype (`Native`) or bf16-quantised (`Quant`). Appends narrow
/// at write time in the `Quant` arm; decode steps carry the stored pages
/// to the engine tagged with their quantisation so the launch widens on
/// load instead of materialising an f32 copy.
enum KvStore<T: Scalar> {
    Native {
        pool: KvPool<T>,
        caches: HashMap<u64, PagedKvCache<T>>,
    },
    Quant {
        pool: KvPool<Bf16>,
        caches: HashMap<u64, PagedKvCache<Bf16>>,
    },
}

impl<T: Scalar> KvStore<T> {
    fn new(config: &KvConfig) -> KvStore<T> {
        match config.kv_dtype {
            KvDtype::Native => KvStore::Native {
                pool: KvPool::new(config),
                caches: HashMap::new(),
            },
            KvDtype::Bf16 => KvStore::Quant {
                pool: KvPool::new(config),
                caches: HashMap::new(),
            },
        }
    }

    /// Create the session's (empty) page table. `false` if the geometry
    /// cannot back it (admission already validated, so this is defensive).
    fn open(&mut self, config: &KvConfig, id: u64, d: usize, d_v: usize) -> bool {
        match self {
            KvStore::Native { caches, .. } => match PagedKvCache::new(config, d, d_v) {
                Ok(cache) => {
                    caches.insert(id, cache);
                    true
                }
                Err(_) => false,
            },
            KvStore::Quant { caches, .. } => match PagedKvCache::new(config, d, d_v) {
                Ok(cache) => {
                    caches.insert(id, cache);
                    true
                }
                Err(_) => false,
            },
        }
    }

    /// Append one position, narrowing to bf16 in the `Quant` arm. `false`
    /// when the session is unknown or the pool refuses (admission reserved
    /// the pages, so a refusal is defensive).
    fn append(&mut self, id: u64, k_row: &[T], v_row: &[T]) -> bool {
        match self {
            KvStore::Native { pool, caches } => caches
                .get_mut(&id)
                .is_some_and(|c| c.append(pool, k_row, v_row).is_ok()),
            KvStore::Quant { pool, caches } => caches
                .get_mut(&id)
                .is_some_and(|c| c.append_narrowed(pool, k_row, v_row).is_ok()),
        }
    }

    /// Append a block of positions (see [`append`](Self::append)).
    fn extend(&mut self, id: u64, k: &Matrix<T>, v: &Matrix<T>) -> bool {
        match self {
            KvStore::Native { pool, caches } => caches
                .get_mut(&id)
                .is_some_and(|c| c.extend(pool, k, v).is_ok()),
            KvStore::Quant { pool, caches } => caches
                .get_mut(&id)
                .is_some_and(|c| c.extend_narrowed(pool, k, v).is_ok()),
        }
    }

    /// Drop the session and return its pages. `false` if unknown.
    fn close(&mut self, id: u64) -> bool {
        match self {
            KvStore::Native { pool, caches } => match caches.remove(&id) {
                Some(mut cache) => {
                    cache.release(pool);
                    true
                }
                None => false,
            },
            KvStore::Quant { pool, caches } => match caches.remove(&id) {
                Some(mut cache) => {
                    cache.release(pool);
                    true
                }
                None => false,
            },
        }
    }

    /// Return the session's pages but keep its (now empty) table — the
    /// eviction half-close.
    fn evict(&mut self, id: u64) {
        match self {
            KvStore::Native { pool, caches } => {
                if let Some(cache) = caches.get_mut(&id) {
                    cache.release(pool);
                }
            }
            KvStore::Quant { pool, caches } => {
                if let Some(cache) = caches.get_mut(&id) {
                    cache.release(pool);
                }
            }
        }
    }

    /// Cached positions of a session, `None` if unknown.
    fn len_of(&self, id: u64) -> Option<usize> {
        match self {
            KvStore::Native { caches, .. } => caches.get(&id).map(|c| c.len()),
            KvStore::Quant { caches, .. } => caches.get(&id).map(|c| c.len()),
        }
    }

    /// Build the engine-facing decode step for a known, non-empty session:
    /// `Native` borrows the pages at `T`, `Quant` borrows them as
    /// [`dfss_core::engine::KvRows::PagedBf16`] so the engine routes the
    /// step through the fused widen-on-load path.
    fn step<'a>(&'a self, id: u64, q_row: &'a [T]) -> DecodeStep<'a, T> {
        match self {
            KvStore::Native { pool, caches } => {
                let cache = &caches[&id];
                DecodeStep {
                    q_row,
                    k_rows: cache.k_rows(pool),
                    v_rows: cache.v_rows(pool),
                    len: cache.len(),
                    d: cache.d(),
                    d_v: cache.d_v(),
                }
            }
            KvStore::Quant { pool, caches } => {
                let cache = &caches[&id];
                DecodeStep {
                    q_row,
                    k_rows: cache.k_rows_quant(pool),
                    v_rows: cache.v_rows_quant(pool),
                    len: cache.len(),
                    d: cache.d(),
                    d_v: cache.d_v(),
                }
            }
        }
    }

    /// Shutdown drain: return every session's pages to the pool.
    fn release_all(&mut self) {
        match self {
            KvStore::Native { pool, caches } => {
                for (_, mut cache) in caches.drain() {
                    cache.release(pool);
                }
            }
            KvStore::Quant { pool, caches } => {
                for (_, mut cache) in caches.drain() {
                    cache.release(pool);
                }
            }
        }
    }

    fn check_invariants(&self) -> Result<(), String> {
        match self {
            KvStore::Native { pool, .. } => pool.check_invariants(),
            KvStore::Quant { pool, .. } => pool.check_invariants(),
        }
    }
}

/// The batcher thread's session + decode state: the KV store (pool +
/// per-session page tables) and the queued steps.
struct DecodeState<T: Scalar> {
    store: KvStore<T>,
    config: KvConfig,
    pending: Vec<PendingDecode<T>>,
}

impl<T: Scalar> DecodeState<T> {
    fn new(config: KvConfig) -> DecodeState<T> {
        DecodeState {
            store: KvStore::new(&config),
            config,
            pending: Vec::new(),
        }
    }

    fn next_deadline(&self, policy: &BatchPolicy) -> Option<Instant> {
        self.pending
            .iter()
            .map(|p| p.submitted + policy.max_delay)
            .min()
    }

    fn has_pending_for(&self, id: u64) -> bool {
        self.pending.iter().any(|p| p.id == id)
    }
}

/// The batcher thread: shape-bucketed prefill admission plus the decode
/// queue, max-batch + deadline close policy for both, one engine flush per
/// closed batch.
fn batcher_loop<T: Scalar>(
    mech: Arc<dyn Attention<T> + Send + Sync>,
    policy: BatchPolicy,
    ctx: GpuCtx,
    kv: KvConfig,
    registry: Arc<Mutex<Registry>>,
    depth: Arc<AtomicU64>,
    stats: Arc<Mutex<ServeStats>>,
    depths: Arc<Mutex<QueueDepths>>,
    arm: Arc<FaultArm>,
    rx: Receiver<Msg<T>>,
) {
    let mut engine = AttentionEngine::with_ctx(mech.as_ref(), ctx);
    let mut queue: BucketQueue<T, Reply<T>> = BucketQueue::new(policy);
    let mut decode = DecodeState::new(kv);
    let stats = &*stats;
    // Publish the (empty) queue geometry once per loop iteration so
    // observers read depths at most one message drain stale.
    let publish = |queue: &BucketQueue<T, Reply<T>>, decode: &DecodeState<T>| {
        let snapshot = QueueDepths {
            prefill: queue.depths(),
            decode: decode.pending.len(),
        };
        match depths.lock() {
            Ok(mut guard) => *guard = snapshot,
            Err(poisoned) => *poisoned.into_inner() = snapshot,
        }
    };
    let mut stopping = false;
    while !stopping {
        let deadline = match (queue.next_deadline(), decode.next_deadline(&policy)) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let msg = match deadline {
            None => match rx.recv() {
                Ok(m) => Some(m),
                Err(_) => break, // all senders gone: drain and stop
            },
            Some(deadline) => {
                let timeout = deadline.saturating_duration_since(Instant::now());
                match rx.recv_timeout(timeout) {
                    Ok(m) => Some(m),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        };
        // Greedily drain everything already waiting in the channel before
        // closing any bucket: when a launch kept the batcher busy, the
        // backlog that built up behind it coalesces into full batches
        // instead of trickling out one deadline-expired request at a time.
        let mut next = msg;
        loop {
            match next {
                Some(Msg::Request(req)) => {
                    if let Some(full) = queue.push(req) {
                        if !serve_bucket(&mut engine, full, &arm, &depth, stats) {
                            return;
                        }
                    }
                }
                Some(Msg::Open { id, d, d_v }) => {
                    // Admission validated that a page can hold the widths.
                    if decode.store.open(&decode.config, id, d, d_v) {
                        lock_stats(stats).sessions_opened += 1;
                    }
                }
                Some(Msg::Append { id, k_row, v_row }) => {
                    // Determinism: a queued decode for this session must
                    // launch against the cache as of its submission.
                    if decode.has_pending_for(id)
                        && !serve_decode(&mut engine, &mut decode, &registry, &arm, &depth, stats)
                    {
                        return;
                    }
                    // Admission reserved the pages under the registry lock
                    // before this message was sent, so the pool cannot
                    // come up short here.
                    if decode.store.append(id, &k_row, &v_row) {
                        lock_stats(stats).kv_rows_appended += 1;
                    }
                }
                Some(Msg::Extend { id, k, v }) => {
                    if decode.has_pending_for(id)
                        && !serve_decode(&mut engine, &mut decode, &registry, &arm, &depth, stats)
                    {
                        return;
                    }
                    let rows = k.rows();
                    if decode.store.extend(id, &k, &v) {
                        lock_stats(stats).kv_rows_appended += rows as u64;
                    }
                }
                Some(Msg::Close { id }) => {
                    if decode.has_pending_for(id)
                        && !serve_decode(&mut engine, &mut decode, &registry, &arm, &depth, stats)
                    {
                        return;
                    }
                    if decode.store.close(id) {
                        lock_stats(stats).sessions_closed += 1;
                    }
                }
                Some(Msg::Evict { id }) => {
                    // Victims are idle by construction (inflight == 0),
                    // but flush anyway so a queued step can never attend
                    // over freed pages.
                    if decode.has_pending_for(id)
                        && !serve_decode(&mut engine, &mut decode, &registry, &arm, &depth, stats)
                    {
                        return;
                    }
                    decode.store.evict(id);
                }
                Some(Msg::Decode {
                    id,
                    q_row,
                    submitted,
                    deadline,
                    fault,
                    reply,
                }) => {
                    decode.pending.push(PendingDecode {
                        id,
                        q_row,
                        submitted,
                        deadline,
                        fault,
                        reply,
                    });
                    if decode.pending.len() >= policy.max_batch
                        && !serve_decode(&mut engine, &mut decode, &registry, &arm, &depth, stats)
                    {
                        return;
                    }
                }
                Some(Msg::Shutdown) => {
                    stopping = true;
                    break;
                }
                None => break,
            }
            next = rx.try_recv().ok();
        }
        let now = Instant::now();
        for due in queue.take_due(now) {
            if !serve_bucket(&mut engine, due, &arm, &depth, stats) {
                return;
            }
        }
        if decode
            .next_deadline(&policy)
            .is_some_and(|deadline| deadline <= now)
            && !serve_decode(&mut engine, &mut decode, &registry, &arm, &depth, stats)
        {
            return;
        }
        publish(&queue, &decode);
    }
    for bucket in queue.take_all() {
        if !serve_bucket(&mut engine, bucket, &arm, &depth, stats) {
            return;
        }
    }
    if !serve_decode(&mut engine, &mut decode, &registry, &arm, &depth, stats) {
        return;
    }
    // Shutdown drain: return every open session's pages to the pool so the
    // pool invariants (free + used == capacity, no leaked pages) verify even
    // when clients abandon sessions without closing them.
    decode.store.release_all();
    debug_assert!(decode.store.check_invariants().is_ok());
    publish(&queue, &decode);
}

/// One prefill job resumable across continuous-scheduler iterations: the
/// admitted triple plus the output rows accumulated chunk by chunk.
struct PrefillJob<T: Scalar> {
    id: u64,
    q: Matrix<T>,
    k: Matrix<T>,
    v: Matrix<T>,
    /// Output rows completed so far (row-major, grows front to back —
    /// chunks are planned in row order).
    out: Vec<T>,
    sim_latency_s: f64,
    /// Whether the job's first chunk has launched (fault arming point).
    launched: bool,
    submitted: Instant,
    /// First chunk's launch time (queue-wait measurement point).
    started: Option<Instant>,
    deadline: Option<Instant>,
    fault: Option<FaultKind>,
    reply: Reply<T>,
}

/// Copy rows `[lo, hi)` of `m` into a fresh matrix — the chunk slice the
/// scheduler hands to [`AttentionEngine::forward_chunk`].
fn slice_rows<T: Scalar>(m: &Matrix<T>, lo: usize, hi: usize) -> Matrix<T> {
    let d = m.cols();
    let mut rows = Vec::with_capacity((hi - lo) * d);
    for r in lo..hi {
        rows.extend_from_slice(m.row(r));
    }
    Matrix::from_vec(hi - lo, d, rows)
}

/// Append the scheduler's unpublished events to the shared trace.
fn publish_trace(shared: &Mutex<SchedTrace>, sched: &Scheduler, published: &mut usize) {
    let events = sched.trace().events();
    if *published >= events.len() {
        return;
    }
    let mut guard = match shared.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    for e in &events[*published..] {
        guard.push(e.clone());
    }
    *published = events.len();
}

/// The continuous-batching worker: one admission loop that, every
/// scheduler iteration, flushes **all ready decode steps** and then runs
/// the iteration's planned prefill chunks — the single-cadence replacement
/// for the separate prefill/decode flushes of [`batcher_loop`].
///
/// Sessions, KV governance, fault arming, deadline shedding and panic
/// isolation behave exactly as in the classic batcher; the decode
/// determinism rule (a queued step launches before an append/extend/close/
/// evict touches its session) is preserved by a forced decode flush,
/// recorded distinctly in the trace. With a steal pool attached (sharded
/// mode), the loop additionally executes queued pool chunks — its own
/// shard's eagerly, foreign shards' only when otherwise idle.
#[allow(clippy::too_many_arguments)]
fn continuous_loop<T: Scalar>(
    mech: Arc<dyn Attention<T> + Send + Sync>,
    policy: BatchPolicy,
    sched_policy: SchedPolicy,
    ctx: GpuCtx,
    kv: KvConfig,
    registry: Arc<Mutex<Registry>>,
    depth: Arc<AtomicU64>,
    stats: Arc<Mutex<ServeStats>>,
    depths: Arc<Mutex<QueueDepths>>,
    trace_out: Arc<Mutex<SchedTrace>>,
    arm: Arc<FaultArm>,
    rx: Receiver<Msg<T>>,
    steal: Option<(usize, Arc<StealPool<T>>)>,
) {
    let mut engine = AttentionEngine::with_ctx(mech.as_ref(), ctx);
    let mut decode = DecodeState::new(kv);
    let mut sched = Scheduler::new(sched_policy);
    let mut jobs: HashMap<u64, PrefillJob<T>> = HashMap::new();
    let mut next_job: u64 = 0;
    let mut next_step: u64 = 0;
    let mut published = 0usize;
    let stats = &*stats;
    let chunkable = mech.supports_row_chunking();
    let publish = |jobs: &HashMap<u64, PrefillJob<T>>, decode: &DecodeState<T>| {
        let mut prefill: Vec<(ShapeKey, usize)> = Vec::new();
        for job in jobs.values() {
            let key = ShapeKey {
                n: job.q.rows(),
                d: job.q.cols(),
                d_v: job.v.cols(),
            };
            match prefill.iter_mut().find(|(k, _)| *k == key) {
                Some((_, n)) => *n += 1,
                None => prefill.push((key, 1)),
            }
        }
        prefill.sort_by_key(|(k, _)| (k.n, k.d, k.d_v));
        let snapshot = QueueDepths {
            prefill,
            decode: decode.pending.len(),
        };
        match depths.lock() {
            Ok(mut guard) => *guard = snapshot,
            Err(poisoned) => *poisoned.into_inner() = snapshot,
        }
    };
    let mut stopping = false;
    loop {
        // Receive: block when idle (poll with a short timeout in sharded
        // mode so foreign pool work can be stolen), drain greedily when
        // the scheduler has work queued.
        let msg = if stopping {
            None
        } else if sched.has_work() {
            rx.try_recv().ok()
        } else {
            match &steal {
                None => match rx.recv() {
                    Ok(m) => Some(m),
                    Err(_) => {
                        stopping = true;
                        None
                    }
                },
                Some((_, pool)) if !pool.is_drained() => rx.try_recv().ok(),
                Some(_) => match rx.recv_timeout(Duration::from_micros(500)) {
                    Ok(m) => Some(m),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => {
                        stopping = true;
                        None
                    }
                },
            }
        };
        let mut next = msg;
        while let Some(m) = next.take() {
            match m {
                Msg::Request(req) => {
                    if req.fault == Some(FaultKind::KillServer) {
                        return;
                    }
                    if chunkable {
                        let id = next_job;
                        next_job += 1;
                        sched.admit_prefill(id, req.q.rows());
                        jobs.insert(
                            id,
                            PrefillJob {
                                id,
                                q: req.q,
                                k: req.k,
                                v: req.v,
                                out: Vec::new(),
                                sim_latency_s: 0.0,
                                launched: false,
                                submitted: req.submitted,
                                started: None,
                                deadline: req.deadline,
                                fault: req.fault,
                                reply: req.reply,
                            },
                        );
                    } else {
                        // Mechanisms without row-separable scores (the
                        // blocked-ELL hybrid) run whole, as one
                        // single-request bucket — correctness never
                        // depends on chunking being safe.
                        let key = ShapeKey {
                            n: req.q.rows(),
                            d: req.q.cols(),
                            d_v: req.v.cols(),
                        };
                        let oldest = req.submitted;
                        let bucket = Bucket {
                            key,
                            requests: vec![req],
                            oldest,
                        };
                        if !serve_bucket(&mut engine, bucket, &arm, &depth, stats) {
                            return;
                        }
                    }
                }
                Msg::Open { id, d, d_v } => {
                    if decode.store.open(&decode.config, id, d, d_v) {
                        lock_stats(stats).sessions_opened += 1;
                    }
                }
                Msg::Append { id, k_row, v_row } => {
                    if decode.has_pending_for(id) {
                        let _ = sched.force_decode_flush();
                        if !serve_decode(&mut engine, &mut decode, &registry, &arm, &depth, stats) {
                            return;
                        }
                    }
                    if decode.store.append(id, &k_row, &v_row) {
                        lock_stats(stats).kv_rows_appended += 1;
                    }
                }
                Msg::Extend { id, k, v } => {
                    if decode.has_pending_for(id) {
                        let _ = sched.force_decode_flush();
                        if !serve_decode(&mut engine, &mut decode, &registry, &arm, &depth, stats) {
                            return;
                        }
                    }
                    let rows = k.rows();
                    if decode.store.extend(id, &k, &v) {
                        lock_stats(stats).kv_rows_appended += rows as u64;
                    }
                }
                Msg::Close { id } => {
                    if decode.has_pending_for(id) {
                        let _ = sched.force_decode_flush();
                        if !serve_decode(&mut engine, &mut decode, &registry, &arm, &depth, stats) {
                            return;
                        }
                    }
                    if decode.store.close(id) {
                        lock_stats(stats).sessions_closed += 1;
                    }
                }
                Msg::Evict { id } => {
                    if decode.has_pending_for(id) {
                        let _ = sched.force_decode_flush();
                        if !serve_decode(&mut engine, &mut decode, &registry, &arm, &depth, stats) {
                            return;
                        }
                    }
                    decode.store.evict(id);
                }
                Msg::Decode {
                    id,
                    q_row,
                    submitted,
                    deadline,
                    fault,
                    reply,
                } => {
                    decode.pending.push(PendingDecode {
                        id,
                        q_row,
                        submitted,
                        deadline,
                        fault,
                        reply,
                    });
                    sched.admit_decode(next_step);
                    next_step += 1;
                }
                Msg::Shutdown => {
                    stopping = true;
                    break;
                }
            }
            next = rx.try_recv().ok();
        }
        // One scheduler iteration: all ready decode first, then the
        // planned prefill chunks.
        if let Some(plan) = sched.next_iteration() {
            lock_stats(stats).sched_iterations += 1;
            // Publish the iteration event *before* executing it: a client
            // whose reply arrives from this iteration must find it in the
            // trace already.
            publish_trace(&trace_out, &sched, &mut published);
            if !plan.decode.is_empty()
                && !serve_decode(&mut engine, &mut decode, &registry, &arm, &depth, stats)
            {
                return;
            }
            for chunk in plan.chunks {
                if !run_chunk(
                    &mut engine,
                    &mut jobs,
                    &mut sched,
                    chunk,
                    &arm,
                    &depth,
                    stats,
                ) {
                    return;
                }
            }
        }
        // Pool work (sharded mode): own-home chunks eagerly, one foreign
        // (stolen) chunk per pass only when the local scheduler is idle.
        if let Some((me, pool)) = &steal {
            let allow_steal = !sched.has_work() || stopping;
            if let Some(chunk) = pool.claim(*me, allow_steal) {
                run_pool_chunk(&mut engine, chunk, *me, &mut sched, stats);
            }
        }
        publish_trace(&trace_out, &sched, &mut published);
        publish(&jobs, &decode);
        if stopping {
            let pool_drained = match &steal {
                None => true,
                Some((_, pool)) => pool.is_drained(),
            };
            if !sched.has_work() && decode.pending.is_empty() && pool_drained {
                break;
            }
        }
    }
    let _ = policy; // close cadence is the scheduler's; depth bound is enforced at admission
    decode.store.release_all();
    debug_assert!(decode.store.check_invariants().is_ok());
    publish_trace(&trace_out, &sched, &mut published);
    publish(&jobs, &decode);
}

/// Execute one planned prefill chunk: deadline shed, fault arming on the
/// job's first chunk, one [`AttentionEngine::forward_chunk`] under panic
/// isolation, output-row accumulation, and the completed-job reply.
/// Returns `false` never today (kill-server faults fire at admission in
/// continuous mode), kept `bool` to mirror [`serve_bucket`].
fn run_chunk<T: Scalar>(
    engine: &mut AttentionEngine<'_, T>,
    jobs: &mut HashMap<u64, PrefillJob<T>>,
    sched: &mut Scheduler,
    chunk: ChunkPlan,
    arm: &FaultArm,
    depth: &AtomicU64,
    stats: &Mutex<ServeStats>,
) -> bool {
    let now = Instant::now();
    let Some(job) = jobs.get_mut(&chunk.job) else {
        return true;
    };
    if expired(job.deadline, now) {
        lock_stats(stats).deadline_sheds += 1;
        sched.cancel(chunk.job);
        let job = jobs.remove(&chunk.job).expect("job present above");
        depth.fetch_sub(1, Ordering::SeqCst);
        let _ = job.reply.send(Err(ServeError::DeadlineExceeded {
            queued_for: now.saturating_duration_since(job.submitted),
        }));
        return true;
    }
    if job.started.is_none() {
        job.started = Some(now);
    }
    if !job.launched {
        job.launched = true;
        match job.fault {
            Some(FaultKind::PanicInBatch) => arm.arm_panic(),
            Some(FaultKind::SlowLaunch(delay)) => arm.arm_slow(delay),
            _ => {}
        }
    }
    let q_rows = slice_rows(&job.q, chunk.lo, chunk.hi);
    let result = catch_unwind(AssertUnwindSafe(|| {
        engine.forward_chunk(&q_rows, &job.k, &job.v)
    }));
    match result {
        Err(payload) => {
            // The chunk's launch panicked: fail this job alone, restore
            // the engine, keep the loop (and every other job) serving.
            lock_stats(stats).batch_panics += 1;
            engine.recover_after_panic();
            let msg = panic_message(payload);
            sched.cancel(chunk.job);
            let job = jobs.remove(&chunk.job).expect("job present above");
            depth.fetch_sub(1, Ordering::SeqCst);
            let _ = job
                .reply
                .send(Err(ServeError::BatchPanicked { payload: msg }));
        }
        Ok(Err(e)) => {
            sched.cancel(chunk.job);
            let job = jobs.remove(&chunk.job).expect("job present above");
            depth.fetch_sub(1, Ordering::SeqCst);
            let _ = job.reply.send(Err(ServeError::Rejected(e)));
        }
        Ok(Ok(res)) => {
            job.sim_latency_s += res.sim_latency_s;
            job.out.extend_from_slice(
                res.output
                    .as_ref()
                    .expect("serving engines run in exec mode and materialise outputs")
                    .as_slice(),
            );
            {
                let mut st = lock_stats(stats);
                st.prefill_chunks += 1;
                st.total_sim_latency_s += res.sim_latency_s;
            }
            if chunk.hi == job.q.rows() {
                let job = jobs.remove(&chunk.job).expect("job present above");
                depth.fetch_sub(1, Ordering::SeqCst);
                let (n, d) = job.q.shape();
                let d_v = job.v.cols();
                let started = job.started.unwrap_or(now);
                let served = Served {
                    output: Matrix::from_vec(n, d_v, job.out),
                    // Continuous jobs are identified by admission ordinal
                    // (monotone, like engine tickets in launch order).
                    ticket: Ticket(job.id),
                    bucket: ShapeKey { n, d, d_v },
                    batch_size: 1,
                    queue_wait: started.saturating_duration_since(job.submitted),
                    service: started.elapsed(),
                    latency: job.submitted.elapsed(),
                    sim_latency_s: job.sim_latency_s,
                };
                lock_stats(stats).served += 1;
                let _ = job.reply.send(Ok(served));
            }
        }
    }
    engine.reset_timeline();
    true
}

/// Execute one claimed steal-pool chunk on this shard's engine. Outputs
/// are bit-identical whichever shard runs the chunk (same mechanism, same
/// inputs, same kernels); the shard that completes the job's **last**
/// chunk assembles the output rows in row order and replies.
fn run_pool_chunk<T: Scalar>(
    engine: &mut AttentionEngine<'_, T>,
    chunk: StealChunk<T>,
    me: usize,
    sched: &mut Scheduler,
    stats: &Mutex<ServeStats>,
) {
    let now = Instant::now();
    let job = &chunk.job;
    if expired(job.deadline, now) {
        if job.shed() {
            lock_stats(stats).deadline_sheds += 1;
        }
        return;
    }
    if job.is_dead() {
        return;
    }
    if chunk.stolen {
        sched.note_steal(job.id, chunk.lo, chunk.hi, me);
    }
    let q_rows = slice_rows(&job.q, chunk.lo, chunk.hi);
    let result = catch_unwind(AssertUnwindSafe(|| {
        engine.forward_chunk(&q_rows, &job.k, &job.v)
    }));
    match result {
        Err(payload) => {
            lock_stats(stats).batch_panics += 1;
            engine.recover_after_panic();
            job.fail(ServeError::BatchPanicked {
                payload: panic_message(payload),
            });
        }
        Ok(Err(e)) => {
            job.fail(ServeError::Rejected(e));
        }
        Ok(Ok(res)) => {
            {
                let mut st = lock_stats(stats);
                st.prefill_chunks += 1;
                if chunk.stolen {
                    st.chunks_stolen += 1;
                }
                st.total_sim_latency_s += res.sim_latency_s;
            }
            let out = res
                .output
                .expect("serving engines run in exec mode and materialise outputs");
            if job.complete_chunk(chunk.idx, out.as_slice().to_vec(), res.sim_latency_s) {
                // This shard finished the job's last chunk: it assembles
                // and replies, and counts the serve in its own stats.
                lock_stats(stats).served += 1;
            }
        }
    }
    engine.reset_timeline();
}

/// Best-effort human-readable panic payload (panics carry `&str` or
/// `String` in practice; anything else is reported opaquely).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Launch one closed prefill bucket: engine submit × B, one flush (one
/// batched launch per op), reply per request with its latency breakdown.
///
/// Expired-deadline requests are shed *before* packing — they get a typed
/// [`ServeError::DeadlineExceeded`] instead of occupying batch slots. A
/// panic inside the flush is caught here: every request packed into the
/// batch fails with [`ServeError::BatchPanicked`] and the engine is
/// restored to a serviceable state, so one poisoned batch never takes the
/// batcher down. Returns `false` only when an injected [`FaultKind::KillServer`]
/// fires — the caller must exit immediately without draining (the
/// hard-crash simulation).
fn serve_bucket<T: Scalar>(
    engine: &mut AttentionEngine<'_, T>,
    bucket: Bucket<T, Reply<T>>,
    arm: &FaultArm,
    depth: &AtomicU64,
    stats: &Mutex<ServeStats>,
) -> bool {
    let closed_at = Instant::now();
    depth.fetch_sub(bucket.requests.len() as u64, Ordering::SeqCst);
    // Deadline shed before packing: an expired request never occupies a
    // batch slot and its injected fault (if any) never arms.
    let mut live = Vec::with_capacity(bucket.requests.len());
    for req in bucket.requests {
        if expired(req.deadline, closed_at) {
            lock_stats(stats).deadline_sheds += 1;
            let _ = req.reply.send(Err(ServeError::DeadlineExceeded {
                queued_for: closed_at.saturating_duration_since(req.submitted),
            }));
        } else {
            live.push(req);
        }
    }
    if live.is_empty() {
        return true;
    }
    if live.iter().any(|r| r.fault == Some(FaultKind::KillServer)) {
        return false;
    }
    for req in &live {
        match req.fault {
            Some(FaultKind::PanicInBatch) => arm.arm_panic(),
            Some(FaultKind::SlowLaunch(delay)) => arm.arm_slow(delay),
            _ => {}
        }
    }
    let mut waiting = Vec::with_capacity(live.len());
    for req in live {
        match engine.submit(req.q, req.k, req.v) {
            Ok(_) => waiting.push((req.reply, req.submitted)),
            Err(e) => {
                // Admission already validated; a typed reply (not a panic)
                // keeps the batcher alive if constraints ever diverge.
                let _ = req.reply.send(Err(ServeError::Rejected(e)));
            }
        }
    }
    let results = match catch_unwind(AssertUnwindSafe(|| engine.flush())) {
        Ok(results) => results,
        Err(payload) => {
            // The panic unwound mid-flush: the batch is lost, the server
            // is not. Fail exactly the requests that were packed into it,
            // restore the engine, and keep serving.
            lock_stats(stats).batch_panics += 1;
            engine.recover_after_panic();
            let msg = panic_message(payload);
            for (reply, _) in waiting {
                let _ = reply.send(Err(ServeError::BatchPanicked {
                    payload: msg.clone(),
                }));
            }
            return true;
        }
    };
    let service = closed_at.elapsed();
    let mut st = lock_stats(stats);
    st.batches += 1;
    st.max_batch = st.max_batch.max(results.len());
    st.total_sim_latency_s += engine.last_flush().sim_latency_s();
    // Flush results come back in ticket (= submission) order, matching
    // `waiting`.
    for (res, (reply, submitted)) in results.into_iter().zip(waiting) {
        st.served += 1;
        let served = Served {
            output: res
                .output
                .expect("serving engines run in exec mode and materialise outputs"),
            ticket: res.ticket,
            bucket: res.bucket,
            batch_size: res.batch_size,
            queue_wait: closed_at.saturating_duration_since(submitted),
            service,
            latency: submitted.elapsed(),
            sim_latency_s: res.sim_latency_s,
        };
        let _ = reply.send(Ok(served));
    }
    drop(st);
    // Bound the owned context: the timeline's job is done once the flush
    // report is folded into the stats.
    engine.reset_timeline();
    true
}

/// Launch the queued decode steps as one ragged flush (one launch per op
/// across all streams), reply per step with its latency breakdown. A call
/// with nothing queued is a no-op.
///
/// Same failure domains as [`serve_bucket`]: expired deadlines shed typed
/// before packing, an in-flush panic fails only this batch's steps
/// ([`ServeError::BatchPanicked`]) and always releases the sessions'
/// inflight marks. Returns `false` only on an injected
/// [`FaultKind::KillServer`].
fn serve_decode<T: Scalar>(
    engine: &mut AttentionEngine<'_, T>,
    decode: &mut DecodeState<T>,
    registry: &Mutex<Registry>,
    arm: &FaultArm,
    depth: &AtomicU64,
    stats: &Mutex<ServeStats>,
) -> bool {
    if decode.pending.is_empty() {
        return true;
    }
    let closed_at = Instant::now();
    let pending = std::mem::take(&mut decode.pending);
    depth.fetch_sub(pending.len() as u64, Ordering::SeqCst);
    if pending
        .iter()
        .any(|p| p.fault == Some(FaultKind::KillServer) && !expired(p.deadline, closed_at))
    {
        return false;
    }
    // Admission validated widths and non-empty caches; a session whose
    // cache vanished between admission and launch (registry/batcher race on
    // a close) gets a typed rejection, not a panic. Expired deadlines shed
    // typed before packing; shed steps never arm their injected fault.
    let mut live: Vec<&PendingDecode<T>> = Vec::with_capacity(pending.len());
    for p in &pending {
        if expired(p.deadline, closed_at) {
            lock_stats(stats).deadline_sheds += 1;
            let _ = p.reply.send(Err(ServeError::DeadlineExceeded {
                queued_for: closed_at.saturating_duration_since(p.submitted),
            }));
            continue;
        }
        match decode.store.len_of(p.id) {
            Some(len) if len > 0 => live.push(p),
            _ => {
                let _ = p
                    .reply
                    .send(Err(ServeError::Rejected(RequestError::EmptyRequest)));
            }
        }
    }
    if live.is_empty() {
        release_inflight(registry, pending.iter().map(|p| p.id));
        return true;
    }
    for p in &live {
        match p.fault {
            Some(FaultKind::PanicInBatch) => arm.arm_panic(),
            Some(FaultKind::SlowLaunch(delay)) => arm.arm_slow(delay),
            _ => {}
        }
    }
    let steps: Vec<DecodeStep<'_, T>> = live
        .iter()
        .map(|p| decode.store.step(p.id, &p.q_row))
        .collect();
    match catch_unwind(AssertUnwindSafe(|| engine.flush_decode(&steps))) {
        Err(payload) => {
            // The ragged flush panicked: fail this batch's steps typed,
            // restore the engine, release the sessions' inflight marks (the
            // caches themselves are untouched — decode reads them, never
            // writes), and keep serving.
            lock_stats(stats).batch_panics += 1;
            engine.recover_after_panic();
            let msg = panic_message(payload);
            for p in &live {
                let _ = p.reply.send(Err(ServeError::BatchPanicked {
                    payload: msg.clone(),
                }));
            }
            release_inflight(registry, pending.iter().map(|p| p.id));
            return true;
        }
        Ok(Ok(results)) => {
            let service = closed_at.elapsed();
            let mut st = lock_stats(stats);
            // One "batch" per ragged launch group: the engine buckets steps
            // by (d, d_v), so a flush over mixed-width sessions runs (and
            // counts) several launches, each sized by its own streams.
            for bucket in &engine.last_decode().buckets {
                st.decode_batches += 1;
                st.max_decode_batch = st.max_decode_batch.max(bucket.streams);
            }
            st.total_sim_latency_s += engine.last_decode().sim_latency_s();
            // Results come back in step order, matching `live`.
            for (res, p) in results.into_iter().zip(&live) {
                st.decode_steps += 1;
                let served = ServedDecode {
                    output: res
                        .output
                        .expect("serving engines run in exec mode and materialise outputs"),
                    ticket: res.ticket,
                    session: SessionId(p.id),
                    cached_len: res.cached_len,
                    batch_size: res.batch_size,
                    queue_wait: closed_at.saturating_duration_since(p.submitted),
                    service,
                    latency: p.submitted.elapsed(),
                    sim_latency_s: res.sim_latency_s,
                };
                let _ = p.reply.send(Ok(served));
            }
        }
        Ok(Err(e)) => {
            for p in &live {
                let _ = p.reply.send(Err(ServeError::Rejected(e.clone())));
            }
        }
    }
    // Every queued step is resolved now — the sessions are idle again and
    // eligible for eviction.
    release_inflight(registry, pending.iter().map(|p| p.id));
    engine.reset_timeline();
    true
}

/// Whether a request's deadline has passed as of `now`.
fn expired(deadline: Option<Instant>, now: Instant) -> bool {
    deadline.is_some_and(|d| now > d)
}

/// Decrement the registry's inflight count for each served step's session
/// (sessions already closed are simply gone).
fn release_inflight(registry: &Mutex<Registry>, ids: impl Iterator<Item = u64>) {
    let mut reg = lock_healed(registry);
    for id in ids {
        if let Some(meta) = reg.sessions.get_mut(&id) {
            meta.inflight = meta.inflight.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SessionError;
    use dfss_core::dfss::DfssAttention;
    use dfss_core::full::FullAttention;
    use dfss_nmsparse::NmPattern;
    use dfss_tensor::Rng;
    use std::time::Duration;

    fn request(n: usize, d: usize, rng: &mut Rng) -> (Matrix<f32>, Matrix<f32>, Matrix<f32>) {
        (
            Matrix::random_normal(n, d, 0.0, 1.0, &mut *rng),
            Matrix::random_normal(n, d, 0.0, 1.0, &mut *rng),
            Matrix::random_normal(n, d, 0.0, 1.0, &mut *rng),
        )
    }

    fn row(d: usize, rng: &mut Rng) -> Vec<f32> {
        (0..d).map(|_| rng.normal(0.0, 1.0)).collect()
    }

    #[test]
    fn served_outputs_are_bit_identical_to_solo_forward() {
        let mech: Arc<dyn Attention<f32> + Send + Sync> =
            Arc::new(DfssAttention::new(NmPattern::P1_2));
        let server = AttentionServer::start(
            Arc::clone(&mech),
            BatchPolicy::batched(4, Duration::from_millis(5)),
        );
        let mut rng = Rng::new(3);
        let mut handles = Vec::new();
        let mut solo = Vec::new();
        for _ in 0..8 {
            let (q, k, v) = request(32, 16, &mut rng);
            let mut sctx = GpuCtx::a100();
            solo.push(mech.forward(&mut sctx, &q, &k, &v));
            handles.push(server.submit(q, k, v).unwrap());
        }
        for (i, (h, want)) in handles.into_iter().zip(&solo).enumerate() {
            let served = h.wait().expect("served");
            let same = served
                .output
                .as_slice()
                .iter()
                .zip(want.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "request {i} diverged from solo forward");
            assert!(served.batch_size >= 1 && served.batch_size <= 4);
            assert!(served.sim_latency_s > 0.0);
            assert!(served.latency >= served.service);
        }
        let stats = server.shutdown();
        assert_eq!(stats.served, 8);
        assert!(stats.batches >= 2); // max_batch 4 caps every launch
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn max_batch_fills_before_deadline() {
        let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(FullAttention);
        // Deadline far away: only the max-batch close can fire quickly.
        let server = AttentionServer::start(
            Arc::clone(&mech),
            BatchPolicy::batched(3, Duration::from_secs(600)),
        );
        let mut rng = Rng::new(5);
        let mut handles = Vec::new();
        for _ in 0..3 {
            let (q, k, v) = request(16, 8, &mut rng);
            handles.push(server.submit(q, k, v).unwrap());
        }
        for h in handles {
            let served = h.wait().expect("served");
            assert_eq!(served.batch_size, 3);
        }
        let stats = server.shutdown();
        assert_eq!((stats.served, stats.batches), (3, 1));
        assert_eq!(stats.max_batch, 3);
    }

    #[test]
    fn deadline_closes_partial_buckets() {
        let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(FullAttention);
        let server = AttentionServer::start(
            Arc::clone(&mech),
            BatchPolicy::batched(1000, Duration::from_millis(10)),
        );
        let mut rng = Rng::new(7);
        let (q, k, v) = request(16, 8, &mut rng);
        let t0 = Instant::now();
        let served = server.submit(q, k, v).unwrap().wait().expect("served");
        assert!(
            t0.elapsed() >= Duration::from_millis(10),
            "closed too early"
        );
        assert_eq!(served.batch_size, 1);
        assert!(served.queue_wait >= Duration::from_millis(9));
        let _ = server.shutdown();
    }

    #[test]
    fn heterogeneous_shapes_never_share_a_launch() {
        let mech: Arc<dyn Attention<f32> + Send + Sync> =
            Arc::new(DfssAttention::new(NmPattern::P1_2));
        let server = AttentionServer::start(
            Arc::clone(&mech),
            BatchPolicy::batched(8, Duration::from_millis(5)),
        );
        let mut rng = Rng::new(9);
        let mut handles = Vec::new();
        for i in 0..6 {
            let n = if i % 2 == 0 { 32 } else { 64 };
            let (q, k, v) = request(n, 8, &mut rng);
            handles.push((n, server.submit(q, k, v).unwrap()));
        }
        for (n, h) in handles {
            let served = h.wait().expect("served");
            assert_eq!(served.bucket.n, n);
            assert_eq!(served.batch_size, 3);
            assert_eq!(served.output.rows(), n);
        }
        let stats = server.shutdown();
        assert_eq!((stats.served, stats.batches), (6, 2));
    }

    #[test]
    fn bad_requests_get_typed_errors_and_server_survives() {
        let mech: Arc<dyn Attention<f32> + Send + Sync> =
            Arc::new(DfssAttention::new(NmPattern::P1_2));
        let server = AttentionServer::start(Arc::clone(&mech), BatchPolicy::per_request());
        // n = 31 violates the 1:2 group alignment.
        let q = Matrix::<f32>::zeros(31, 8);
        let err = server.submit(q.clone(), q.clone(), q.clone()).unwrap_err();
        assert!(matches!(
            err,
            ServeError::Rejected(RequestError::Unsupported { .. })
        ));
        // K mismatch.
        let q32 = Matrix::<f32>::zeros(32, 8);
        let k_bad = Matrix::<f32>::zeros(16, 8);
        let err = server.submit(q32.clone(), k_bad, q32.clone()).unwrap_err();
        assert!(matches!(
            err,
            ServeError::Rejected(RequestError::KShapeMismatch { .. })
        ));
        // The server still serves valid traffic afterwards.
        let mut rng = Rng::new(11);
        let (q, k, v) = request(32, 8, &mut rng);
        let served = server.submit(q, k, v).unwrap().wait().expect("served");
        assert_eq!(served.batch_size, 1);
        let stats = server.shutdown();
        assert_eq!((stats.served, stats.rejected), (1, 2));
    }

    #[test]
    fn shutdown_drains_open_buckets() {
        let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(FullAttention);
        // Deadline far in the future: only the shutdown drain can serve.
        let server = AttentionServer::start(
            Arc::clone(&mech),
            BatchPolicy::batched(1000, Duration::from_secs(600)),
        );
        let mut rng = Rng::new(13);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let (q, k, v) = request(16, 8, &mut rng);
            handles.push(server.submit(q, k, v).unwrap());
        }
        let stats = server.shutdown();
        assert_eq!((stats.served, stats.batches), (4, 1));
        for h in handles {
            assert!(h.wait().is_ok());
        }
    }

    #[test]
    fn decode_steps_batch_across_sessions_and_match_solo_decode() {
        let mech: Arc<dyn Attention<f32> + Send + Sync> =
            Arc::new(DfssAttention::new(NmPattern::P1_2));
        let server = AttentionServer::start(
            Arc::clone(&mech),
            BatchPolicy::batched(3, Duration::from_secs(600)),
        );
        let mut rng = Rng::new(17);
        let (d, d_v) = (8usize, 8usize);
        // Three sessions with different (and misaligned) cached lengths.
        let lens = [5usize, 12, 9];
        let mut sessions = Vec::new();
        let mut caches = Vec::new();
        for &len in &lens {
            let s = server.open_session(d, d_v).unwrap();
            let k = Matrix::<f32>::random_normal(len, d, 0.0, 1.0, &mut rng);
            let v = Matrix::<f32>::random_normal(len, d_v, 0.0, 1.0, &mut rng);
            server.extend(s, k.clone(), v.clone()).unwrap();
            sessions.push(s);
            caches.push((k, v));
        }
        let q_rows: Vec<Vec<f32>> = lens.iter().map(|_| row(d, &mut rng)).collect();
        // max_batch = 3: the third submission closes the decode batch.
        let handles: Vec<DecodeHandle<f32>> = sessions
            .iter()
            .zip(&q_rows)
            .map(|(&s, q)| {
                server
                    .submit_decode(DecodeRequest {
                        session: s,
                        q_row: q.clone(),
                    })
                    .unwrap()
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let served = h.wait().expect("served");
            assert_eq!(served.batch_size, 3, "steps must share one ragged launch");
            assert_eq!(served.cached_len, lens[i]);
            assert_eq!(served.session, sessions[i]);
            assert!(served.sim_latency_s > 0.0);
            let mut sctx = GpuCtx::a100();
            let q_row = Matrix::from_vec(1, d, q_rows[i].clone());
            let want = mech.decode(&mut sctx, &q_row, &caches[i].0, &caches[i].1);
            let same = served
                .output
                .as_slice()
                .iter()
                .zip(want.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "stream {i} diverged from solo decode");
        }
        let stats = server.shutdown();
        assert_eq!((stats.decode_steps, stats.decode_batches), (3, 1));
        assert_eq!(stats.max_decode_batch, 3);
        assert_eq!(stats.sessions_opened, 3);
        assert_eq!(stats.kv_rows_appended, 26);
        assert_eq!(stats.kv_bytes_peak, 26 * (8 + 8) * 4);
    }

    /// Round-trip a matrix through bf16 — the host-side model of what a
    /// quantised KV store does to each row at append time.
    fn bf16_round_trip(m: &Matrix<f32>) -> Matrix<f32> {
        Matrix::from_vec(
            m.rows(),
            m.cols(),
            m.as_slice()
                .iter()
                .map(|&x| Bf16::from_f32(x).to_f32())
                .collect(),
        )
    }

    #[test]
    fn bf16_kv_decode_matches_host_widen_model_bitwise() {
        // Three servers over the same mechanism: a bf16-KV server fed the
        // original f32 rows, a native server fed the host-side bf16
        // round-trip of those rows, and a native server fed the originals.
        // The first two must agree BITWISE (bf16 → f32 widening is exact,
        // and the fused widen-on-load kernels keep the reference operation
        // order); the third pins the quantisation error bound.
        let mech: Arc<dyn Attention<f32> + Send + Sync> =
            Arc::new(DfssAttention::new(NmPattern::P2_4));
        let quant_kv = KvConfig {
            kv_dtype: KvDtype::Bf16,
            ..KvConfig::default()
        };
        let server_q =
            AttentionServer::start_with_kv(Arc::clone(&mech), BatchPolicy::per_request(), quant_kv);
        let server_model = AttentionServer::start(Arc::clone(&mech), BatchPolicy::per_request());
        let server_f32 = AttentionServer::start(Arc::clone(&mech), BatchPolicy::per_request());
        let mut rng = Rng::new(41);
        let (d, d_v) = (8usize, 8usize);
        for len in [1usize, 5, 12, 33] {
            let k = Matrix::<f32>::random_normal(len, d, 0.0, 1.0, &mut rng);
            let v = Matrix::<f32>::random_normal(len, d_v, 0.0, 1.0, &mut rng);
            let q = row(d, &mut rng);
            let serve_one = |server: &AttentionServer<f32>, k: &Matrix<f32>, v: &Matrix<f32>| {
                let s = server.open_session(d, d_v).unwrap();
                server.extend(s, k.clone(), v.clone()).unwrap();
                let out = server
                    .submit_decode(DecodeRequest {
                        session: s,
                        q_row: q.clone(),
                    })
                    .unwrap()
                    .wait()
                    .expect("served")
                    .output;
                server.close_session(s).unwrap();
                out
            };
            let got = serve_one(&server_q, &k, &v);
            let model = serve_one(&server_model, &bf16_round_trip(&k), &bf16_round_trip(&v));
            let exact = serve_one(&server_f32, &k, &v);
            for (i, (a, b)) in got.as_slice().iter().zip(model.as_slice()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "len {len} elem {i}: fused bf16 decode diverged from the \
                     host widen-then-f32 model ({a} vs {b})"
                );
            }
            // Error bound vs unquantised f32 KV: bf16 keeps 8 mantissa
            // bits, so each stored element carries relative error ≤ 2⁻⁹.
            // The output is a softmax-convex combination of V rows (|V|
            // drawn standard normal), with the scores themselves perturbed
            // through exp(); a loose but documented envelope is a few
            // times 2⁻⁹ · (1 + |exact|), far below f32 noise only if
            // quantisation were accidentally bypassed.
            for (i, (a, b)) in got.as_slice().iter().zip(exact.as_slice()).enumerate() {
                let tol = 0.05f32 * (1.0 + b.abs());
                assert!(
                    (a - b).abs() <= tol,
                    "len {len} elem {i}: bf16 decode {a} strayed past the \
                     quantisation envelope around f32 decode {b}"
                );
            }
            assert!(
                got.as_slice()
                    .iter()
                    .zip(exact.as_slice())
                    .any(|(a, b)| a.to_bits() != b.to_bits()),
                "len {len}: bf16 decode was bitwise identical to f32 — \
                 quantisation is being bypassed"
            );
        }
        let _ = server_q.shutdown();
        let _ = server_model.shutdown();
        let _ = server_f32.shutdown();
    }

    #[test]
    fn bf16_kv_halves_governed_bytes_and_doubles_capacity() {
        let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(FullAttention);
        // A budget of one f32 page (= two bf16 pages): a session needs one
        // K page + one V page, so the native store cannot admit anyone.
        let tight = KvConfig {
            page_elems: 16,
            budget_bytes: 16 * 4,
            evict_idle: false,
            kv_dtype: KvDtype::Native,
        };
        let native =
            AttentionServer::start_with_kv(Arc::clone(&mech), BatchPolicy::per_request(), tight);
        assert!(matches!(
            native.open_session(4, 4),
            Err(SessionError::KvBudgetExhausted { .. })
        ));
        let _ = native.shutdown();
        let quant = AttentionServer::start_with_kv(
            Arc::clone(&mech),
            BatchPolicy::per_request(),
            KvConfig {
                kv_dtype: KvDtype::Bf16,
                ..tight
            },
        );
        let s = quant.open_session(4, 4).unwrap();
        let mut rng = Rng::new(7);
        // 4 rows of width 4 fill exactly one bf16 page per side.
        for _ in 0..4 {
            quant.append(s, row(4, &mut rng), row(4, &mut rng)).unwrap();
        }
        let q = row(4, &mut rng);
        let served = quant
            .submit_decode(DecodeRequest {
                session: s,
                q_row: q,
            })
            .unwrap()
            .wait()
            .expect("served");
        assert_eq!(served.cached_len, 4);
        let stats = quant.shutdown();
        // Governed bytes are charged at the stored width: 2 bytes/element.
        assert_eq!(stats.kv_bytes_peak, 4 * (4 + 4) * 2);
        assert_eq!(stats.kv_pages_allocated, 2);
    }

    #[test]
    fn appends_after_a_queued_decode_do_not_leak_into_it() {
        // The decode step must see the cache as of its submission even if
        // an append for the same session arrives while it waits for
        // batch-mates.
        let mech: Arc<dyn Attention<f32> + Send + Sync> =
            Arc::new(DfssAttention::new(NmPattern::P1_2));
        let server = AttentionServer::start(
            Arc::clone(&mech),
            BatchPolicy::batched(1000, Duration::from_secs(600)),
        );
        let mut rng = Rng::new(19);
        let (d, d_v) = (8usize, 8usize);
        let s = server.open_session(d, d_v).unwrap();
        let k = Matrix::<f32>::random_normal(6, d, 0.0, 1.0, &mut rng);
        let v = Matrix::<f32>::random_normal(6, d_v, 0.0, 1.0, &mut rng);
        server.extend(s, k.clone(), v.clone()).unwrap();
        let q = row(d, &mut rng);
        let handle = server
            .submit_decode(DecodeRequest {
                session: s,
                q_row: q.clone(),
            })
            .unwrap();
        // This append forces the queued step to flush against the 6-row
        // cache before the 7th row lands.
        server
            .append(s, row(d, &mut rng), row(d_v, &mut rng))
            .unwrap();
        let served = handle.wait().expect("served");
        assert_eq!(served.cached_len, 6);
        let mut sctx = GpuCtx::a100();
        let want = mech.decode(&mut sctx, &Matrix::from_vec(1, d, q), &k, &v);
        let same = served
            .output
            .as_slice()
            .iter()
            .zip(want.as_slice())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "queued decode saw appended rows");
        let _ = server.shutdown();
    }

    #[test]
    fn session_front_door_rejects_bad_operations() {
        let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(FullAttention);
        let server = AttentionServer::start(Arc::clone(&mech), BatchPolicy::per_request());
        let ghost = SessionId(999);
        assert_eq!(
            server
                .append(ghost, vec![0.0; 4], vec![0.0; 4])
                .unwrap_err(),
            SessionError::UnknownSession(ghost)
        );
        let s = server.open_session(4, 4).unwrap();
        // Wrong widths.
        assert!(matches!(
            server.append(s, vec![0.0; 3], vec![0.0; 4]).unwrap_err(),
            SessionError::Rejected(RequestError::DecodeShapeMismatch { .. })
        ));
        // Decode against an empty cache.
        assert!(matches!(
            server
                .submit_decode(DecodeRequest {
                    session: s,
                    q_row: vec![0.0; 4]
                })
                .unwrap_err(),
            SessionError::Rejected(RequestError::EmptyRequest)
        ));
        // Close, then everything is unknown.
        server.close_session(s).unwrap();
        assert_eq!(
            server.close_session(s).unwrap_err(),
            SessionError::UnknownSession(s)
        );
        let stats = server.shutdown();
        assert_eq!((stats.sessions_opened, stats.sessions_closed), (1, 1));
        assert_eq!(stats.decode_steps, 0);
    }

    #[test]
    fn shutdown_drains_queued_decode_steps() {
        let mech: Arc<dyn Attention<f32> + Send + Sync> =
            Arc::new(DfssAttention::new(NmPattern::P1_2));
        let server = AttentionServer::start(
            Arc::clone(&mech),
            BatchPolicy::batched(1000, Duration::from_secs(600)),
        );
        let mut rng = Rng::new(23);
        let s = server.open_session(8, 8).unwrap();
        server
            .extend(
                s,
                Matrix::random_normal(4, 8, 0.0, 1.0, &mut rng),
                Matrix::random_normal(4, 8, 0.0, 1.0, &mut rng),
            )
            .unwrap();
        let handle = server
            .submit_decode(DecodeRequest {
                session: s,
                q_row: row(8, &mut rng),
            })
            .unwrap();
        let stats = server.shutdown();
        assert_eq!((stats.decode_steps, stats.decode_batches), (1, 1));
        assert!(handle.wait().is_ok());
    }

    #[test]
    fn mixed_width_decode_flush_counts_per_launch_batches() {
        // Two sessions with different head widths land in separate (d, d_v)
        // buckets of the same flush: stats must count one batch per ragged
        // launch group, each sized by its own streams — not one flush-wide
        // blob.
        let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(FullAttention);
        let server = AttentionServer::start(
            Arc::clone(&mech),
            BatchPolicy::batched(2, Duration::from_secs(600)),
        );
        let mut rng = Rng::new(29);
        let mut handles = Vec::new();
        for d in [4usize, 8] {
            let s = server.open_session(d, d).unwrap();
            server
                .extend(
                    s,
                    Matrix::random_normal(5, d, 0.0, 1.0, &mut rng),
                    Matrix::random_normal(5, d, 0.0, 1.0, &mut rng),
                )
                .unwrap();
            handles.push(
                server
                    .submit_decode(DecodeRequest {
                        session: s,
                        q_row: row(d, &mut rng),
                    })
                    .unwrap(),
            );
        }
        for h in handles {
            let served = h.wait().expect("served");
            assert_eq!(served.batch_size, 1, "each width is its own launch");
        }
        let stats = server.shutdown();
        assert_eq!(stats.decode_steps, 2);
        assert_eq!(stats.decode_batches, 2, "one batch per ragged launch");
        assert_eq!(stats.max_decode_batch, 1);
    }

    /// A 4-wide session at page_elems = 16 stores 4 rows per page per side.
    fn tight_kv(pages: u64, evict_idle: bool) -> crate::KvConfig {
        crate::KvConfig {
            page_elems: 16,
            budget_bytes: pages * 16 * 4,
            evict_idle,
            ..crate::KvConfig::default()
        }
    }

    #[test]
    fn budget_exhaustion_is_typed_back_pressure_not_a_panic() {
        let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(FullAttention);
        // 4 pages, no eviction: one 8-row session of width 4 fills the pool
        // (2 K pages + 2 V pages).
        let server = AttentionServer::start_with_kv(
            Arc::clone(&mech),
            BatchPolicy::per_request(),
            tight_kv(4, false),
        );
        let mut rng = Rng::new(41);
        let s1 = server.open_session(4, 4).unwrap();
        server
            .extend(
                s1,
                Matrix::random_normal(8, 4, 0.0, 1.0, &mut rng),
                Matrix::random_normal(8, 4, 0.0, 1.0, &mut rng),
            )
            .unwrap();
        // The 9th row needs a fresh page pair and the pool has none.
        assert_eq!(
            server.append(s1, vec![0.0; 4], vec![0.0; 4]).unwrap_err(),
            SessionError::KvBudgetExhausted { need: 2, free: 0 }
        );
        // A pinned pool refuses new sessions too (nothing could ever grow).
        assert!(matches!(
            server.open_session(4, 4).unwrap_err(),
            SessionError::KvBudgetExhausted { .. }
        ));
        // The rejected session is intact: decode still serves all 8 rows.
        let served = server
            .submit_decode(DecodeRequest {
                session: s1,
                q_row: row(4, &mut rng),
            })
            .unwrap()
            .wait()
            .expect("served");
        assert_eq!(served.cached_len, 8);
        // Closing returns the pages; admission recovers.
        server.close_session(s1).unwrap();
        let s3 = server.open_session(4, 4).unwrap();
        server.append(s3, vec![1.0; 4], vec![2.0; 4]).unwrap();
        let stats = server.shutdown();
        assert_eq!(stats.admission_rejections, 2);
        assert_eq!(stats.evictions, 0);
        // 4 pages for s1 + 2 for s3's first row; s1's came back at close,
        // s3's at the shutdown drain — allocated and freed reconcile.
        assert_eq!(stats.kv_pages_allocated, 6);
        assert_eq!(stats.kv_pages_freed, 6);
    }

    #[test]
    fn eviction_frees_the_deterministic_lru_victim() {
        let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(FullAttention);
        let server = AttentionServer::start_with_kv(
            Arc::clone(&mech),
            BatchPolicy::per_request(),
            tight_kv(4, true),
        );
        let mut rng = Rng::new(43);
        // Two sessions fill the pool (2 pages each)…
        let s1 = server.open_session(4, 4).unwrap();
        server
            .extend(
                s1,
                Matrix::random_normal(4, 4, 0.0, 1.0, &mut rng),
                Matrix::random_normal(4, 4, 0.0, 1.0, &mut rng),
            )
            .unwrap();
        let s2 = server.open_session(4, 4).unwrap();
        server
            .extend(
                s2,
                Matrix::random_normal(4, 4, 0.0, 1.0, &mut rng),
                Matrix::random_normal(4, 4, 0.0, 1.0, &mut rng),
            )
            .unwrap();
        // …then a decode touches s1, making s2 the LRU victim.
        let served = server
            .submit_decode(DecodeRequest {
                session: s1,
                q_row: row(4, &mut rng),
            })
            .unwrap()
            .wait()
            .expect("served");
        assert_eq!(served.cached_len, 4);
        // A newcomer's first row forces exactly one eviction: s2.
        let s3 = server.open_session(4, 4).unwrap();
        server.append(s3, vec![1.0; 4], vec![2.0; 4]).unwrap();
        // The victim's history is gone — typed errors, not panics.
        assert_eq!(
            server
                .submit_decode(DecodeRequest {
                    session: s2,
                    q_row: vec![0.0; 4],
                })
                .unwrap_err(),
            SessionError::Evicted(s2)
        );
        assert_eq!(
            server.append(s2, vec![0.0; 4], vec![0.0; 4]).unwrap_err(),
            SessionError::Evicted(s2)
        );
        // The survivor still decodes over its full history.
        let served = server
            .submit_decode(DecodeRequest {
                session: s1,
                q_row: row(4, &mut rng),
            })
            .unwrap()
            .wait()
            .expect("served");
        assert_eq!(served.cached_len, 4);
        // Closing retires the evicted id like any other.
        server.close_session(s2).unwrap();
        assert_eq!(
            server.close_session(s2).unwrap_err(),
            SessionError::UnknownSession(s2)
        );
        let stats = server.shutdown();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.admission_rejections, 0);
        // Counters reconcile with the lifecycle: 2+2+2 pages handed out,
        // s2's 2 reclaimed by eviction (its close frees nothing), s1's and
        // s3's 2 each reclaimed by the shutdown drain.
        assert_eq!(stats.kv_pages_allocated, 6);
        assert_eq!(stats.kv_pages_freed, 6);
        assert_eq!(stats.sessions_opened, 3);
        assert_eq!(stats.sessions_closed, 1);
    }

    #[test]
    fn inflight_sessions_are_never_evicted() {
        let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(FullAttention);
        // Decode queue holds steps until shutdown (huge batch + deadline),
        // so s1 stays inflight while the newcomer asks for pages.
        let server = AttentionServer::start_with_kv(
            Arc::clone(&mech),
            BatchPolicy::batched(1000, Duration::from_secs(600)),
            tight_kv(2, true),
        );
        let mut rng = Rng::new(47);
        let s1 = server.open_session(4, 4).unwrap();
        server
            .extend(
                s1,
                Matrix::random_normal(4, 4, 0.0, 1.0, &mut rng),
                Matrix::random_normal(4, 4, 0.0, 1.0, &mut rng),
            )
            .unwrap();
        let handle = server
            .submit_decode(DecodeRequest {
                session: s1,
                q_row: row(4, &mut rng),
            })
            .unwrap();
        // The pool is full and its only occupant is inflight: the
        // newcomer is refused rather than corrupting the queued step.
        assert!(matches!(
            server.open_session(4, 4).unwrap_err(),
            SessionError::KvBudgetExhausted { .. }
        ));
        let stats = server.shutdown();
        assert!(handle.wait().is_ok(), "queued step still served");
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.admission_rejections, 1);
    }

    #[test]
    fn close_decrements_kv_bytes_so_peak_stays_flat() {
        // Regression: PR 5 never decremented kv_bytes on close, so
        // open→append→close cycles ratcheted kv_bytes_peak forever.
        let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(FullAttention);
        let server = AttentionServer::start(Arc::clone(&mech), BatchPolicy::per_request());
        let mut rng = Rng::new(53);
        for _ in 0..3 {
            let s = server.open_session(8, 8).unwrap();
            server
                .extend(
                    s,
                    Matrix::random_normal(10, 8, 0.0, 1.0, &mut rng),
                    Matrix::random_normal(10, 8, 0.0, 1.0, &mut rng),
                )
                .unwrap();
            server.close_session(s).unwrap();
        }
        let stats = server.shutdown();
        // One session's logical bytes, not three sessions' worth.
        assert_eq!(stats.kv_bytes_peak, 10 * (8 + 8) * 4);
        assert_eq!(stats.kv_pages_allocated, stats.kv_pages_freed);
    }

    #[test]
    fn idle_server_records_no_batches() {
        // Deadline-close with an empty queue must be a no-op: a server that
        // saw no traffic reports zero launches of either kind.
        let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(FullAttention);
        let server: AttentionServer<f32> = AttentionServer::start(
            Arc::clone(&mech),
            BatchPolicy::batched(4, Duration::from_millis(1)),
        );
        std::thread::sleep(Duration::from_millis(20));
        let stats = server.shutdown();
        assert_eq!((stats.batches, stats.decode_batches), (0, 0));
        assert_eq!(stats.total_sim_latency_s, 0.0);
    }

    #[test]
    fn poisoned_registry_heals_and_restores_invariants() {
        let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(FullAttention);
        let server = AttentionServer::start_with_kv(
            Arc::clone(&mech),
            BatchPolicy::per_request(),
            tight_kv(4, false),
        );
        let mut rng = Rng::new(59);
        let s1 = server.open_session(4, 4).unwrap();
        server
            .extend(
                s1,
                Matrix::random_normal(4, 4, 0.0, 1.0, &mut rng),
                Matrix::random_normal(4, 4, 0.0, 1.0, &mut rng),
            )
            .unwrap();
        // A client thread dies while holding the registry lock, leaving
        // scribbled mirror counters behind a poisoned mutex.
        let registry = Arc::clone(&server.registry);
        let scribbler = std::thread::spawn(move || {
            let mut reg = registry.lock().unwrap();
            reg.pages_used = 9999;
            reg.kv_bytes = u64::MAX;
            panic!("client died mid-critical-section");
        });
        assert!(scribbler.join().is_err(), "scribbler must poison the lock");
        // Every later lock heals the poison and recomputes the mirrors from
        // the per-session metadata — without the heal, free-page arithmetic
        // under pages_used = 9999 would underflow on the next admission.
        let s2 = server.open_session(4, 4).unwrap();
        server.append(s2, vec![1.0; 4], vec![2.0; 4]).unwrap();
        let served = server
            .submit_decode(DecodeRequest {
                session: s1,
                q_row: row(4, &mut rng),
            })
            .unwrap()
            .wait()
            .expect("served after heal");
        assert_eq!(served.cached_len, 4);
        server.close_session(s1).unwrap();
        server.close_session(s2).unwrap();
        let stats = server.shutdown();
        // The lifetime counters come out exact, not scribbled: s1's 4 rows
        // took a K+V page pair, s2's single row another.
        assert_eq!(stats.kv_pages_allocated, 4);
        assert_eq!(stats.kv_pages_freed, 4);
        assert_eq!(stats.kv_bytes_peak, (4 * 8 * 4 + 8 * 4) as u64);
    }

    #[test]
    fn batch_panic_fails_only_its_batch_and_the_server_keeps_serving() {
        let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(FullAttention);
        let plan = FaultPlan::new().inject(0, FaultKind::PanicInBatch);
        let server = AttentionServer::start_with_faults(
            Arc::clone(&mech),
            BatchPolicy::batched(2, Duration::from_millis(5)),
            plan,
        );
        let mut rng = Rng::new(61);
        // First batch of two is poisoned by the fault riding request 0:
        // both its requests fail typed, with the payload preserved.
        let (q, k, v) = request(16, 8, &mut rng);
        let h0 = server.submit(q, k, v).unwrap();
        let (q, k, v) = request(16, 8, &mut rng);
        let h1 = server.submit(q, k, v).unwrap();
        for h in [h0, h1] {
            match h.wait().expect_err("batch poisoned") {
                ServeError::BatchPanicked { payload } => {
                    assert!(payload.contains("injected kernel panic"));
                }
                other => panic!("want BatchPanicked, got {other}"),
            }
        }
        // The next batch is served normally by the same recovered batcher.
        let (q, k, v) = request(16, 8, &mut rng);
        let h2 = server.submit(q, k, v).unwrap();
        let (q, k, v) = request(16, 8, &mut rng);
        let h3 = server.submit(q, k, v).unwrap();
        assert!(h2.wait().is_ok());
        assert!(h3.wait().is_ok());
        let stats = server.shutdown();
        assert_eq!(stats.batch_panics, 1);
        assert_eq!(stats.served, 2);
        assert_eq!(stats.batches, 1, "the poisoned launch never counts");
    }

    #[test]
    fn decode_batch_panic_is_isolated_and_the_session_survives() {
        let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(FullAttention);
        // Front-door ordinals: open = 0, extend = 1, decode = 2.
        let plan = FaultPlan::new().inject(2, FaultKind::PanicInBatch);
        let server =
            AttentionServer::start_with_faults(Arc::clone(&mech), BatchPolicy::per_request(), plan);
        let mut rng = Rng::new(67);
        let s = server.open_session(8, 8).unwrap();
        server
            .extend(
                s,
                Matrix::random_normal(6, 8, 0.0, 1.0, &mut rng),
                Matrix::random_normal(6, 8, 0.0, 1.0, &mut rng),
            )
            .unwrap();
        let err = server
            .submit_decode(DecodeRequest {
                session: s,
                q_row: row(8, &mut rng),
            })
            .unwrap()
            .wait()
            .expect_err("poisoned step");
        assert!(matches!(err, ServeError::BatchPanicked { .. }));
        // The cache is untouched (decode reads it, never writes) and the
        // inflight mark was released: the very next step serves over the
        // full history.
        let served = server
            .submit_decode(DecodeRequest {
                session: s,
                q_row: row(8, &mut rng),
            })
            .unwrap()
            .wait()
            .expect("served after recovery");
        assert_eq!(served.cached_len, 6);
        server.close_session(s).unwrap();
        let stats = server.shutdown();
        assert_eq!(stats.batch_panics, 1);
        assert_eq!(stats.decode_steps, 1);
        assert_eq!(stats.kv_pages_allocated, stats.kv_pages_freed);
    }

    #[test]
    fn expired_deadlines_shed_typed_before_packing() {
        let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(FullAttention);
        let server = AttentionServer::start(
            Arc::clone(&mech),
            BatchPolicy::batched(8, Duration::from_millis(20)),
        );
        let mut rng = Rng::new(71);
        let (q, k, v) = request(16, 8, &mut rng);
        // Already expired at submission: shed when the bucket closes,
        // never packed into the launch.
        let past = Instant::now() - Duration::from_millis(1);
        let doomed = server.submit_with_deadline(q, k, v, Some(past)).unwrap();
        let (q, k, v) = request(16, 8, &mut rng);
        let live = server.submit(q, k, v).unwrap();
        match doomed.wait().expect_err("shed") {
            ServeError::DeadlineExceeded { queued_for } => assert!(queued_for > Duration::ZERO),
            other => panic!("want DeadlineExceeded, got {other}"),
        }
        let served = live.wait().expect("served");
        assert_eq!(served.batch_size, 1, "the shed request freed its slot");
        let stats = server.shutdown();
        assert_eq!(stats.deadline_sheds, 1);
        assert_eq!(stats.served, 1);
    }

    #[test]
    fn expired_decode_deadlines_shed_typed() {
        let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(FullAttention);
        let server = AttentionServer::start(
            Arc::clone(&mech),
            BatchPolicy::batched(8, Duration::from_millis(20)),
        );
        let mut rng = Rng::new(73);
        let s = server.open_session(8, 8).unwrap();
        server
            .extend(
                s,
                Matrix::random_normal(2, 8, 0.0, 1.0, &mut rng),
                Matrix::random_normal(2, 8, 0.0, 1.0, &mut rng),
            )
            .unwrap();
        let past = Instant::now() - Duration::from_millis(1);
        let doomed = server
            .submit_decode_with_deadline(
                DecodeRequest {
                    session: s,
                    q_row: row(8, &mut rng),
                },
                Some(past),
            )
            .unwrap();
        let live = server
            .submit_decode(DecodeRequest {
                session: s,
                q_row: row(8, &mut rng),
            })
            .unwrap();
        assert!(matches!(
            doomed.wait(),
            Err(ServeError::DeadlineExceeded { .. })
        ));
        assert_eq!(live.wait().expect("served").cached_len, 2);
        server.close_session(s).unwrap();
        let stats = server.shutdown();
        assert_eq!(stats.deadline_sheds, 1);
        assert_eq!(stats.decode_steps, 1);
    }

    #[test]
    fn queue_depth_bound_sheds_submissions_typed() {
        use crate::retry::Transient;
        let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(FullAttention);
        // Huge batch + deadline: the two admitted requests stay queued, so
        // the third submission observes the bound deterministically.
        let server = AttentionServer::start(
            Arc::clone(&mech),
            BatchPolicy::batched(1000, Duration::from_secs(600)).with_queue_depth(2),
        );
        let mut rng = Rng::new(79);
        let (q, k, v) = request(16, 8, &mut rng);
        let h0 = server.submit(q, k, v).unwrap();
        let (q, k, v) = request(16, 8, &mut rng);
        let h1 = server.submit(q, k, v).unwrap();
        let (q, k, v) = request(16, 8, &mut rng);
        let err = server.submit(q, k, v).unwrap_err();
        assert!(matches!(err, ServeError::Overloaded { depth: 2 }));
        assert!(err.is_transient(), "overload is worth retrying");
        // The bound spans prefill and decode: the same full queue sheds a
        // decode step with the session-typed twin.
        let s = server.open_session(8, 8).unwrap();
        server
            .extend(
                s,
                Matrix::random_normal(2, 8, 0.0, 1.0, &mut rng),
                Matrix::random_normal(2, 8, 0.0, 1.0, &mut rng),
            )
            .unwrap();
        let err = server
            .submit_decode(DecodeRequest {
                session: s,
                q_row: row(8, &mut rng),
            })
            .unwrap_err();
        assert_eq!(err, SessionError::Overloaded { depth: 2 });
        assert!(err.is_transient());
        let stats = server.shutdown();
        assert!(h0.wait().is_ok(), "admitted requests drain at shutdown");
        assert!(h1.wait().is_ok());
        assert_eq!(stats.overload_sheds, 2);
        assert_eq!(stats.served, 2);
        assert_eq!(stats.decode_steps, 0);
    }

    #[test]
    fn killed_batcher_never_blocks_waiters() {
        let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(FullAttention);
        let plan = FaultPlan::new().inject(0, FaultKind::KillServer);
        let server =
            AttentionServer::start_with_faults(Arc::clone(&mech), BatchPolicy::per_request(), plan);
        let mut rng = Rng::new(83);
        let (q, k, v) = request(16, 8, &mut rng);
        let h = server.submit(q, k, v).unwrap();
        assert!(matches!(h.wait(), Err(ServeError::ServerGone)));
        // Later submissions still enqueue (submission is infallible for
        // valid requests) but resolve ServerGone too — nothing hangs.
        let (q, k, v) = request(16, 8, &mut rng);
        let h = server.submit(q, k, v).unwrap();
        assert!(matches!(
            h.wait_timeout(Duration::from_secs(30)),
            Err(ServeError::ServerGone)
        ));
        let stats = server.shutdown();
        assert_eq!(stats.served, 0);
    }

    #[test]
    fn wait_blocked_before_shutdown_resolves_never_hangs() {
        // The latent drain race: a caller already blocked in wait() when
        // shutdown() starts must resolve — served by the drain or typed
        // ServerGone — never hang on a channel whose sender is being torn
        // down. Pinned with a bucket that would otherwise stay open 600 s.
        let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(FullAttention);
        let server = AttentionServer::start(
            Arc::clone(&mech),
            BatchPolicy::batched(1000, Duration::from_secs(600)),
        );
        let mut rng = Rng::new(97);
        let (q, k, v) = request(16, 8, &mut rng);
        let h = server.submit(q, k, v).unwrap();
        let waiter = std::thread::spawn(move || h.wait());
        // Give the waiter time to actually block in recv() first.
        std::thread::sleep(Duration::from_millis(50));
        let stats = server.shutdown();
        let deadline = Instant::now() + Duration::from_secs(30);
        while !waiter.is_finished() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(waiter.is_finished(), "wait() hung across shutdown");
        let resolved = waiter.join().expect("waiter must not panic");
        let served = resolved.expect("the shutdown drain serves queued work");
        assert_eq!(served.batch_size, 1);
        assert_eq!(stats.served, 1);
    }

    #[test]
    fn wait_timeout_is_typed_and_rewaitable() {
        let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(FullAttention);
        let server = AttentionServer::start(
            Arc::clone(&mech),
            BatchPolicy::batched(1000, Duration::from_secs(600)),
        );
        let mut rng = Rng::new(89);
        let (q, k, v) = request(16, 8, &mut rng);
        let h = server.submit(q, k, v).unwrap();
        // The bucket stays open for 600 s; a bounded wait gives up typed
        // instead of blocking.
        assert!(matches!(
            h.wait_timeout(Duration::from_millis(30)),
            Err(ServeError::WaitTimeout)
        ));
        // The request itself is still queued: the shutdown drain serves it
        // and the same handle then resolves with the output.
        let stats = server.shutdown();
        let served = h.wait().expect("drained at shutdown");
        assert_eq!(served.batch_size, 1);
        assert_eq!(stats.served, 1);
    }

    #[test]
    fn shutdown_drains_queued_steps_open_sessions_and_inflight_faults() {
        let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(FullAttention);
        // Ordinals: open = 0, extend = 1, open = 2, extend = 3, decode = 4,
        // decode = 5 — the second queued step rides a slowed launch.
        let plan = FaultPlan::new().inject(5, FaultKind::SlowLaunch(Duration::from_millis(2)));
        let server = AttentionServer::start_with_kv_faults(
            Arc::clone(&mech),
            BatchPolicy::batched(1000, Duration::from_secs(600)),
            tight_kv(8, false),
            plan,
        );
        let mut rng = Rng::new(97);
        let s1 = server.open_session(4, 4).unwrap();
        server
            .extend(
                s1,
                Matrix::random_normal(4, 4, 0.0, 1.0, &mut rng),
                Matrix::random_normal(4, 4, 0.0, 1.0, &mut rng),
            )
            .unwrap();
        let s2 = server.open_session(4, 4).unwrap();
        server
            .extend(
                s2,
                Matrix::random_normal(4, 4, 0.0, 1.0, &mut rng),
                Matrix::random_normal(4, 4, 0.0, 1.0, &mut rng),
            )
            .unwrap();
        let h1 = server
            .submit_decode(DecodeRequest {
                session: s1,
                q_row: row(4, &mut rng),
            })
            .unwrap();
        let h2 = server
            .submit_decode(DecodeRequest {
                session: s2,
                q_row: row(4, &mut rng),
            })
            .unwrap();
        // Shutdown with both steps queued and both sessions still open:
        // the drain serves the steps (through the slowed launch) and the
        // abandoned sessions' pages come back, so the lifetime counters
        // reconcile exactly.
        let stats = server.shutdown();
        assert_eq!(h1.wait().expect("drained").cached_len, 4);
        assert_eq!(h2.wait().expect("drained").cached_len, 4);
        assert_eq!(stats.decode_steps, 2);
        assert_eq!(stats.sessions_opened, 2);
        assert_eq!(stats.sessions_closed, 0);
        assert_eq!(stats.kv_pages_allocated, 4);
        assert_eq!(stats.kv_pages_freed, 4);
    }
}
