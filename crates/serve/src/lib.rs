//! # dfss-serve — the async attention serving layer
//!
//! The ROADMAP's heavy-traffic story: independent `(Q, K, V)` requests
//! arrive at unpredictable times; the server admits them into **shape
//! buckets**, closes a bucket when it is full (`max_batch`) or its oldest
//! request has waited long enough (`max_delay`), and runs the closed batch
//! through the [`AttentionEngine`] as **one batched launch per op** —
//! exactly the deployment regime the paper motivates with its "drop-in
//! module at inference time" claim (§5.2, A.1.2).
//!
//! Architecture (no tokio — a plain batcher thread; the batched launches
//! themselves fan out on the vendored rayon-compat worker pool like every
//! other kernel):
//!
//! ```text
//!  clients ── submit(Q,K,V) ──► admission (typed RequestError on bad shapes)
//!                                   │ mpsc
//!                                   ▼
//!                            batcher thread
//!                  shape-bucketed queue + close policy
//!                   (max_batch reached | max_delay due)
//!                                   │ closed batch
//!                                   ▼
//!                       AttentionEngine::submit × B
//!                       AttentionEngine::flush  ──► one launch per op
//!                                   │ per-request outputs + latency
//!                                   ▼
//!                     ResponseHandle::wait() on each client
//! ```
//!
//! Every response carries the request's full latency breakdown (queue wait,
//! service wall-clock, end-to-end) plus the simulated-device latency of its
//! batch, so the load generator in `dfss-bench` can report host and device
//! tail latency against offered load.

mod queue;
mod server;

pub use dfss_core::engine::{ShapeKey, Ticket};
pub use dfss_core::mechanism::RequestError;
pub use server::{AttentionServer, ResponseHandle, Served};

use std::time::Duration;

/// When the batcher closes a bucket and launches it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Close a bucket as soon as it holds this many requests.
    pub max_batch: usize,
    /// Close a bucket once its oldest request has waited this long.
    pub max_delay: Duration,
}

impl BatchPolicy {
    /// Serve every request as its own launch the moment it arrives — the
    /// per-request-loop baseline of the serving bench.
    pub fn per_request() -> BatchPolicy {
        BatchPolicy {
            max_batch: 1,
            max_delay: Duration::ZERO,
        }
    }

    /// Coalesce up to `max_batch` same-shape requests, waiting at most
    /// `max_delay` for stragglers.
    pub fn batched(max_batch: usize, max_delay: Duration) -> BatchPolicy {
        assert!(max_batch >= 1, "max_batch must be at least 1");
        BatchPolicy {
            max_batch,
            max_delay,
        }
    }
}

/// Why a response never arrived.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The server stopped (shut down or worker died) before serving the
    /// request.
    ServerStopped,
    /// The request failed validation after admission (only reachable if
    /// the mechanism's constraints changed between admission and launch —
    /// kept typed so the worker never panics on it).
    Rejected(RequestError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::ServerStopped => write!(f, "server stopped before serving the request"),
            ServeError::Rejected(e) => write!(f, "request rejected: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Aggregate counters over a server's lifetime, returned by
/// [`AttentionServer::shutdown`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServeStats {
    /// Requests served to completion.
    pub served: u64,
    /// Requests rejected at admission with a typed error.
    pub rejected: u64,
    /// Batched launches executed (closed buckets).
    pub batches: u64,
    /// Largest batch observed.
    pub max_batch: usize,
    /// Total simulated-device latency across all launches.
    pub total_sim_latency_s: f64,
}

impl ServeStats {
    /// Mean requests per batched launch.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.served as f64 / self.batches as f64
        }
    }
}
