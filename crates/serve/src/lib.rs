//! # dfss-serve — the async attention serving layer
//!
//! The ROADMAP's heavy-traffic story, in two kinds of traffic:
//!
//! * **Prefill** — independent `(Q, K, V)` requests arrive at unpredictable
//!   times; the server admits them into **shape buckets**, closes a bucket
//!   when it is full (`max_batch`) or its oldest request has waited long
//!   enough (`max_delay`), and runs the closed batch through the
//!   [`AttentionEngine`] as **one batched launch per op** — the deployment
//!   regime the paper motivates with its "drop-in module at inference time"
//!   claim (§5.2, A.1.2).
//! * **Decode** — the traffic that dominates production inference: each
//!   open **session** owns an append-only KV page table ([`PagedKvCache`])
//!   over one server-owned block pool ([`KvPool`]), and every
//!   [`DecodeRequest`] carries one new query row to attend over the
//!   session's whole history. Decode steps from *different* sessions
//!   coalesce into **one ragged launch per op**
//!   ([`AttentionEngine::flush_decode`]) even though their cached lengths
//!   differ — outputs stay bit-identical to serving each stream alone.
//!
//! KV memory is **governed**: [`KvConfig`] sets a byte budget over the
//! pool, admission reserves pages *before* a row is accepted, and
//! exhaustion surfaces as typed back-pressure
//! ([`SessionError::KvBudgetExhausted`]) — or, with
//! [`KvConfig::evict_idle`], as deterministic LRU eviction of idle
//! sessions ([`SessionError::Evicted`] for the victim's later steps) —
//! never as unbounded growth or a panic.
//!
//! Failures are **isolated and typed**: every batched launch runs under
//! `catch_unwind`, so a panicking kernel fails only its own batch's
//! requests ([`ServeError::BatchPanicked`]) while the batcher recovers the
//! engine and keeps serving, and the registry mutex heals from poisoning
//! by rebuilding its governor counters from the per-session metadata.
//! Requests may carry deadlines (expired ones are shed *before* packing
//! with [`ServeError::DeadlineExceeded`]), admission is depth-bounded
//! under [`BatchPolicy::max_queue_depth`] (typed `Overloaded`, paired with
//! [`retry::with_backoff`]), and a seeded [`FaultPlan`]
//! ([`AttentionServer::start_with_faults`]) injects kernel panics, launch
//! slowness, and forced pool exhaustion at chosen operation indices for
//! deterministic chaos testing — zero cost when absent.
//!
//! Architecture (no tokio — a plain batcher thread; the batched launches
//! themselves fan out on the vendored rayon-compat worker pool like every
//! other kernel):
//!
//! ```text
//!  clients ── submit(Q,K,V) ───────────► admission (typed RequestError)
//!          ── open / append / close ───► session registry + KV caches
//!          ── submit_decode(q_row) ────► admission (session + width checks)
//!                                   │ mpsc
//!                                   ▼
//!                            batcher thread
//!              shape-bucketed prefill queue + decode queue
//!                   (max_batch reached | max_delay due)
//!                                   │ closed batch
//!                                   ▼
//!              engine.flush()  /  engine.flush_decode(steps)
//!                                   │ one (ragged) launch per op
//!                                   ▼
//!              ResponseHandle / DecodeHandle ::wait() on each client
//! ```
//!
//! Every response carries the request's full latency breakdown (queue wait,
//! service wall-clock, end-to-end) plus the simulated-device latency of its
//! batch, so the load generator in `dfss-bench` can report host and device
//! tail latency against offered load — and tokens/sec against concurrent
//! decode streams.
//!
//! [`AttentionEngine`]: dfss_core::engine::AttentionEngine
//! [`AttentionEngine::flush_decode`]: dfss_core::engine::AttentionEngine::flush_decode
//!
//! ```
//! use dfss_serve::{AttentionServer, BatchPolicy, DecodeRequest};
//! use dfss_core::dfss::DfssAttention;
//! use dfss_core::mechanism::Attention;
//! use dfss_nmsparse::NmPattern;
//! use std::{sync::Arc, time::Duration};
//!
//! let mech: Arc<dyn Attention<f32> + Send + Sync> =
//!     Arc::new(DfssAttention::new(NmPattern::P1_2));
//! let server = AttentionServer::start(mech, BatchPolicy::batched(8, Duration::from_millis(1)));
//!
//! // A decode session: open, prime the cache, then decode step by step.
//! let session = server.open_session(16, 16).unwrap();
//! for t in 0..5 {
//!     let row: Vec<f32> = (0..16).map(|i| (t * 16 + i) as f32 * 0.01).collect();
//!     server.append(session, row.clone(), row).unwrap();
//! }
//! let q_row: Vec<f32> = (0..16).map(|i| i as f32 * 0.1).collect();
//! let handle = server.submit_decode(DecodeRequest { session, q_row }).unwrap();
//! let served = handle.wait().unwrap();
//! assert_eq!(served.output.shape(), (1, 16));
//! assert_eq!(served.cached_len, 5);
//! server.close_session(session).unwrap();
//! let stats = server.shutdown();
//! assert_eq!(stats.decode_steps, 1);
//! ```
#![deny(missing_docs)]

mod faults;
pub mod http;
mod kv;
mod queue;
pub mod retry;
pub mod sched;
mod server;
mod shard;
pub mod wire;

pub use dfss_core::engine::{KvRows, ShapeKey, Ticket};
pub use dfss_core::mechanism::RequestError;
pub use faults::{FaultKind, FaultPlan};
pub use kv::{
    pages_for_growth, KvConfig, KvDtype, KvError, KvPool, PageId, PagedKvCache, SessionId,
};
pub use sched::{ChunkPlan, IterationPlan, SchedEvent, SchedPolicy, SchedTrace, Scheduler};
pub use server::{
    AttentionServer, DecodeHandle, QueueDepths, ResponseHandle, Served, ServedDecode,
};
pub use shard::ShardedServer;

use std::time::Duration;

/// When the batcher closes a bucket (or the decode queue) and launches it.
///
/// The two closing rules interact as follows, for prefill buckets and the
/// decode queue alike:
///
/// * **`max_batch`** closes *immediately on admission*: the push that fills
///   a bucket to `max_batch` launches it synchronously, without waiting for
///   the deadline.
/// * **`max_delay`** closes a *partial* bucket, measured from the admission
///   of its **oldest** waiting request — later arrivals never extend the
///   wait. A request therefore waits at most `max_delay` before its launch
///   starts.
/// * An expired deadline with **nothing pending is a no-op**: the batcher
///   never emits a zero-size launch, and an idle server records no batches
///   (pinned by `queue::tests::empty_queue_has_no_deadline_and_no_due_buckets`
///   and the engine's empty-flush tests).
///
/// **Load shedding**: with [`max_queue_depth`](Self::max_queue_depth) set,
/// admission counts requests that are enqueued but not yet launched
/// (prefill and decode together) and refuses submissions beyond the bound
/// with typed [`ServeError::Overloaded`] / [`SessionError::Overloaded`] —
/// queue memory stays bounded at any offered load, and callers get an
/// immediate, retryable signal ([`retry::with_backoff`]) instead of an
/// ever-growing tail latency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Close a bucket as soon as it holds this many requests.
    pub max_batch: usize,
    /// Close a bucket once its oldest request has waited this long.
    pub max_delay: Duration,
    /// Refuse new submissions while this many requests (prefill + decode)
    /// are already queued and unlaunched. `None` (the default) admits
    /// without bound.
    pub max_queue_depth: Option<usize>,
}

impl BatchPolicy {
    /// Serve every request as its own launch the moment it arrives — the
    /// per-request-loop baseline of the serving bench.
    pub fn per_request() -> BatchPolicy {
        BatchPolicy {
            max_batch: 1,
            max_delay: Duration::ZERO,
            max_queue_depth: None,
        }
    }

    /// Coalesce up to `max_batch` same-shape requests, waiting at most
    /// `max_delay` for stragglers.
    pub fn batched(max_batch: usize, max_delay: Duration) -> BatchPolicy {
        assert!(max_batch >= 1, "max_batch must be at least 1");
        BatchPolicy {
            max_batch,
            max_delay,
            max_queue_depth: None,
        }
    }

    /// Bound the admission queue: submissions beyond `depth` unlaunched
    /// requests are shed with a typed `Overloaded` error.
    pub fn with_queue_depth(mut self, depth: usize) -> BatchPolicy {
        assert!(depth >= 1, "max_queue_depth must be at least 1");
        self.max_queue_depth = Some(depth);
        self
    }
}

/// A decode-step request: one new query row to attend over everything the
/// session has cached so far.
#[derive(Clone, Debug, PartialEq)]
pub struct DecodeRequest<T> {
    /// The open session whose KV cache the step attends over.
    pub session: SessionId,
    /// The new query row (`d` elements, the session's key width).
    pub q_row: Vec<T>,
}

/// Why a session operation was refused at the front door.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionError {
    /// The session was never opened, or was already closed.
    UnknownSession(SessionId),
    /// The operation's shapes failed validation against the session.
    Rejected(RequestError),
    /// The KV byte budget cannot back the operation: the pool has no free
    /// page left and (under `evict_idle`) no idle session to evict. The
    /// caller's session is intact — retry after other sessions close.
    KvBudgetExhausted {
        /// Pages the operation needed.
        need: usize,
        /// Pages the pool could still hand out.
        free: usize,
    },
    /// The session's KV pages were reclaimed by the LRU eviction policy;
    /// its history is gone and only `close_session` is still valid.
    Evicted(SessionId),
    /// The admission queue is at [`BatchPolicy::max_queue_depth`]; the
    /// step was shed before queueing. Transient — retry after backoff
    /// ([`retry::with_backoff`]).
    Overloaded {
        /// Unlaunched requests queued when the step was refused.
        depth: usize,
    },
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::UnknownSession(id) => write!(f, "unknown {id}"),
            SessionError::Rejected(e) => write!(f, "session operation rejected: {e}"),
            SessionError::KvBudgetExhausted { need, free } => write!(
                f,
                "kv budget exhausted: operation needs {need} pages, {free} free"
            ),
            SessionError::Evicted(id) => write!(f, "{id} was evicted under kv pressure"),
            SessionError::Overloaded { depth } => {
                write!(f, "queue at max depth ({depth} unlaunched requests)")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// Why a request failed or its response never arrived. Every variant is a
/// *typed* outcome: under faults, overload, or shutdown a caller always
/// gets one of these — never a hang, never a propagated panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The server is gone (shut down, or the batcher thread died) and the
    /// request will never be served.
    ServerGone,
    /// The request failed validation with a typed error — at the front
    /// door, or at launch if the mechanism's constraints diverged after
    /// admission (kept typed so the worker never panics on it).
    Rejected(RequestError),
    /// The batched launch this request was packed into panicked. Only the
    /// panicking batch's own requests fail — the server recovers the
    /// engine and keeps serving. `payload` is the panic message.
    BatchPanicked {
        /// The panic's message (downcast from the unwind payload).
        payload: String,
    },
    /// The request's deadline expired while it waited in the queue; it was
    /// shed before packing and never launched.
    DeadlineExceeded {
        /// How long the request had been queued when it was shed.
        queued_for: Duration,
    },
    /// The admission queue is at [`BatchPolicy::max_queue_depth`]; the
    /// request was shed at submission. Transient — retry after backoff
    /// ([`retry::with_backoff`]).
    Overloaded {
        /// Unlaunched requests queued when the submission was refused.
        depth: usize,
    },
    /// A `wait_timeout` elapsed before the response arrived. The request
    /// is still in flight — wait again or abandon the handle.
    WaitTimeout,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::ServerGone => write!(f, "server gone before serving the request"),
            ServeError::Rejected(e) => write!(f, "request rejected: {e}"),
            ServeError::BatchPanicked { payload } => {
                write!(f, "the request's batch panicked: {payload}")
            }
            ServeError::DeadlineExceeded { queued_for } => {
                write!(f, "deadline exceeded after {queued_for:?} in queue")
            }
            ServeError::Overloaded { depth } => {
                write!(f, "queue at max depth ({depth} unlaunched requests)")
            }
            ServeError::WaitTimeout => write!(f, "timed out waiting for the response"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Aggregate counters over a server's lifetime, returned by
/// [`AttentionServer::shutdown`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServeStats {
    /// Prefill requests served to completion.
    pub served: u64,
    /// Requests rejected at admission with a typed error.
    pub rejected: u64,
    /// Batched prefill launches executed (closed buckets).
    pub batches: u64,
    /// Largest prefill batch observed.
    pub max_batch: usize,
    /// Decode steps served to completion.
    pub decode_steps: u64,
    /// Ragged decode launches executed (closed decode batches).
    pub decode_batches: u64,
    /// Largest decode batch (concurrent streams in one ragged launch)
    /// observed.
    pub max_decode_batch: usize,
    /// Sessions opened over the server's lifetime.
    pub sessions_opened: u64,
    /// Sessions closed over the server's lifetime.
    pub sessions_closed: u64,
    /// KV-cache rows appended across all sessions (decode appends +
    /// prefill-priming rows).
    pub kv_rows_appended: u64,
    /// Peak concurrent KV-cache bytes across all open sessions (logical
    /// row bytes, not page-granular pool bytes).
    pub kv_bytes_peak: u64,
    /// KV pool pages handed to sessions over the server's lifetime.
    pub kv_pages_allocated: u64,
    /// KV pool pages returned (session close + eviction) over the
    /// server's lifetime.
    pub kv_pages_freed: u64,
    /// Idle sessions evicted by the LRU policy to make room.
    pub evictions: u64,
    /// Session operations refused with [`SessionError::KvBudgetExhausted`].
    pub admission_rejections: u64,
    /// Batched launches (prefill or decode) that panicked and were
    /// isolated: their requests failed typed, the batcher kept serving.
    pub batch_panics: u64,
    /// Requests shed with [`ServeError::DeadlineExceeded`] before packing.
    pub deadline_sheds: u64,
    /// Submissions refused with a typed `Overloaded` error at admission
    /// (prefill and decode together).
    pub overload_sheds: u64,
    /// Total simulated-device latency across all launches (prefill +
    /// decode).
    pub total_sim_latency_s: f64,
    /// Connections the HTTP front door accepted (zero for servers used
    /// as an in-process library). Counts every accepted socket,
    /// including ones later shed or closed without a complete request.
    pub http_connections_accepted: u64,
    /// Connections refused with `503 Retry-After` because the hard
    /// connection cap was reached. (Connections arriving after drain
    /// begins are dropped before processing and counted nowhere.)
    pub http_connections_shed: u64,
    /// Requests answered `400` because the bytes were not a well-formed
    /// HTTP request (the malformed-input counter of the wire layer).
    pub http_parse_rejects: u64,
    /// Connections force-closed because they outlived the graceful
    /// drain deadline at shutdown.
    pub drain_force_closed: u64,
    /// Continuous-scheduler iterations executed (zero under the classic
    /// flush-cadence batcher).
    pub sched_iterations: u64,
    /// Prefill chunks executed by the continuous scheduler (a whole
    /// prefill contributes `ceil(rows / prefill_chunk)` of these).
    pub prefill_chunks: u64,
    /// Prefill chunks this engine executed on another shard's behalf
    /// (work stealing in a [`ShardedServer`]). Decode steps are
    /// session-pinned and never counted here.
    pub chunks_stolen: u64,
}

impl ServeStats {
    /// Mean requests per batched prefill launch.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.served as f64 / self.batches as f64
        }
    }

    /// Mean concurrent streams per ragged decode launch.
    pub fn mean_decode_batch(&self) -> f64 {
        if self.decode_batches == 0 {
            0.0
        } else {
            self.decode_steps as f64 / self.decode_batches as f64
        }
    }

    /// Fold another engine's counters into this one — the fleet-wide
    /// rollup a sharded front door reports alongside its per-shard
    /// gauges. Monotone counters add; the batch high-water marks take
    /// the max. `kv_bytes_peak` adds too: shards own independent pools,
    /// so the sum of per-pool peaks bounds the fleet's true peak (the
    /// per-shard gauges keep the exact values). The destructuring is
    /// exhaustive on purpose: adding a `ServeStats` field without
    /// deciding its rollup is a compile error.
    pub fn absorb(&mut self, other: &ServeStats) {
        let ServeStats {
            served,
            rejected,
            batches,
            max_batch,
            decode_steps,
            decode_batches,
            max_decode_batch,
            sessions_opened,
            sessions_closed,
            kv_rows_appended,
            kv_bytes_peak,
            kv_pages_allocated,
            kv_pages_freed,
            evictions,
            admission_rejections,
            batch_panics,
            deadline_sheds,
            overload_sheds,
            total_sim_latency_s,
            http_connections_accepted,
            http_connections_shed,
            http_parse_rejects,
            drain_force_closed,
            sched_iterations,
            prefill_chunks,
            chunks_stolen,
        } = other;
        self.served += served;
        self.rejected += rejected;
        self.batches += batches;
        self.max_batch = self.max_batch.max(*max_batch);
        self.decode_steps += decode_steps;
        self.decode_batches += decode_batches;
        self.max_decode_batch = self.max_decode_batch.max(*max_decode_batch);
        self.sessions_opened += sessions_opened;
        self.sessions_closed += sessions_closed;
        self.kv_rows_appended += kv_rows_appended;
        self.kv_bytes_peak += kv_bytes_peak;
        self.kv_pages_allocated += kv_pages_allocated;
        self.kv_pages_freed += kv_pages_freed;
        self.evictions += evictions;
        self.admission_rejections += admission_rejections;
        self.batch_panics += batch_panics;
        self.deadline_sheds += deadline_sheds;
        self.overload_sheds += overload_sheds;
        self.total_sim_latency_s += total_sim_latency_s;
        self.http_connections_accepted += http_connections_accepted;
        self.http_connections_shed += http_connections_shed;
        self.http_parse_rejects += http_parse_rejects;
        self.drain_force_closed += drain_force_closed;
        self.sched_iterations += sched_iterations;
        self.prefill_chunks += prefill_chunks;
        self.chunks_stolen += chunks_stolen;
    }
}
