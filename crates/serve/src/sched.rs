//! The continuous-batching scheduler: one admission loop per engine that,
//! every iteration, packs **all ready decode steps** together with
//! **chunked prefill work** under a single row budget — the vLLM-style
//! cadence that replaces the separate prefill/decode flushes.
//!
//! The scheduler is **pure data**: it sees job ids and row counts, never a
//! matrix, a thread, or a clock. Its decisions are therefore a
//! deterministic function of the admission order and the
//! [`SchedPolicy`] alone — the property the replayable [`SchedTrace`] and
//! the `tests/scheduler.rs` gauntlet pin:
//!
//! ```text
//!              admit_prefill(job, rows)      admit_decode(step)
//!                        │                          │
//!                        ▼                          ▼
//!               jobs: [J0 ▸cursor] [J1] …    decode: [s0, s1, …]
//!                        │                          │
//!                        └───── next_iteration ─────┘
//!                                    │
//!          ┌─────────────────────────▼─────────────────────────┐
//!          │ 1. ALL ready decode steps pack (1 budget row each) │
//!          │ 2. remaining budget fills prefill chunks,          │
//!          │    ≤ prefill_chunk rows each, round-robin over     │
//!          │    jobs in admission order                         │
//!          │ 3. ≥ 1 chunk packs whenever prefill is pending —   │
//!          │    even at zero remaining budget                   │
//!          └────────────────────────────────────────────────────┘
//! ```
//!
//! Rule 1 bounds decode latency: a step admitted before an iteration is
//! served **in** that iteration — no decode ever waits behind a whole cold
//! prefill. Rule 3 bounds prefill latency: saturating decode load can
//! shrink prefill progress to one chunk per iteration, never to zero.

use std::collections::VecDeque;

/// When and how the continuous scheduler packs an iteration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchedPolicy {
    /// Maximum query rows per prefill chunk — big prefills split into
    /// slices of this many rows, resumable across iterations.
    pub prefill_chunk: usize,
    /// Row budget of one iteration. Each decode step charges one row;
    /// prefill chunks fill what the decode pack leaves.
    pub iter_budget_rows: usize,
}

impl Default for SchedPolicy {
    fn default() -> SchedPolicy {
        SchedPolicy {
            prefill_chunk: 64,
            iter_budget_rows: 128,
        }
    }
}

impl SchedPolicy {
    /// A policy with an explicit chunk size and iteration budget.
    pub fn new(prefill_chunk: usize, iter_budget_rows: usize) -> SchedPolicy {
        assert!(prefill_chunk >= 1, "prefill_chunk must be at least 1");
        assert!(iter_budget_rows >= 1, "iter_budget_rows must be at least 1");
        SchedPolicy {
            prefill_chunk,
            iter_budget_rows,
        }
    }
}

/// One planned prefill chunk: rows `[lo, hi)` of job `job`'s query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkPlan {
    /// The prefill job the chunk belongs to.
    pub job: u64,
    /// First query row of the chunk (inclusive).
    pub lo: usize,
    /// Last query row of the chunk (exclusive).
    pub hi: usize,
}

/// One scheduler iteration's packing decision.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IterationPlan {
    /// Iteration ordinal (monotone from 0 per scheduler).
    pub iter: u64,
    /// Every decode step ready at iteration start, in admission order —
    /// all of them pack, budget notwithstanding.
    pub decode: Vec<u64>,
    /// Prefill chunks packed after the decode steps, round-robin over
    /// jobs in admission order.
    pub chunks: Vec<ChunkPlan>,
}

/// One replayable scheduler event. Events carry only **logical** content
/// (ids, row ranges, ordinals — never timings or addresses), so the same
/// admission sequence renders to byte-identical traces on any machine,
/// any thread count, any run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchedEvent {
    /// A prefill job of `rows` query rows was admitted.
    AdmitPrefill {
        /// Job id.
        job: u64,
        /// Total query rows of the job.
        rows: usize,
    },
    /// A decode step became ready.
    AdmitDecode {
        /// Step id.
        step: u64,
    },
    /// One packed iteration (see [`IterationPlan`]).
    Iteration {
        /// Iteration ordinal.
        iter: u64,
        /// Decode steps packed.
        decode: Vec<u64>,
        /// Prefill chunks packed, as `(job, lo, hi)`.
        chunks: Vec<(u64, usize, usize)>,
    },
    /// Ready decode steps were flushed **outside** an iteration — the
    /// determinism rule (a queued decode must launch before an append/
    /// extend/close/evict touches its session's cache) forced them out.
    ForcedDecode {
        /// Steps flushed, in admission order.
        steps: Vec<u64>,
    },
    /// A job was cancelled before completion (deadline shed, panic, or
    /// client gone); its remaining rows will never be planned.
    Cancel {
        /// The cancelled job.
        job: u64,
    },
    /// A chunk of a queued prefill job was executed by a **foreign**
    /// shard's engine (work stealing). Marked distinctly: steal
    /// executions are outside the per-engine deterministic plan.
    Steal {
        /// The job the chunk belongs to.
        job: u64,
        /// First query row of the stolen chunk (inclusive).
        lo: usize,
        /// Last query row of the stolen chunk (exclusive).
        hi: usize,
        /// Index of the shard that executed the chunk.
        by: usize,
    },
}

/// The replayable event log of one scheduler. [`render`](Self::render)
/// produces a canonical byte representation: two runs over the same
/// admission sequence and policy compare byte-equal.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SchedTrace {
    events: Vec<SchedEvent>,
}

impl SchedTrace {
    /// The recorded events, in order.
    pub fn events(&self) -> &[SchedEvent] {
        &self.events
    }

    /// Append one event.
    pub fn push(&mut self, event: SchedEvent) {
        self.events.push(event);
    }

    /// Canonical textual form: one line per event, stable field order,
    /// no timings — byte-identical across runs for the same admission
    /// sequence and policy.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            match e {
                SchedEvent::AdmitPrefill { job, rows } => {
                    out.push_str(&format!("admit_prefill job={job} rows={rows}\n"));
                }
                SchedEvent::AdmitDecode { step } => {
                    out.push_str(&format!("admit_decode step={step}\n"));
                }
                SchedEvent::Iteration {
                    iter,
                    decode,
                    chunks,
                } => {
                    out.push_str(&format!("iter={iter} decode=["));
                    for (i, s) in decode.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str(&s.to_string());
                    }
                    out.push_str("] chunks=[");
                    for (i, (job, lo, hi)) in chunks.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!("{job}:{lo}..{hi}"));
                    }
                    out.push_str("]\n");
                }
                SchedEvent::ForcedDecode { steps } => {
                    out.push_str("forced_decode steps=[");
                    for (i, s) in steps.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str(&s.to_string());
                    }
                    out.push_str("]\n");
                }
                SchedEvent::Cancel { job } => {
                    out.push_str(&format!("cancel job={job}\n"));
                }
                SchedEvent::Steal { job, lo, hi, by } => {
                    out.push_str(&format!("steal job={job} rows={lo}..{hi} by={by}\n"));
                }
            }
        }
        out
    }
}

struct JobState {
    id: u64,
    rows: usize,
    cursor: usize,
}

/// The continuous-batching scheduler of one engine. Pure data: decisions
/// depend only on the admission order and the policy, never on wall-clock
/// time, thread interleaving, or payload contents.
pub struct Scheduler {
    policy: SchedPolicy,
    /// Pending prefill jobs. Queue order realises the round-robin: a job
    /// that received a chunk and still has rows left moves to the back.
    jobs: VecDeque<JobState>,
    /// Decode steps ready for the next iteration, in admission order.
    decode: Vec<u64>,
    iter: u64,
    trace: SchedTrace,
}

impl Scheduler {
    /// A scheduler under `policy` with nothing admitted.
    pub fn new(policy: SchedPolicy) -> Scheduler {
        Scheduler {
            policy,
            jobs: VecDeque::new(),
            decode: Vec::new(),
            iter: 0,
            trace: SchedTrace::default(),
        }
    }

    /// The scheduler's policy.
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// Admit a prefill job of `rows` query rows. Jobs are planned in
    /// admission order; big jobs split into `prefill_chunk`-row slices
    /// across iterations.
    pub fn admit_prefill(&mut self, job: u64, rows: usize) {
        assert!(
            rows > 0,
            "zero-row prefill jobs are rejected at the front door"
        );
        self.trace.push(SchedEvent::AdmitPrefill { job, rows });
        self.jobs.push_back(JobState {
            id: job,
            rows,
            cursor: 0,
        });
    }

    /// Admit a ready decode step. Every ready step packs into the very
    /// next iteration.
    pub fn admit_decode(&mut self, step: u64) {
        self.trace.push(SchedEvent::AdmitDecode { step });
        self.decode.push(step);
    }

    /// Whether anything is pending (a job with rows left or a ready
    /// decode step).
    pub fn has_work(&self) -> bool {
        !self.jobs.is_empty() || !self.decode.is_empty()
    }

    /// Prefill jobs with rows still unplanned.
    pub fn pending_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Decode steps ready for the next iteration.
    pub fn ready_decode(&self) -> usize {
        self.decode.len()
    }

    /// Remove a job (deadline shed, panic, client gone). Its remaining
    /// rows will never be planned. `false` if the job is unknown or
    /// already complete.
    pub fn cancel(&mut self, job: u64) -> bool {
        let before = self.jobs.len();
        self.jobs.retain(|j| j.id != job);
        if self.jobs.len() < before {
            self.trace.push(SchedEvent::Cancel { job });
            true
        } else {
            false
        }
    }

    /// Take every ready decode step **outside** an iteration — the
    /// determinism rule forced a flush (an append/extend/close/evict
    /// arrived for a session with a queued step). Recorded as a distinct
    /// [`SchedEvent::ForcedDecode`] so replays can tell forced flushes
    /// from packed iterations.
    pub fn force_decode_flush(&mut self) -> Vec<u64> {
        let steps = std::mem::take(&mut self.decode);
        if !steps.is_empty() {
            self.trace.push(SchedEvent::ForcedDecode {
                steps: steps.clone(),
            });
        }
        steps
    }

    /// Record a chunk of a queued job executed by a foreign shard (work
    /// stealing), and advance the job's cursor past it.
    pub fn note_steal(&mut self, job: u64, lo: usize, hi: usize, by: usize) {
        self.trace.push(SchedEvent::Steal { job, lo, hi, by });
        if let Some(j) = self.jobs.iter_mut().find(|j| j.id == job) {
            j.cursor = j.cursor.max(hi);
        }
        self.jobs.retain(|j| j.cursor < j.rows);
    }

    /// Pack the next iteration, or `None` when nothing is pending.
    ///
    /// Packing rules (the fairness contract, pinned by
    /// `tests/scheduler.rs`):
    ///
    /// 1. **every** ready decode step packs first, one budget row each —
    ///    even when the decode pack alone exceeds the budget. A decode
    ///    step therefore waits at most the one iteration in flight at its
    ///    admission.
    /// 2. the remaining budget fills prefill chunks of at most
    ///    `prefill_chunk` rows, round-robin over jobs in admission order
    ///    (a job that got a chunk and still has rows moves behind the
    ///    jobs that have not gone yet).
    /// 3. whenever prefill is pending, **at least one chunk packs** even
    ///    at zero remaining budget — saturating decode load slows prefill
    ///    to one chunk per iteration, never to zero.
    pub fn next_iteration(&mut self) -> Option<IterationPlan> {
        if self.jobs.is_empty() && self.decode.is_empty() {
            return None;
        }
        let decode = std::mem::take(&mut self.decode);
        let mut budget = self.policy.iter_budget_rows.saturating_sub(decode.len());
        let mut chunks: Vec<ChunkPlan> = Vec::new();
        let mut requeue: VecDeque<JobState> = VecDeque::new();
        while let Some(mut job) = self.jobs.pop_front() {
            let remaining = job.rows - job.cursor;
            let cap = remaining.min(self.policy.prefill_chunk);
            // Anti-starvation: the iteration's first chunk ignores the
            // budget floor (it still caps at prefill_chunk).
            let take = if chunks.is_empty() {
                cap
            } else {
                cap.min(budget)
            };
            if take == 0 {
                self.jobs.push_front(job);
                break;
            }
            let lo = job.cursor;
            let hi = lo + take;
            chunks.push(ChunkPlan {
                job: job.id,
                lo,
                hi,
            });
            job.cursor = hi;
            budget = budget.saturating_sub(take);
            if job.cursor < job.rows {
                requeue.push_back(job);
            }
            if budget == 0 {
                break;
            }
        }
        // Jobs that ran this iteration go behind the ones still waiting.
        self.jobs.append(&mut requeue);
        let plan = IterationPlan {
            iter: self.iter,
            decode,
            chunks,
        };
        self.iter += 1;
        self.trace.push(SchedEvent::Iteration {
            iter: plan.iter,
            decode: plan.decode.clone(),
            chunks: plan.chunks.iter().map(|c| (c.job, c.lo, c.hi)).collect(),
        });
        Some(plan)
    }

    /// The replayable event log so far.
    pub fn trace(&self) -> &SchedTrace {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_always_packs_next_iteration_even_over_budget() {
        let mut s = Scheduler::new(SchedPolicy::new(8, 4));
        for step in 0..10 {
            s.admit_decode(step);
        }
        s.admit_prefill(100, 32);
        let plan = s.next_iteration().unwrap();
        // All 10 decode steps pack despite the budget of 4…
        assert_eq!(plan.decode, (0..10).collect::<Vec<_>>());
        // …and prefill still progresses by exactly one chunk.
        assert_eq!(
            plan.chunks,
            vec![ChunkPlan {
                job: 100,
                lo: 0,
                hi: 8
            }]
        );
    }

    #[test]
    fn prefill_chunks_round_robin_and_resume() {
        let mut s = Scheduler::new(SchedPolicy::new(4, 8));
        s.admit_prefill(0, 10);
        s.admit_prefill(1, 6);
        // Iter 0: job0 rows 0..4, job1 rows 0..4 (budget 8 exactly).
        let p0 = s.next_iteration().unwrap();
        assert_eq!(
            p0.chunks,
            vec![
                ChunkPlan {
                    job: 0,
                    lo: 0,
                    hi: 4
                },
                ChunkPlan {
                    job: 1,
                    lo: 0,
                    hi: 4
                }
            ]
        );
        // Iter 1: round-robin continues where each job left off.
        let p1 = s.next_iteration().unwrap();
        assert_eq!(
            p1.chunks,
            vec![
                ChunkPlan {
                    job: 0,
                    lo: 4,
                    hi: 8
                },
                ChunkPlan {
                    job: 1,
                    lo: 4,
                    hi: 6
                }
            ]
        );
        // Iter 2: only job0's tail remains.
        let p2 = s.next_iteration().unwrap();
        assert_eq!(
            p2.chunks,
            vec![ChunkPlan {
                job: 0,
                lo: 8,
                hi: 10
            }]
        );
        assert!(s.next_iteration().is_none());
    }

    #[test]
    fn same_admissions_render_byte_identical_traces() {
        let run = || {
            let mut s = Scheduler::new(SchedPolicy::new(16, 32));
            s.admit_prefill(0, 100);
            s.admit_decode(7);
            s.admit_decode(8);
            let _ = s.next_iteration();
            s.admit_prefill(1, 40);
            let _ = s.force_decode_flush();
            while s.next_iteration().is_some() {}
            s.trace().render()
        };
        let a = run();
        let b = run();
        assert_eq!(a.as_bytes(), b.as_bytes());
        assert!(a.contains("admit_prefill job=0 rows=100"));
        assert!(a.contains("iter=0 decode=[7,8]"));
    }

    #[test]
    fn cancel_removes_remaining_rows_from_planning() {
        let mut s = Scheduler::new(SchedPolicy::new(4, 4));
        s.admit_prefill(0, 100);
        let _ = s.next_iteration().unwrap();
        assert!(s.cancel(0));
        assert!(!s.cancel(0));
        assert!(s.next_iteration().is_none());
        assert!(s
            .trace()
            .events()
            .iter()
            .any(|e| matches!(e, SchedEvent::Cancel { job: 0 })));
    }

    #[test]
    fn steal_advances_the_cursor_and_is_marked_distinctly() {
        let mut s = Scheduler::new(SchedPolicy::new(4, 64));
        s.admit_prefill(0, 8);
        s.note_steal(0, 0, 4, 3);
        // The stolen rows never re-plan; the local plan resumes at row 4.
        let plan = s.next_iteration().unwrap();
        assert_eq!(
            plan.chunks,
            vec![ChunkPlan {
                job: 0,
                lo: 4,
                hi: 8
            }]
        );
        assert!(s.trace().render().contains("steal job=0 rows=0..4 by=3"));
    }
}
