//! Deterministic fault injection for chaos testing the server.
//!
//! A [`FaultPlan`] maps **operation indices** to faults. The server counts
//! every front-door call — `submit`, `open_session`, `append`, `extend`,
//! `submit_decode` — on one shared counter in call order, so a plan built
//! from a seed (or by hand) fires at exactly the same operations on every
//! run with the same traffic. Faults ride the admitted request to the
//! batcher and trip at launch, so a panic genuinely unwinds *mid-flush*
//! — through the engine and the mechanism — exactly like a kernel bug
//! would.
//!
//! Injection is opt-in per server ([`crate::AttentionServer::start_with_faults`]);
//! a server started without a plan never wraps its mechanism and performs
//! no per-operation lookups.

use dfss_core::mechanism::{Attention, RequestError};
use dfss_kernels::GpuCtx;
use dfss_tensor::{BatchedMatrix, Matrix, RaggedBatch, Scalar};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What a [`FaultPlan`] entry does to the operation it targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The batched launch containing the targeted prefill or decode
    /// request panics mid-flush ("injected kernel panic"). Every request
    /// packed into that batch fails with
    /// [`ServeError::BatchPanicked`](crate::ServeError::BatchPanicked);
    /// the server recovers and keeps serving. Ignored on session
    /// operations (open/append/extend), which never launch.
    PanicInBatch,
    /// The batched launch containing the targeted request sleeps this
    /// long before running — artificial launch slowness for exercising
    /// deadlines and queue growth. Ignored on session operations.
    SlowLaunch(Duration),
    /// The targeted session operation (`open_session`, `append`,
    /// `extend`) is admitted as if the pool had zero free pages: typed
    /// [`SessionError::KvBudgetExhausted`](crate::SessionError::KvBudgetExhausted),
    /// nothing reserved. Ignored on prefill/decode submissions, which
    /// take no pages.
    ExhaustPool,
    /// The batcher thread dies (returns without draining) when the batch
    /// containing the targeted request closes — the hard-crash case.
    /// Outstanding and later handles resolve with
    /// [`ServeError::ServerGone`](crate::ServeError::ServerGone); nothing
    /// blocks forever.
    KillServer,
    /// **Wire fault** (interpreted by the socket-level chaos client, not
    /// the batcher): the client sends roughly half the request's bytes,
    /// then closes the connection. The server must drop the
    /// half-request silently — no response, no hung handler, no leaked
    /// session state.
    DisconnectMidRequest,
    /// **Wire fault**: the client stalls this long between sending its
    /// request and reading the response — the server's write lands in
    /// the socket buffer (or blocks against its bounded write deadline)
    /// while the acceptor keeps serving other connections.
    StallMidResponse(Duration),
    /// **Wire fault**: the client sends bytes that are not HTTP at all.
    /// The server must answer with a typed `400` (counted in
    /// `http_parse_rejects`), never panic or hang.
    GarbageBytes,
}

impl FaultKind {
    /// Whether this fault acts at the socket layer (client-side, keyed
    /// by wire-request ordinal) rather than inside the batcher (keyed
    /// by front-door operation ordinal). The server's own fault lookup
    /// ignores wire faults; the chaos client ignores batcher faults.
    pub fn is_wire(&self) -> bool {
        matches!(
            self,
            FaultKind::DisconnectMidRequest
                | FaultKind::StallMidResponse(_)
                | FaultKind::GarbageBytes
        )
    }
}

/// A deterministic schedule of injected faults, keyed by front-door
/// operation index (0-based, in call order).
///
/// ```
/// use dfss_serve::{FaultKind, FaultPlan};
/// use std::time::Duration;
///
/// let plan = FaultPlan::new()
///     .inject(3, FaultKind::PanicInBatch)
///     .inject(7, FaultKind::SlowLaunch(Duration::from_millis(2)));
/// assert_eq!(plan.get(3), Some(FaultKind::PanicInBatch));
/// assert_eq!(plan.get(4), None);
/// ```
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    faults: HashMap<u64, FaultKind>,
}

impl FaultPlan {
    /// An empty plan (no faults fire until [`inject`](Self::inject)ed).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedule `kind` to fire at front-door operation `op` (replacing any
    /// fault already scheduled there). Builder-style.
    pub fn inject(mut self, op: u64, kind: FaultKind) -> FaultPlan {
        self.faults.insert(op, kind);
        self
    }

    /// The fault scheduled at operation `op`, if any.
    pub fn get(&self, op: u64) -> Option<FaultKind> {
        self.faults.get(&op).copied()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// The armed-fault latch shared between the batcher and the fault-wrapped
/// mechanism: the batcher arms it from the tags riding a closing batch,
/// the wrapper trips it at the first batched kernel entry point.
#[derive(Debug, Default)]
pub(crate) struct FaultArm {
    panic_next: AtomicBool,
    slow_next_ns: AtomicU64,
}

impl FaultArm {
    /// Arm a panic for the next batched launch.
    pub fn arm_panic(&self) {
        self.panic_next.store(true, Ordering::SeqCst);
    }

    /// Arm a sleep for the next batched launch (longest wins if several
    /// tags land in one batch).
    pub fn arm_slow(&self, delay: Duration) {
        let ns = delay.as_nanos().min(u64::MAX as u128) as u64;
        self.slow_next_ns.fetch_max(ns, Ordering::SeqCst);
    }

    /// Fire-and-clear: sleep if slowness is armed, then panic if a panic
    /// is armed. Called on the batcher thread at launch entry.
    fn trip(&self) {
        let ns = self.slow_next_ns.swap(0, Ordering::SeqCst);
        if ns > 0 {
            std::thread::sleep(Duration::from_nanos(ns));
        }
        if self.panic_next.swap(false, Ordering::SeqCst) {
            panic!("injected kernel panic");
        }
    }
}

/// A delegating mechanism wrapper that trips armed faults at the batched
/// launch entry points — the panic unwinds from inside the mechanism call,
/// exactly where a real kernel bug would surface.
pub(crate) struct FaultyAttention<T: Scalar> {
    pub inner: Arc<dyn Attention<T> + Send + Sync>,
    pub arm: Arc<FaultArm>,
}

impl<T: Scalar> Attention<T> for FaultyAttention<T> {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn forward(&self, ctx: &mut GpuCtx, q: &Matrix<T>, k: &Matrix<T>, v: &Matrix<T>) -> Matrix<T> {
        self.inner.forward(ctx, q, k, v)
    }

    fn forward_batched(
        &self,
        ctx: &mut GpuCtx,
        q: &BatchedMatrix<T>,
        k: &BatchedMatrix<T>,
        v: &BatchedMatrix<T>,
    ) -> BatchedMatrix<T> {
        self.arm.trip();
        self.inner.forward_batched(ctx, q, k, v)
    }

    fn scale_for(&self, d: usize) -> f32 {
        self.inner.scale_for(d)
    }

    fn decode(
        &self,
        ctx: &mut GpuCtx,
        q_row: &Matrix<T>,
        k: &Matrix<T>,
        v: &Matrix<T>,
    ) -> Matrix<T> {
        self.inner.decode(ctx, q_row, k, v)
    }

    fn decode_ragged(
        &self,
        ctx: &mut GpuCtx,
        q: &Matrix<T>,
        k: &RaggedBatch<T>,
        v: &RaggedBatch<T>,
    ) -> Matrix<T> {
        self.arm.trip();
        self.inner.decode_ragged(ctx, q, k, v)
    }

    fn check_shape(&self, n: usize, d: usize) -> Result<(), RequestError> {
        self.inner.check_shape(n, d)
    }

    fn forward_rows(
        &self,
        ctx: &mut GpuCtx,
        q_rows: &Matrix<T>,
        k: &Matrix<T>,
        v: &Matrix<T>,
    ) -> Matrix<T> {
        // Chunked prefill is a launch entry point too: an armed fault
        // trips inside the chunk, unwinding through the mechanism exactly
        // like the batched paths.
        self.arm.trip();
        self.inner.forward_rows(ctx, q_rows, k, v)
    }

    fn supports_row_chunking(&self) -> bool {
        self.inner.supports_row_chunking()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfss_core::full::FullAttention;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn plan_builder_schedules_and_replaces() {
        let plan = FaultPlan::new()
            .inject(0, FaultKind::PanicInBatch)
            .inject(5, FaultKind::ExhaustPool)
            .inject(0, FaultKind::KillServer);
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
        assert_eq!(plan.get(0), Some(FaultKind::KillServer));
        assert_eq!(plan.get(5), Some(FaultKind::ExhaustPool));
        assert_eq!(plan.get(1), None);
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn armed_panic_fires_once_inside_the_batched_launch() {
        let arm = Arc::new(FaultArm::default());
        let mech = FaultyAttention::<f32> {
            inner: Arc::new(FullAttention),
            arm: Arc::clone(&arm),
        };
        let q = BatchedMatrix::<f32>::zeros(1, 4, 4);
        arm.arm_panic();
        let mut ctx = GpuCtx::a100();
        let unwound = catch_unwind(AssertUnwindSafe(|| {
            let _ = mech.forward_batched(&mut ctx, &q, &q, &q);
        }));
        assert!(unwound.is_err(), "armed wrapper must panic at launch");
        // The latch cleared: the next launch runs clean.
        let out = mech.forward_batched(&mut ctx, &q, &q, &q);
        assert_eq!(out.shape(), (1, 4, 4));
    }
}
