//! Shape-bucketed admission queue — the batcher thread's in-memory state.

use crate::faults::FaultKind;
use crate::BatchPolicy;
use dfss_core::engine::ShapeKey;
use dfss_tensor::{Matrix, Scalar};
use std::time::Instant;

/// One admitted request waiting in a bucket.
pub(crate) struct QueuedRequest<T: Scalar, R> {
    pub q: Matrix<T>,
    pub k: Matrix<T>,
    pub v: Matrix<T>,
    /// When the client submitted it (queue-wait measurement origin).
    pub submitted: Instant,
    /// Absolute shed point: if the bucket closes after this instant the
    /// request is dropped with `DeadlineExceeded` instead of packed.
    pub deadline: Option<Instant>,
    /// Injected fault riding this request to its launch (chaos harness).
    pub fault: Option<FaultKind>,
    /// Whatever the server uses to deliver the response.
    pub reply: R,
}

/// A shape bucket: same-shape requests that can stack into one launch.
pub(crate) struct Bucket<T: Scalar, R> {
    pub key: ShapeKey,
    pub requests: Vec<QueuedRequest<T, R>>,
    /// Admission time of the oldest request (deadline origin).
    pub oldest: Instant,
}

/// The batcher's queue of open buckets, in first-opened order.
pub(crate) struct BucketQueue<T: Scalar, R> {
    buckets: Vec<Bucket<T, R>>,
    policy: BatchPolicy,
}

impl<T: Scalar, R> BucketQueue<T, R> {
    pub fn new(policy: BatchPolicy) -> BucketQueue<T, R> {
        BucketQueue {
            buckets: Vec::new(),
            policy,
        }
    }

    /// Whether any bucket is open (test observability).
    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Admit a request into its shape bucket (opening one if needed).
    /// Returns the bucket if the push filled it to `max_batch` — the
    /// caller launches it immediately.
    pub fn push(&mut self, req: QueuedRequest<T, R>) -> Option<Bucket<T, R>> {
        let key = ShapeKey {
            n: req.q.rows(),
            d: req.q.cols(),
            d_v: req.v.cols(),
        };
        let now = req.submitted;
        match self.buckets.iter_mut().position(|b| b.key == key) {
            Some(i) => {
                self.buckets[i].requests.push(req);
                if self.buckets[i].requests.len() >= self.policy.max_batch {
                    return Some(self.buckets.remove(i));
                }
            }
            None => {
                let bucket = Bucket {
                    key,
                    requests: vec![req],
                    oldest: now,
                };
                if self.policy.max_batch <= 1 {
                    return Some(bucket);
                }
                self.buckets.push(bucket);
            }
        }
        None
    }

    /// The earliest instant at which some bucket's deadline fires.
    pub fn next_deadline(&self) -> Option<Instant> {
        self.buckets
            .iter()
            .map(|b| b.oldest + self.policy.max_delay)
            .min()
    }

    /// Remove and return every bucket whose oldest request has waited
    /// `max_delay` or longer, in first-opened order.
    pub fn take_due(&mut self, now: Instant) -> Vec<Bucket<T, R>> {
        let mut due = Vec::new();
        let mut i = 0;
        while i < self.buckets.len() {
            if now.saturating_duration_since(self.buckets[i].oldest) >= self.policy.max_delay {
                due.push(self.buckets.remove(i));
            } else {
                i += 1;
            }
        }
        due
    }

    /// Remove and return every open bucket (shutdown drain).
    pub fn take_all(&mut self) -> Vec<Bucket<T, R>> {
        std::mem::take(&mut self.buckets)
    }

    /// Per-bucket queued-request counts, in first-opened order — the
    /// observability snapshot `/metrics` exports.
    pub fn depths(&self) -> Vec<(ShapeKey, usize)> {
        self.buckets
            .iter()
            .map(|b| (b.key, b.requests.len()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn req(n: usize, d: usize) -> QueuedRequest<f32, usize> {
        QueuedRequest {
            q: Matrix::zeros(n, d),
            k: Matrix::zeros(n, d),
            v: Matrix::zeros(n, d),
            submitted: Instant::now(),
            deadline: None,
            fault: None,
            reply: 0,
        }
    }

    #[test]
    fn fills_and_closes_at_max_batch() {
        let mut q = BucketQueue::new(BatchPolicy::batched(3, Duration::from_secs(60)));
        assert!(q.push(req(16, 8)).is_none());
        assert!(q.push(req(16, 8)).is_none());
        let full = q.push(req(16, 8)).expect("third push fills the bucket");
        assert_eq!(full.requests.len(), 3);
        assert_eq!(
            full.key,
            ShapeKey {
                n: 16,
                d: 8,
                d_v: 8
            }
        );
        assert!(q.is_empty());
    }

    #[test]
    fn shapes_bucket_separately() {
        let mut q = BucketQueue::new(BatchPolicy::batched(2, Duration::from_secs(60)));
        assert!(q.push(req(16, 8)).is_none());
        assert!(q.push(req(32, 8)).is_none());
        // Same shapes coalesce, different shapes never mix.
        let full = q.push(req(32, 8)).expect("second 32x8 fills its bucket");
        assert!(full.requests.iter().all(|r| r.q.rows() == 32));
        assert!(!q.is_empty()); // the 16x8 bucket is still open
    }

    #[test]
    fn per_request_policy_closes_immediately() {
        let mut q = BucketQueue::new(BatchPolicy::per_request());
        let b = q.push(req(16, 8)).expect("max_batch=1 closes on push");
        assert_eq!(b.requests.len(), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn deadlines_fire_oldest_first() {
        let mut q = BucketQueue::new(BatchPolicy::batched(10, Duration::ZERO));
        assert!(q.push(req(16, 8)).is_none());
        assert!(q.push(req(32, 8)).is_none());
        let now = Instant::now();
        assert!(q.next_deadline().expect("open buckets") <= now);
        let due = q.take_due(now);
        assert_eq!(due.len(), 2);
        assert_eq!(due[0].key.n, 16);
        assert_eq!(due[1].key.n, 32);
        assert!(q.is_empty());
        assert!(q.next_deadline().is_none());
    }

    #[test]
    fn empty_queue_has_no_deadline_and_no_due_buckets() {
        // The deadline-close edge the BatchPolicy docs pin: with nothing
        // pending there is no deadline to arm, and an (impossible) expired
        // deadline yields zero buckets — never a zero-size launch.
        let mut q: BucketQueue<f32, usize> =
            BucketQueue::new(BatchPolicy::batched(4, Duration::ZERO));
        assert!(q.next_deadline().is_none());
        assert!(q.take_due(Instant::now()).is_empty());
        assert!(q.take_all().is_empty());
    }

    #[test]
    fn take_all_drains() {
        let mut q = BucketQueue::new(BatchPolicy::batched(10, Duration::from_secs(60)));
        let _ = q.push(req(16, 8));
        let _ = q.push(req(32, 8));
        assert_eq!(q.take_all().len(), 2);
        assert!(q.is_empty());
    }
}
