//! Retry with jittered exponential backoff for transient serving errors.
//!
//! Load shedding ([`ServeError::Overloaded`], [`SessionError::Overloaded`])
//! and KV back-pressure ([`SessionError::KvBudgetExhausted`]) are
//! *transient*: the condition clears as the batcher drains the queue or
//! other sessions close. [`with_backoff`] wraps an operation so those
//! errors are retried on a capped exponential schedule with **full
//! jitter** (each sleep is drawn uniformly from `[0, cap(base · 2ᵃ)]`,
//! the de-synchronising schedule that keeps a thundering herd of shed
//! clients from re-converging on the same instant), while every
//! non-transient error — and a transient one on the final attempt —
//! returns immediately. Jitter is drawn from a seeded [`Rng`], so a
//! given `(policy, seed)` retries on an identical schedule every run:
//! the chaos harness can assert on retried outcomes deterministically.
//!
//! ```
//! use dfss_serve::retry::{with_backoff, Backoff};
//! use dfss_serve::ServeError;
//! use std::time::Duration;
//!
//! let mut calls = 0;
//! let out: Result<u32, ServeError> = with_backoff(Backoff::quick(3), || {
//!     calls += 1;
//!     if calls < 3 {
//!         Err(ServeError::Overloaded { depth: 8 })
//!     } else {
//!         Ok(42)
//!     }
//! });
//! assert_eq!(out, Ok(42));
//! assert_eq!(calls, 3);
//! ```
//!
//! [`ServeError::Overloaded`]: crate::ServeError::Overloaded
//! [`SessionError::Overloaded`]: crate::SessionError::Overloaded
//! [`SessionError::KvBudgetExhausted`]: crate::SessionError::KvBudgetExhausted

use crate::http::HttpClientError;
use crate::{ServeError, SessionError};
use dfss_tensor::Rng;
use std::time::Duration;

/// Whether an error is worth retrying: the refusal reflects a momentary
/// resource condition, not a property of the request itself.
pub trait Transient {
    /// `true` when a later identical call could succeed without any
    /// change to the request.
    fn is_transient(&self) -> bool;
}

impl Transient for ServeError {
    fn is_transient(&self) -> bool {
        matches!(self, ServeError::Overloaded { .. })
    }
}

impl Transient for SessionError {
    fn is_transient(&self) -> bool {
        matches!(
            self,
            SessionError::Overloaded { .. } | SessionError::KvBudgetExhausted { .. }
        )
    }
}

/// The wire-level view of the same contract: a `503` is a shed
/// (connection cap, queue overload, or KV back-pressure — all of which
/// clear) and a `408` is a tripped read deadline; both are worth
/// retrying. Every other status reflects the request itself, and a
/// transport failure means there is no server answer to classify.
///
/// A full client retry loop against a server with an injected pool
/// exhaustion — the first append is shed with `503 Retry-After`, the
/// retry succeeds:
///
/// ```
/// use dfss_core::full::FullAttention;
/// use dfss_serve::http::{HttpClient, HttpConfig, HttpServer};
/// use dfss_serve::retry::{with_backoff, Backoff};
/// use dfss_serve::wire::Json;
/// use dfss_serve::{AttentionServer, BatchPolicy, FaultKind, FaultPlan};
/// use std::sync::Arc;
///
/// // Operation 0 is the open; operation 1 (the first append) is
/// // admitted as if the KV pool had zero free pages.
/// let att = AttentionServer::<f32>::start_with_faults(
///     Arc::new(FullAttention),
///     BatchPolicy::per_request(),
///     FaultPlan::new().inject(1, FaultKind::ExhaustPool),
/// );
/// let server = HttpServer::bind(att, HttpConfig::default()).unwrap();
/// let mut client = HttpClient::connect(server.local_addr());
///
/// let opened = client
///     .call("POST", "/v1/sessions", Some(&Json::obj(vec![("d", Json::Num(4.0))])))
///     .unwrap();
/// let sid = opened.get("session").unwrap().as_f64().unwrap() as u64;
/// let body = Json::obj(vec![
///     ("k_row", Json::f32_row(&[1.0; 4])),
///     ("v_row", Json::f32_row(&[2.0; 4])),
/// ]);
/// let out = with_backoff(Backoff::quick(3), || {
///     client.call("POST", &format!("/v1/sessions/{sid}/append"), Some(&body))
/// });
/// assert!(out.is_ok(), "the 503 Retry-After was transient");
/// let stats = server.shutdown();
/// assert_eq!(stats.kv_rows_appended, 1);
/// ```
impl Transient for HttpClientError {
    fn is_transient(&self) -> bool {
        matches!(
            self,
            HttpClientError::Status {
                status: 503 | 408,
                ..
            }
        )
    }
}

/// The retry schedule: attempt count, backoff base/cap, and the jitter
/// seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Backoff {
    /// Total attempts (the first call included). At least 1.
    pub attempts: u32,
    /// Backoff scale: attempt `a` (0-based) sleeps up to `base · 2ᵃ`.
    pub base: Duration,
    /// Ceiling on any single sleep.
    pub cap: Duration,
    /// Seed for the jitter draw — same seed, same schedule.
    pub seed: u64,
}

impl Backoff {
    /// A millisecond-scale schedule for in-process retries (base 1 ms,
    /// cap 50 ms).
    pub fn quick(attempts: u32) -> Backoff {
        Backoff {
            attempts,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(50),
            seed: 0x5eed,
        }
    }
}

impl Default for Backoff {
    fn default() -> Backoff {
        Backoff::quick(4)
    }
}

/// Run `op` until it succeeds, fails non-transiently, or exhausts
/// `policy.attempts`, sleeping a jittered exponential backoff between
/// transient failures. Returns the last result either way.
pub fn with_backoff<T, E: Transient>(
    policy: Backoff,
    mut op: impl FnMut() -> Result<T, E>,
) -> Result<T, E> {
    assert!(policy.attempts >= 1, "at least one attempt");
    let mut rng = Rng::new(policy.seed);
    for attempt in 0..policy.attempts {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() && attempt + 1 < policy.attempts => {
                let exp = policy
                    .base
                    .saturating_mul(1u32 << attempt.min(20))
                    .min(policy.cap);
                // Full jitter: uniform in [0, exp].
                let sleep = exp.mul_f64(rng.uniform());
                std::thread::sleep(sleep);
            }
            Err(e) => return Err(e),
        }
    }
    unreachable!("loop returns on every attempt outcome");
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfss_core::mechanism::RequestError;

    #[test]
    fn transient_errors_retry_until_success() {
        let mut calls = 0;
        let out: Result<&str, SessionError> = with_backoff(Backoff::quick(5), || {
            calls += 1;
            if calls < 4 {
                Err(SessionError::KvBudgetExhausted { need: 2, free: 0 })
            } else {
                Ok("served")
            }
        });
        assert_eq!(out, Ok("served"));
        assert_eq!(calls, 4);
    }

    #[test]
    fn non_transient_errors_return_immediately() {
        let mut calls = 0;
        let out: Result<(), ServeError> = with_backoff(Backoff::quick(5), || {
            calls += 1;
            Err(ServeError::Rejected(RequestError::EmptyRequest))
        });
        assert!(matches!(out, Err(ServeError::Rejected(_))));
        assert_eq!(calls, 1, "validation failures must not be retried");
    }

    #[test]
    fn attempts_bound_transient_retries() {
        let mut calls = 0;
        let out: Result<(), ServeError> = with_backoff(Backoff::quick(3), || {
            calls += 1;
            Err(ServeError::Overloaded { depth: 9 })
        });
        assert_eq!(out, Err(ServeError::Overloaded { depth: 9 }));
        assert_eq!(calls, 3);
    }

    #[test]
    fn transient_classification_matches_the_docs() {
        assert!(ServeError::Overloaded { depth: 1 }.is_transient());
        assert!(!ServeError::ServerGone.is_transient());
        assert!(!ServeError::WaitTimeout.is_transient());
        assert!(!ServeError::BatchPanicked {
            payload: "x".into()
        }
        .is_transient());
        assert!(SessionError::Overloaded { depth: 1 }.is_transient());
        assert!(SessionError::KvBudgetExhausted { need: 1, free: 0 }.is_transient());
        assert!(!SessionError::UnknownSession(crate::SessionId(0)).is_transient());
        assert!(!SessionError::Evicted(crate::SessionId(0)).is_transient());
    }
}
