//! The HTTP/1.1 front door: a hardened network edge over
//! [`AttentionServer`] — or, via [`HttpServer::bind_sharded`], over a
//! whole [`ShardedServer`] fleet behind the same routes.
//!
//! Everything PR 7 guaranteed in-process — typed sheds, deadlines,
//! panic isolation, reconciled counters — stops mattering the moment a
//! real client can only reach the server through a socket. This module
//! extends those guarantees to the wire, on `std::net::TcpListener`
//! and plain threads (no tokio, matching the batcher's no-dependency
//! style):
//!
//! * **Endpoints** — `POST /v1/prefill`, `POST /v1/sessions`,
//!   `POST /v1/sessions/{id}/append`, `POST /v1/sessions/{id}/decode`,
//!   `DELETE /v1/sessions/{id}`, plus `GET /healthz` (liveness),
//!   `GET /readyz` (drain-aware readiness) and `GET /metrics` (every
//!   [`ServeStats`] counter and the per-bucket queue depths).
//! * **Defensive connection layer** — per-connection read/write
//!   deadlines and bounded header/body limits: a slow-loris client gets
//!   a typed `408`, an oversized payload a typed `413`, and neither can
//!   hang the acceptor. A hard connection cap sheds excess connections
//!   with `503 Retry-After`, riding the same transient-error contract as
//!   the batcher's `Overloaded` ([`crate::retry`]). Malformed bytes can
//!   never panic the parser — every parse error is a typed `400`
//!   (pinned by a fuzz proptest in `tests/http_chaos.rs`).
//! * **Total error mapping** — [`status_for_serve`],
//!   [`status_for_session`] and [`status_for_request`] are single
//!   exhaustive `match`es (no wildcard arm), so adding an error variant
//!   is a compile error here rather than a silent `500` in production.
//! * **Graceful drain** — [`HttpServer::shutdown`] stops accepting,
//!   flips `readyz` to `503` immediately, serves in-flight connections
//!   under [`HttpConfig::drain_deadline`], then force-closes stragglers
//!   (counted in [`ServeStats::drain_force_closed`]) and drains the
//!   batcher itself — lifetime counters reconcile
//!   (`kv_pages_allocated == kv_pages_freed`) even when clients
//!   abandoned their sessions mid-flight.
//!
//! Connection lifecycle (one thread per accepted connection, bounded by
//! the cap):
//!
//! ```text
//!  accept ──► cap check ──► per-request loop:
//!    │           │ over cap     read_request (deadline, limits)
//!    │           ▼               │       │          │
//!    │      503 + close          ▼       ▼          ▼
//!    │                        route   typed 4xx   silent close
//!    │                          │    (400/408/413) (peer gone)
//!    ▼                          ▼
//!  drain: refuse + stop      write_response ──► keep-alive or close
//! ```
//!
//! The server is `f32`-typed: JSON numbers widen losslessly to `f64` on
//! the wire, so served outputs survive the round-trip bit-identically
//! (asserted end to end by the chaos harness).

use crate::wire::{self, Json, Request, RequestReader, WireError, WireLimits};
use crate::{
    AttentionServer, DecodeHandle, DecodeRequest, QueueDepths, RequestError, ResponseHandle,
    ServeError, ServeStats, SessionError, SessionId, ShapeKey, ShardedServer,
};
use dfss_tensor::Matrix;
use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning for the front door's defensive limits. The defaults are
/// deliberately tight enough to test against (sub-second deadlines
/// belong in tests, not defaults — these are serving values).
#[derive(Clone, Copy, Debug)]
pub struct HttpConfig {
    /// Loopback port to bind (`0` picks an ephemeral port).
    pub port: u16,
    /// Hard cap on concurrently served connections; excess connections
    /// are shed with `503 Retry-After` before any bytes are read.
    pub max_connections: usize,
    /// Per-connection read deadline: a request that trickles in slower
    /// than this (slow-loris) gets a typed `408` and the connection
    /// closes.
    pub read_timeout: Duration,
    /// Per-connection write deadline: a client that stops reading its
    /// response cannot pin the handler past this.
    pub write_timeout: Duration,
    /// Bound on waiting for the batcher to serve an admitted request
    /// before answering `504` (the handle stays typed either way).
    pub response_timeout: Duration,
    /// Header/body byte budgets ([`WireLimits`]); exceeding them is a
    /// typed `413`.
    pub limits: WireLimits,
    /// How long [`HttpServer::shutdown`] lets in-flight connections
    /// finish before force-closing them.
    pub drain_deadline: Duration,
}

impl Default for HttpConfig {
    fn default() -> HttpConfig {
        HttpConfig {
            port: 0,
            max_connections: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            response_timeout: Duration::from_secs(30),
            limits: WireLimits::default(),
            drain_deadline: Duration::from_secs(5),
        }
    }
}

/// The attention backend behind the front door: one engine, or a
/// sharded fleet reached through the same routes. Requests are
/// delegated verbatim — the sharded arm keeps all of its routing
/// semantics (session pinning, least-loaded prefill, work stealing) —
/// and the metrics path folds per-shard counters into one fleet rollup
/// while also exporting each shard as a labelled gauge set.
enum Backend {
    Single(AttentionServer<f32>),
    Sharded(ShardedServer<f32>),
}

impl Backend {
    fn submit(
        &self,
        q: Matrix<f32>,
        k: Matrix<f32>,
        v: Matrix<f32>,
    ) -> Result<ResponseHandle<f32>, ServeError> {
        match self {
            Backend::Single(att) => att.submit(q, k, v),
            Backend::Sharded(fleet) => fleet.submit(q, k, v),
        }
    }

    fn open_session(&self, d: usize, d_v: usize) -> Result<SessionId, SessionError> {
        match self {
            Backend::Single(att) => att.open_session(d, d_v),
            Backend::Sharded(fleet) => fleet.open_session(d, d_v),
        }
    }

    fn append(
        &self,
        session: SessionId,
        k_row: Vec<f32>,
        v_row: Vec<f32>,
    ) -> Result<(), SessionError> {
        match self {
            Backend::Single(att) => att.append(session, k_row, v_row),
            Backend::Sharded(fleet) => fleet.append(session, k_row, v_row),
        }
    }

    fn extend(
        &self,
        session: SessionId,
        k: Matrix<f32>,
        v: Matrix<f32>,
    ) -> Result<(), SessionError> {
        match self {
            Backend::Single(att) => att.extend(session, k, v),
            Backend::Sharded(fleet) => fleet.extend(session, k, v),
        }
    }

    fn submit_decode(&self, req: DecodeRequest<f32>) -> Result<DecodeHandle<f32>, SessionError> {
        match self {
            Backend::Single(att) => att.submit_decode(req),
            Backend::Sharded(fleet) => fleet.submit_decode(req),
        }
    }

    fn close_session(&self, session: SessionId) -> Result<(), SessionError> {
        match self {
            Backend::Single(att) => att.close_session(session),
            Backend::Sharded(fleet) => fleet.close_session(session),
        }
    }

    /// Fleet rollup of the live counters (see [`ServeStats::absorb`]
    /// for the per-field fold rules).
    fn stats_snapshot(&self) -> ServeStats {
        match self {
            Backend::Single(att) => att.stats_snapshot(),
            Backend::Sharded(fleet) => {
                let mut folded = ServeStats::default();
                for shard in fleet.stats_snapshot() {
                    folded.absorb(&shard);
                }
                folded
            }
        }
    }

    /// Live queue depths, summed across shards (prefill buckets merge
    /// by shape key).
    fn queue_depths(&self) -> QueueDepths {
        match self {
            Backend::Single(att) => att.queue_depths(),
            Backend::Sharded(fleet) => {
                let mut decode = 0usize;
                let mut prefill: Vec<(ShapeKey, usize)> = Vec::new();
                for depths in fleet.queue_depths() {
                    decode += depths.decode;
                    for (key, depth) in depths.prefill {
                        match prefill.iter_mut().find(|(k, _)| *k == key) {
                            Some((_, have)) => *have += depth,
                            None => prefill.push((key, depth)),
                        }
                    }
                }
                QueueDepths { prefill, decode }
            }
        }
    }

    /// Per-shard counters and queue depths (None for a single engine).
    fn per_shard(&self) -> Option<(Vec<ServeStats>, Vec<QueueDepths>)> {
        match self {
            Backend::Single(_) => None,
            Backend::Sharded(fleet) => Some((fleet.stats_snapshot(), fleet.queue_depths())),
        }
    }

    /// Drain every engine and return the folded lifetime counters.
    fn shutdown(self) -> ServeStats {
        match self {
            Backend::Single(att) => att.shutdown(),
            Backend::Sharded(fleet) => {
                let mut folded = ServeStats::default();
                for shard in fleet.shutdown() {
                    folded.absorb(&shard);
                }
                folded
            }
        }
    }

    #[cfg(test)]
    fn poison_registry_for_test(&self) {
        match self {
            Backend::Single(att) => att.poison_registry_for_test(),
            Backend::Sharded(fleet) => fleet.shard(0).poison_registry_for_test(),
        }
    }
}

/// State shared between the acceptor, the connection handlers, and the
/// drain path.
struct Shared {
    att: Backend,
    config: HttpConfig,
    draining: AtomicBool,
    active: AtomicUsize,
    /// Live connections by id (a `try_clone` of each handler's socket),
    /// so drain can force-close stragglers from outside their threads.
    conns: Mutex<HashMap<u64, TcpStream>>,
    accepted: AtomicU64,
    shed: AtomicU64,
    parse_rejects: AtomicU64,
    force_closed: AtomicU64,
}

impl Shared {
    fn lock_conns(&self) -> std::sync::MutexGuard<'_, HashMap<u64, TcpStream>> {
        match self.conns.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

struct Inner {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

/// The serving front end: a loopback TCP listener, an acceptor thread,
/// and one bounded handler thread per live connection, all over one
/// [`AttentionServer`].
///
/// ```no_run
/// use dfss_serve::http::{HttpConfig, HttpServer};
/// use dfss_serve::{AttentionServer, BatchPolicy};
/// use dfss_core::full::FullAttention;
/// use std::{sync::Arc, time::Duration};
///
/// let att = AttentionServer::<f32>::start(
///     Arc::new(FullAttention),
///     BatchPolicy::batched(8, Duration::from_millis(1)),
/// );
/// let server = HttpServer::bind(att, HttpConfig::default()).unwrap();
/// println!("serving on {}", server.url());
/// // ... curl http://127.0.0.1:PORT/healthz ...
/// let stats = server.shutdown();
/// assert_eq!(stats.kv_pages_allocated, stats.kv_pages_freed);
/// ```
pub struct HttpServer {
    inner: Option<Inner>,
}

impl HttpServer {
    /// Bind a loopback listener and start accepting. The
    /// [`AttentionServer`] may carry any policy, KV budget, or
    /// [`crate::FaultPlan`] — the front door inherits all of its typed
    /// semantics.
    pub fn bind(att: AttentionServer<f32>, config: HttpConfig) -> std::io::Result<HttpServer> {
        HttpServer::bind_backend(Backend::Single(att), config)
    }

    /// [`bind`](Self::bind) over a sharded fleet: the same routes, the
    /// same typed errors and drain semantics, with requests fanned out
    /// by the [`ShardedServer`]'s routing policy (session-pinned
    /// decode, least-loaded + work-stolen prefill). `GET /metrics`
    /// reports the fleet rollup plus one labelled gauge set per shard
    /// (`dfss_shard_*{shard="i"}`), and [`shutdown`](Self::shutdown)
    /// drains every shard before returning the folded counters.
    pub fn bind_sharded(
        fleet: ShardedServer<f32>,
        config: HttpConfig,
    ) -> std::io::Result<HttpServer> {
        HttpServer::bind_backend(Backend::Sharded(fleet), config)
    }

    fn bind_backend(att: Backend, config: HttpConfig) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(("127.0.0.1", config.port))?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            att,
            config,
            draining: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            conns: Mutex::new(HashMap::new()),
            accepted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            parse_rejects: AtomicU64::new(0),
            force_closed: AtomicU64::new(0),
        });
        let handlers = Arc::new(Mutex::new(Vec::new()));
        let acceptor_shared = Arc::clone(&shared);
        let acceptor_handlers = Arc::clone(&handlers);
        let acceptor = std::thread::Builder::new()
            .name("dfss-http-acceptor".into())
            .spawn(move || accept_loop(listener, acceptor_shared, acceptor_handlers))
            .expect("spawn acceptor thread");
        Ok(HttpServer {
            inner: Some(Inner {
                addr,
                shared,
                acceptor,
                handlers,
            }),
        })
    }

    /// The bound loopback address.
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.as_ref().expect("server is live").addr
    }

    /// The server's base URL (`http://127.0.0.1:PORT`).
    pub fn url(&self) -> String {
        format!("http://{}", self.local_addr())
    }

    /// Graceful drain: stop accepting, flip `readyz` to `503`
    /// immediately, serve in-flight connections until
    /// [`HttpConfig::drain_deadline`], force-close stragglers, then
    /// drain the batcher. Returns the reconciled lifetime counters with
    /// the HTTP-layer counters folded in.
    pub fn shutdown(mut self) -> ServeStats {
        let inner = self.inner.take().expect("server is live");
        drain(inner)
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let _ = drain(inner);
        }
    }
}

/// The drain state machine: `serving → draining → closed`.
fn drain(inner: Inner) -> ServeStats {
    let Inner {
        addr,
        shared,
        acceptor,
        handlers,
    } = inner;
    // 1. `readyz` flips the moment drain begins.
    shared.draining.store(true, Ordering::SeqCst);
    // 2. Wake the blocking accept so the acceptor observes the flag and
    //    exits; late clients get their connections dropped, not served.
    let _ = TcpStream::connect(addr);
    let _ = acceptor.join();
    // 3. Bounded wait for in-flight connections to finish cleanly.
    let deadline = Instant::now() + shared.config.drain_deadline;
    while shared.active.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    // 4. Force-close stragglers: shutting the socket down fails their
    //    blocked reads/writes immediately, so their handlers exit.
    {
        let conns = shared.lock_conns();
        shared
            .force_closed
            .fetch_add(conns.len() as u64, Ordering::SeqCst);
        for stream in conns.values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
    let joinable: Vec<JoinHandle<()>> = match handlers.lock() {
        Ok(mut guard) => guard.drain(..).collect(),
        Err(poisoned) => poisoned.into_inner().drain(..).collect(),
    };
    for h in joinable {
        let _ = h.join();
    }
    let accepted = shared.accepted.load(Ordering::SeqCst);
    let conn_sheds = shared.shed.load(Ordering::SeqCst);
    let parse_rejects = shared.parse_rejects.load(Ordering::SeqCst);
    let force_closed = shared.force_closed.load(Ordering::SeqCst);
    // 5. Every thread holding the state is joined, so this is the last
    //    reference; drain the batcher and fold in the wire counters.
    let mut stats = match Arc::try_unwrap(shared) {
        Ok(shared) => shared.att.shutdown(),
        // Unreachable once every thread is joined, but stay typed: the
        // batcher still drains on Drop, and the counters still report.
        Err(arc) => arc.att.stats_snapshot(),
    };
    stats.http_connections_accepted = accepted;
    stats.http_connections_shed = conn_sheds;
    stats.http_parse_rejects = parse_rejects;
    stats.drain_force_closed = force_closed;
    stats
}

/// The acceptor: cap enforcement and handler spawning. Never does
/// per-request work, so a slow or hostile connection cannot delay the
/// next accept.
fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut next_conn: u64 = 0;
    for stream in listener.incoming() {
        if shared.draining.load(Ordering::SeqCst) {
            // The drain wake-up (or a late client): stop accepting.
            break;
        }
        let Ok(stream) = stream else { continue };
        shared.accepted.fetch_add(1, Ordering::SeqCst);
        if shared.active.load(Ordering::SeqCst) >= shared.config.max_connections {
            shared.shed.fetch_add(1, Ordering::SeqCst);
            shed_connection(stream, &shared.config);
            continue;
        }
        // Sweep finished handler threads so the join list stays
        // proportional to live connections, not lifetime accepts.
        if let Ok(mut guard) = handlers.lock() {
            guard.retain(|h| !h.is_finished());
        }
        let id = next_conn;
        next_conn += 1;
        if let Ok(clone) = stream.try_clone() {
            shared.lock_conns().insert(id, clone);
        }
        shared.active.fetch_add(1, Ordering::SeqCst);
        let conn_shared = Arc::clone(&shared);
        let spawned = std::thread::Builder::new()
            .name("dfss-http-conn".into())
            .spawn(move || {
                handle_connection(&conn_shared, stream);
                conn_shared.lock_conns().remove(&id);
                conn_shared.active.fetch_sub(1, Ordering::SeqCst);
            });
        match spawned {
            Ok(handle) => {
                if let Ok(mut guard) = handlers.lock() {
                    guard.push(handle);
                }
            }
            Err(_) => {
                // Spawn failure (fd/thread exhaustion): shed typed
                // rather than dropping the connection silently.
                shared.lock_conns().remove(&id);
                shared.active.fetch_sub(1, Ordering::SeqCst);
                shared.shed.fetch_add(1, Ordering::SeqCst);
            }
        }
    }
}

/// Refuse one over-cap connection with `503 Retry-After` and close.
fn shed_connection(mut stream: TcpStream, config: &HttpConfig) {
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let body = Json::obj(vec![
        ("error", Json::Str("connection cap reached".into())),
        ("kind", Json::Str("Overloaded".into())),
    ])
    .render();
    let _ = wire::write_response(
        &mut stream,
        503,
        "application/json",
        body.as_bytes(),
        Some(Duration::from_secs(1)),
        true,
    );
}

/// One connection's request loop: bounded reads, typed failures,
/// keep-alive until the client closes, an error ends the exchange, or
/// drain begins.
fn handle_connection(shared: &Shared, stream: TcpStream) {
    let config = &shared.config;
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = RequestReader::new(read_half);
    let mut writer = stream;
    loop {
        match reader.read_request(&config.limits) {
            Ok(None) => break, // clean close on a request boundary
            Ok(Some(req)) => {
                let close = req.wants_close() || shared.draining.load(Ordering::SeqCst);
                // A routing panic must stay inside this connection:
                // answer a typed 500 and keep the acceptor serving.
                let reply = catch_unwind(AssertUnwindSafe(|| route(shared, &req)))
                    .unwrap_or_else(|_| Reply::error(500, "HandlerPanicked", "handler panicked"));
                if write_reply(&mut writer, &reply, close).is_err() || close {
                    break;
                }
            }
            Err(WireError::TimedOut) => {
                let reply = Reply::error(408, "RequestTimeout", "read deadline expired");
                let _ = write_reply(&mut writer, &reply, true);
                break;
            }
            Err(WireError::TooLarge { what, limit }) => {
                let reply = Reply::error(
                    413,
                    "PayloadTooLarge",
                    &format!("{what} exceeds the {limit}-byte limit"),
                );
                let _ = write_reply(&mut writer, &reply, true);
                break;
            }
            Err(WireError::Malformed(why)) => {
                shared.parse_rejects.fetch_add(1, Ordering::SeqCst);
                let reply = Reply::error(400, "Malformed", &why);
                let _ = write_reply(&mut writer, &reply, true);
                break;
            }
            // Peer is gone mid-request: nobody to answer.
            Err(WireError::ConnectionClosed) | Err(WireError::Io(_)) => break,
        }
    }
}

/// One routed response, before serialisation.
struct Reply {
    status: u16,
    content_type: &'static str,
    body: Vec<u8>,
    retry_after: Option<Duration>,
}

impl Reply {
    fn json(status: u16, body: Json) -> Reply {
        Reply {
            status,
            content_type: "application/json",
            body: body.render().into_bytes(),
            retry_after: None,
        }
    }

    fn error(status: u16, kind: &str, message: &str) -> Reply {
        let mut reply = Reply::json(
            status,
            Json::obj(vec![
                ("error", Json::Str(message.into())),
                ("kind", Json::Str(kind.into())),
            ]),
        );
        if status == 503 {
            reply.retry_after = Some(Duration::from_secs(1));
        }
        reply
    }

    fn text(status: u16, body: String) -> Reply {
        Reply {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into_bytes(),
            retry_after: None,
        }
    }
}

fn write_reply(w: &mut impl Write, reply: &Reply, close: bool) -> std::io::Result<()> {
    wire::write_response(
        w,
        reply.status,
        reply.content_type,
        &reply.body,
        reply.retry_after,
        close,
    )
}

/// Status code for every admission error — one exhaustive `match`, so a
/// new [`RequestError`] variant is a compile error here, not a silent
/// `500`.
pub fn status_for_request(e: &RequestError) -> u16 {
    match e {
        RequestError::KShapeMismatch { .. } => 400,
        RequestError::VRowsMismatch { .. } => 400,
        RequestError::EmptyRequest => 400,
        RequestError::Unsupported { .. } => 400,
        RequestError::DecodeShapeMismatch { .. } => 400,
    }
}

/// Status code for every prefill/decode serving error (exhaustive).
pub fn status_for_serve(e: &ServeError) -> u16 {
    match e {
        ServeError::ServerGone => 503,
        ServeError::Rejected(inner) => status_for_request(inner),
        ServeError::BatchPanicked { .. } => 500,
        ServeError::DeadlineExceeded { .. } => 504,
        ServeError::Overloaded { .. } => 503,
        ServeError::WaitTimeout => 504,
    }
}

/// Status code for every session-operation error (exhaustive).
pub fn status_for_session(e: &SessionError) -> u16 {
    match e {
        SessionError::UnknownSession(_) => 404,
        SessionError::Rejected(inner) => status_for_request(inner),
        SessionError::KvBudgetExhausted { .. } => 503,
        SessionError::Evicted(_) => 410,
        SessionError::Overloaded { .. } => 503,
    }
}

/// Short variant name for error bodies, exhaustive like the status maps.
fn kind_for_serve(e: &ServeError) -> &'static str {
    match e {
        ServeError::ServerGone => "ServerGone",
        ServeError::Rejected(_) => "Rejected",
        ServeError::BatchPanicked { .. } => "BatchPanicked",
        ServeError::DeadlineExceeded { .. } => "DeadlineExceeded",
        ServeError::Overloaded { .. } => "Overloaded",
        ServeError::WaitTimeout => "WaitTimeout",
    }
}

fn kind_for_session(e: &SessionError) -> &'static str {
    match e {
        SessionError::UnknownSession(_) => "UnknownSession",
        SessionError::Rejected(_) => "Rejected",
        SessionError::KvBudgetExhausted { .. } => "KvBudgetExhausted",
        SessionError::Evicted(_) => "Evicted",
        SessionError::Overloaded { .. } => "Overloaded",
    }
}

fn reply_serve_error(e: &ServeError) -> Reply {
    Reply::error(status_for_serve(e), kind_for_serve(e), &e.to_string())
}

fn reply_session_error(e: &SessionError) -> Reply {
    Reply::error(status_for_session(e), kind_for_session(e), &e.to_string())
}

/// Dispatch one parsed request to its endpoint.
fn route(shared: &Shared, req: &Request) -> Reply {
    let path = req.target.split('?').next().unwrap_or("");
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => {
            Reply::json(200, Json::obj(vec![("status", Json::Str("ok".into()))]))
        }
        ("GET", ["readyz"]) => {
            if shared.draining.load(Ordering::SeqCst) {
                Reply::error(503, "Draining", "shutdown in progress")
            } else {
                Reply::json(200, Json::obj(vec![("status", Json::Str("ready".into()))]))
            }
        }
        ("GET", ["metrics"]) => Reply::text(200, metrics_text(shared)),
        ("POST", ["v1", "prefill"]) => prefill(shared, &req.body),
        ("POST", ["v1", "sessions"]) => open_session(shared, &req.body),
        ("POST", ["v1", "sessions", id, "append"]) => match parse_session_id(id) {
            Ok(session) => append(shared, session, &req.body),
            Err(reply) => reply,
        },
        ("POST", ["v1", "sessions", id, "decode"]) => match parse_session_id(id) {
            Ok(session) => decode(shared, session, &req.body),
            Err(reply) => reply,
        },
        ("DELETE", ["v1", "sessions", id]) => match parse_session_id(id) {
            Ok(session) => match shared.att.close_session(session) {
                Ok(()) => Reply::json(200, Json::obj(vec![("closed", Json::Bool(true))])),
                Err(e) => reply_session_error(&e),
            },
            Err(reply) => reply,
        },
        ("GET" | "POST" | "DELETE", _) => Reply::error(404, "NoRoute", "no such endpoint"),
        _ => Reply::error(405, "MethodNotAllowed", "unsupported method"),
    }
}

fn parse_session_id(raw: &str) -> Result<SessionId, Reply> {
    raw.parse::<u64>()
        .map(SessionId)
        .map_err(|_| Reply::error(400, "Malformed", &format!("bad session id {raw:?}")))
}

/// Parse a JSON body, mapping failures to a typed `400`.
fn parse_body(body: &[u8]) -> Result<Json, Reply> {
    Json::parse(body)
        .map_err(|why| Reply::error(400, "Malformed", &format!("bad JSON body: {why}")))
}

/// Extract an `n × ?` matrix field from a body (array of equal-width
/// float rows).
fn matrix_field(doc: &Json, field: &str) -> Result<Matrix<f32>, Reply> {
    let rows = doc.get(field).and_then(Json::as_arr).ok_or_else(|| {
        Reply::error(400, "Malformed", &format!("missing matrix field {field:?}"))
    })?;
    let parsed: Option<Vec<Vec<f32>>> = rows.iter().map(Json::to_f32_row).collect();
    let parsed = parsed.ok_or_else(|| {
        Reply::error(400, "Malformed", &format!("{field:?} rows must be numbers"))
    })?;
    let n = parsed.len();
    let d = parsed.first().map_or(0, Vec::len);
    if n == 0 || d == 0 || parsed.iter().any(|r| r.len() != d) {
        return Err(Reply::error(
            400,
            "Malformed",
            &format!("{field:?} must be a non-empty rectangle of numbers"),
        ));
    }
    Ok(Matrix::from_vec(
        n,
        d,
        parsed.into_iter().flatten().collect(),
    ))
}

fn row_field(doc: &Json, field: &str) -> Result<Vec<f32>, Reply> {
    doc.get(field)
        .and_then(Json::to_f32_row)
        .ok_or_else(|| Reply::error(400, "Malformed", &format!("missing row field {field:?}")))
}

fn usize_field(doc: &Json, field: &str) -> Option<usize> {
    let x = doc.get(field)?.as_f64()?;
    if x.fract() == 0.0 && x >= 0.0 && x < u32::MAX as f64 {
        Some(x as usize)
    } else {
        None
    }
}

fn matrix_json(m: &Matrix<f32>) -> Json {
    Json::Arr(
        (0..m.rows())
            .map(|i| Json::f32_row(&m.as_slice()[i * m.cols()..(i + 1) * m.cols()]))
            .collect(),
    )
}

/// `POST /v1/prefill` — body `{"q": [[..]], "k": [[..]], "v": [[..]]}`.
fn prefill(shared: &Shared, body: &[u8]) -> Reply {
    let doc = match parse_body(body) {
        Ok(doc) => doc,
        Err(reply) => return reply,
    };
    let (q, k, v) = match (
        matrix_field(&doc, "q"),
        matrix_field(&doc, "k"),
        matrix_field(&doc, "v"),
    ) {
        (Ok(q), Ok(k), Ok(v)) => (q, k, v),
        (Err(reply), _, _) | (_, Err(reply), _) | (_, _, Err(reply)) => return reply,
    };
    let handle = match shared.att.submit(q, k, v) {
        Ok(handle) => handle,
        Err(e) => return reply_serve_error(&e),
    };
    match handle.wait_timeout(shared.config.response_timeout) {
        Ok(served) => Reply::json(
            200,
            Json::obj(vec![
                ("output", matrix_json(&served.output)),
                ("ticket", Json::Num(served.ticket.0 as f64)),
                ("batch_size", Json::Num(served.batch_size as f64)),
                (
                    "queue_wait_us",
                    Json::Num(served.queue_wait.as_micros() as f64),
                ),
                ("sim_latency_s", Json::Num(served.sim_latency_s)),
            ]),
        ),
        Err(e) => reply_serve_error(&e),
    }
}

/// `POST /v1/sessions` — body `{"d": 16}` or `{"d": 16, "d_v": 32}`.
fn open_session(shared: &Shared, body: &[u8]) -> Reply {
    let doc = match parse_body(body) {
        Ok(doc) => doc,
        Err(reply) => return reply,
    };
    let Some(d) = usize_field(&doc, "d") else {
        return Reply::error(400, "Malformed", "missing integer field \"d\"");
    };
    let d_v = match doc.get("d_v") {
        None => d,
        Some(_) => match usize_field(&doc, "d_v") {
            Some(d_v) => d_v,
            None => return Reply::error(400, "Malformed", "\"d_v\" must be an integer"),
        },
    };
    match shared.att.open_session(d, d_v) {
        Ok(session) => Reply::json(
            200,
            Json::obj(vec![("session", Json::Num(session.0 as f64))]),
        ),
        Err(e) => reply_session_error(&e),
    }
}

/// `POST /v1/sessions/{id}/append` — body `{"k_row": [..], "v_row": [..]}`
/// for one position, or `{"k": [[..]], "v": [[..]]}` for a block.
fn append(shared: &Shared, session: SessionId, body: &[u8]) -> Reply {
    let doc = match parse_body(body) {
        Ok(doc) => doc,
        Err(reply) => return reply,
    };
    if doc.get("k").is_some() || doc.get("v").is_some() {
        let (k, v) = match (matrix_field(&doc, "k"), matrix_field(&doc, "v")) {
            (Ok(k), Ok(v)) => (k, v),
            (Err(reply), _) | (_, Err(reply)) => return reply,
        };
        let rows = k.rows();
        return match shared.att.extend(session, k, v) {
            Ok(()) => Reply::json(200, Json::obj(vec![("rows", Json::Num(rows as f64))])),
            Err(e) => reply_session_error(&e),
        };
    }
    let (k_row, v_row) = match (row_field(&doc, "k_row"), row_field(&doc, "v_row")) {
        (Ok(k), Ok(v)) => (k, v),
        (Err(reply), _) | (_, Err(reply)) => return reply,
    };
    match shared.att.append(session, k_row, v_row) {
        Ok(()) => Reply::json(200, Json::obj(vec![("rows", Json::Num(1.0))])),
        Err(e) => reply_session_error(&e),
    }
}

/// `POST /v1/sessions/{id}/decode` — body `{"q_row": [..]}`.
fn decode(shared: &Shared, session: SessionId, body: &[u8]) -> Reply {
    let doc = match parse_body(body) {
        Ok(doc) => doc,
        Err(reply) => return reply,
    };
    let q_row = match row_field(&doc, "q_row") {
        Ok(row) => row,
        Err(reply) => return reply,
    };
    let handle = match shared.att.submit_decode(DecodeRequest { session, q_row }) {
        Ok(handle) => handle,
        Err(e) => return reply_session_error(&e),
    };
    match handle.wait_timeout(shared.config.response_timeout) {
        Ok(served) => Reply::json(
            200,
            Json::obj(vec![
                ("output", Json::f32_row(served.output.as_slice())),
                ("cached_len", Json::Num(served.cached_len as f64)),
                ("batch_size", Json::Num(served.batch_size as f64)),
                ("ticket", Json::Num(served.ticket.0 as f64)),
            ]),
        ),
        Err(e) => reply_serve_error(&e),
    }
}

/// `GET /metrics` — every [`ServeStats`] counter as a
/// `dfss_<name> <value>` line, plus the live per-bucket queue depths.
/// The destructuring is deliberately exhaustive: adding a `ServeStats`
/// field without exporting it is a compile error.
fn metrics_text(shared: &Shared) -> String {
    let stats = shared.att.stats_snapshot();
    let ServeStats {
        served,
        rejected,
        batches,
        max_batch,
        decode_steps,
        decode_batches,
        max_decode_batch,
        sessions_opened,
        sessions_closed,
        kv_rows_appended,
        kv_bytes_peak,
        kv_pages_allocated,
        kv_pages_freed,
        evictions,
        admission_rejections,
        batch_panics,
        deadline_sheds,
        overload_sheds,
        total_sim_latency_s,
        // The HTTP counters in the snapshot are zero (they live here,
        // not in the batcher) — exported from the shared atomics below.
        http_connections_accepted: _,
        http_connections_shed: _,
        http_parse_rejects: _,
        drain_force_closed: _,
        sched_iterations,
        prefill_chunks,
        chunks_stolen,
    } = stats;
    let mut out = String::new();
    let mut line = |name: &str, value: f64| {
        out.push_str("dfss_");
        out.push_str(name);
        out.push(' ');
        if value.fract() == 0.0 && value.abs() < 1e15 {
            out.push_str(&format!("{}\n", value as i64));
        } else {
            out.push_str(&format!("{value}\n"));
        }
    };
    line("served", served as f64);
    line("rejected", rejected as f64);
    line("batches", batches as f64);
    line("max_batch", max_batch as f64);
    line("decode_steps", decode_steps as f64);
    line("decode_batches", decode_batches as f64);
    line("max_decode_batch", max_decode_batch as f64);
    line("sessions_opened", sessions_opened as f64);
    line("sessions_closed", sessions_closed as f64);
    line("kv_rows_appended", kv_rows_appended as f64);
    line("kv_bytes_peak", kv_bytes_peak as f64);
    line("kv_pages_allocated", kv_pages_allocated as f64);
    line("kv_pages_freed", kv_pages_freed as f64);
    line("evictions", evictions as f64);
    line("admission_rejections", admission_rejections as f64);
    line("batch_panics", batch_panics as f64);
    line("deadline_sheds", deadline_sheds as f64);
    line("overload_sheds", overload_sheds as f64);
    line("total_sim_latency_s", total_sim_latency_s);
    line("sched_iterations", sched_iterations as f64);
    line("prefill_chunks", prefill_chunks as f64);
    line("chunks_stolen", chunks_stolen as f64);
    line(
        "http_connections_accepted",
        shared.accepted.load(Ordering::SeqCst) as f64,
    );
    line(
        "http_connections_shed",
        shared.shed.load(Ordering::SeqCst) as f64,
    );
    line(
        "http_parse_rejects",
        shared.parse_rejects.load(Ordering::SeqCst) as f64,
    );
    line(
        "drain_force_closed",
        shared.force_closed.load(Ordering::SeqCst) as f64,
    );
    line(
        "http_connections_active",
        shared.active.load(Ordering::SeqCst) as f64,
    );
    let depths = shared.att.queue_depths();
    line("queue_depth_decode", depths.decode as f64);
    for (key, depth) in depths.prefill {
        out.push_str(&format!(
            "dfss_queue_depth_prefill{{n=\"{}\",d=\"{}\"}} {}\n",
            key.n, key.d, depth
        ));
    }
    // Sharded backend: the rollup above, plus one labelled gauge set
    // per shard so dashboards can see routing balance, steal traffic,
    // and per-pool KV reconciliation directly.
    if let Some((per_stats, per_depths)) = shared.att.per_shard() {
        for (i, s) in per_stats.iter().enumerate() {
            let mut gauge = |name: &str, value: f64| {
                if value.fract() == 0.0 && value.abs() < 1e15 {
                    out.push_str(&format!(
                        "dfss_shard_{name}{{shard=\"{i}\"}} {}\n",
                        value as i64
                    ));
                } else {
                    out.push_str(&format!("dfss_shard_{name}{{shard=\"{i}\"}} {value}\n"));
                }
            };
            gauge("served", s.served as f64);
            gauge("decode_steps", s.decode_steps as f64);
            gauge("sessions_opened", s.sessions_opened as f64);
            gauge("sessions_closed", s.sessions_closed as f64);
            gauge("kv_bytes_peak", s.kv_bytes_peak as f64);
            gauge("kv_pages_allocated", s.kv_pages_allocated as f64);
            gauge("kv_pages_freed", s.kv_pages_freed as f64);
            gauge("evictions", s.evictions as f64);
            gauge("admission_rejections", s.admission_rejections as f64);
            gauge("batch_panics", s.batch_panics as f64);
            gauge("deadline_sheds", s.deadline_sheds as f64);
            gauge("sched_iterations", s.sched_iterations as f64);
            gauge("prefill_chunks", s.prefill_chunks as f64);
            gauge("chunks_stolen", s.chunks_stolen as f64);
            gauge("total_sim_latency_s", s.total_sim_latency_s);
        }
        for (i, d) in per_depths.iter().enumerate() {
            out.push_str(&format!(
                "dfss_shard_queue_depth_decode{{shard=\"{i}\"}} {}\n",
                d.decode
            ));
        }
    }
    // Which SIMD microkernel backend this process dispatched to (pinned
    // once at pool startup; `DFSS_SIMD` overrides — see dfss-kernels).
    out.push_str(&format!(
        "dfss_simd_backend{{name=\"{}\"}} 1\n",
        dfss_kernels::simd::active().name()
    ));
    out
}

/// Why an [`HttpClient`] call failed. `Status` carries the typed
/// non-2xx answer (the transient-classification input for
/// [`crate::retry::with_backoff`]); `Transport` is a socket-level
/// failure with no response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HttpClientError {
    /// The server answered with a non-2xx status.
    Status {
        /// The HTTP status code.
        status: u16,
        /// The `Retry-After` header in seconds, if the server sent one.
        retry_after: Option<u64>,
        /// The response body (usually a JSON error object).
        body: String,
    },
    /// The request never completed: connect/read/write failure, or an
    /// unparseable response.
    Transport(String),
}

impl std::fmt::Display for HttpClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpClientError::Status { status, body, .. } => {
                write!(f, "HTTP {status}: {body}")
            }
            HttpClientError::Transport(why) => write!(f, "transport failure: {why}"),
        }
    }
}

impl std::error::Error for HttpClientError {}

/// A minimal blocking HTTP/1.1 client (keep-alive, bounded reads) for
/// loopback testing, the chaos harness, and the bench load generator.
///
/// Non-2xx responses surface as [`HttpClientError::Status`], which
/// [`crate::retry::Transient`] classifies: `503` (shed / back-pressure,
/// usually with `Retry-After`) and `408` (wire deadline) are worth
/// retrying, everything else is not.
pub struct HttpClient {
    addr: SocketAddr,
    limits: WireLimits,
    timeout: Duration,
    conn: Option<(RequestReader<TcpStream>, TcpStream)>,
}

impl HttpClient {
    /// A client for one server address. Connects lazily on the first
    /// request; reconnects transparently after `Connection: close`.
    pub fn connect(addr: SocketAddr) -> HttpClient {
        HttpClient {
            addr,
            limits: WireLimits::default(),
            timeout: Duration::from_secs(10),
            conn: None,
        }
    }

    /// Override the per-call read/write deadline (default 10s).
    pub fn with_timeout(mut self, timeout: Duration) -> HttpClient {
        self.timeout = timeout;
        self
    }

    fn ensure_conn(
        &mut self,
    ) -> Result<&mut (RequestReader<TcpStream>, TcpStream), HttpClientError> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(self.addr)
                .map_err(|e| HttpClientError::Transport(e.to_string()))?;
            let _ = stream.set_read_timeout(Some(self.timeout));
            let _ = stream.set_write_timeout(Some(self.timeout));
            let _ = stream.set_nodelay(true);
            let read_half = stream
                .try_clone()
                .map_err(|e| HttpClientError::Transport(e.to_string()))?;
            self.conn = Some((RequestReader::new(read_half), stream));
        }
        Ok(self.conn.as_mut().expect("just ensured"))
    }

    /// Send one request and read the raw response, whatever its status.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> Result<wire::Response, HttpClientError> {
        let rendered = body.map(Json::render);
        let payload = rendered.as_deref().unwrap_or("").as_bytes();
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: dfss\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n",
            payload.len()
        );
        let limits = self.limits;
        let (reader, writer) = self.ensure_conn()?;
        let sent = writer
            .write_all(head.as_bytes())
            .and_then(|()| writer.write_all(payload))
            .and_then(|()| writer.flush());
        if let Err(e) = sent {
            self.conn = None;
            return Err(HttpClientError::Transport(e.to_string()));
        }
        match wire::read_response(reader, &limits) {
            Ok(resp) => {
                if resp
                    .header("connection")
                    .is_some_and(|v| v.eq_ignore_ascii_case("close"))
                {
                    self.conn = None;
                }
                Ok(resp)
            }
            Err(e) => {
                self.conn = None;
                Err(HttpClientError::Transport(e.to_string()))
            }
        }
    }

    /// Send one request and parse the JSON body of a 2xx response.
    /// Non-2xx statuses come back as [`HttpClientError::Status`] so
    /// callers can wrap this in [`crate::retry::with_backoff`].
    pub fn call(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> Result<Json, HttpClientError> {
        let resp = self.request(method, path, body)?;
        if (200..300).contains(&resp.status) {
            Json::parse(&resp.body)
                .map_err(|why| HttpClientError::Transport(format!("bad response body: {why}")))
        } else {
            Err(HttpClientError::Status {
                status: resp.status,
                retry_after: resp.retry_after(),
                body: String::from_utf8_lossy(&resp.body).into_owned(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retry::{with_backoff, Backoff};
    use crate::{BatchPolicy, FaultKind, FaultPlan, KvConfig};
    use dfss_core::dfss::DfssAttention;
    use dfss_core::full::FullAttention;
    use dfss_core::mechanism::Attention;
    use dfss_kernels::GpuCtx;
    use dfss_nmsparse::NmPattern;
    use dfss_tensor::Rng;
    use std::io::Read;

    fn quick_config() -> HttpConfig {
        HttpConfig {
            read_timeout: Duration::from_millis(300),
            write_timeout: Duration::from_millis(300),
            drain_deadline: Duration::from_millis(500),
            ..HttpConfig::default()
        }
    }

    fn start_http(policy: BatchPolicy) -> HttpServer {
        let mech: Arc<dyn Attention<f32> + Send + Sync> =
            Arc::new(DfssAttention::new(NmPattern::P1_2));
        let att = AttentionServer::start(mech, policy);
        HttpServer::bind(att, quick_config()).expect("bind loopback")
    }

    fn matrix_body(m: &Matrix<f32>) -> Json {
        matrix_json(m)
    }

    #[test]
    fn prefill_over_http_is_bit_identical_to_solo_forward() {
        let mech: Arc<dyn Attention<f32> + Send + Sync> =
            Arc::new(DfssAttention::new(NmPattern::P1_2));
        let server = start_http(BatchPolicy::batched(4, Duration::from_millis(1)));
        let mut client = HttpClient::connect(server.local_addr());
        let mut rng = Rng::new(23);
        let q = Matrix::random_normal(32, 16, 0.0, 1.0, &mut rng);
        let k = Matrix::random_normal(32, 16, 0.0, 1.0, &mut rng);
        let v = Matrix::random_normal(32, 16, 0.0, 1.0, &mut rng);
        let body = Json::obj(vec![
            ("q", matrix_body(&q)),
            ("k", matrix_body(&k)),
            ("v", matrix_body(&v)),
        ]);
        let out = client
            .call("POST", "/v1/prefill", Some(&body))
            .expect("served");
        let rows = out.get("output").and_then(Json::as_arr).expect("output");
        let got: Vec<f32> = rows
            .iter()
            .flat_map(|r| r.to_f32_row().expect("row"))
            .collect();
        let mut sctx = GpuCtx::a100();
        let want = mech.forward(&mut sctx, &q, &k, &v);
        assert_eq!(got.len(), want.as_slice().len());
        for (a, b) in got.iter().zip(want.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits(), "output diverged through HTTP");
        }
        let stats = server.shutdown();
        assert_eq!(stats.served, 1);
        assert_eq!(stats.http_connections_accepted, 1);
        assert_eq!(stats.http_parse_rejects, 0);
    }

    #[test]
    fn session_lifecycle_and_decode_over_http() {
        let server = start_http(BatchPolicy::per_request());
        let mut client = HttpClient::connect(server.local_addr());
        let opened = client
            .call(
                "POST",
                "/v1/sessions",
                Some(&Json::obj(vec![("d", Json::Num(8.0))])),
            )
            .expect("open");
        let sid = opened.get("session").unwrap().as_f64().unwrap() as u64;
        let mut rng = Rng::new(29);
        let k = Matrix::<f32>::random_normal(6, 8, 0.0, 1.0, &mut rng);
        let v = Matrix::<f32>::random_normal(6, 8, 0.0, 1.0, &mut rng);
        let extended = client
            .call(
                "POST",
                &format!("/v1/sessions/{sid}/append"),
                Some(&Json::obj(vec![
                    ("k", matrix_body(&k)),
                    ("v", matrix_body(&v)),
                ])),
            )
            .expect("extend");
        assert_eq!(extended.get("rows").unwrap().as_f64(), Some(6.0));
        let q_row: Vec<f32> = (0..8).map(|i| i as f32 * 0.1).collect();
        let decoded = client
            .call(
                "POST",
                &format!("/v1/sessions/{sid}/decode"),
                Some(&Json::obj(vec![("q_row", Json::f32_row(&q_row))])),
            )
            .expect("decode");
        assert_eq!(decoded.get("cached_len").unwrap().as_f64(), Some(6.0));
        let out = decoded.get("output").unwrap().to_f32_row().unwrap();
        assert_eq!(out.len(), 8);
        client
            .call("DELETE", &format!("/v1/sessions/{sid}"), None)
            .expect("close");
        // Typed errors end to end: the closed id is now a 404.
        let err = client
            .call("DELETE", &format!("/v1/sessions/{sid}"), None)
            .unwrap_err();
        assert!(matches!(err, HttpClientError::Status { status: 404, .. }));
        let stats = server.shutdown();
        assert_eq!(stats.decode_steps, 1);
        assert_eq!(stats.sessions_opened, 1);
        assert_eq!(stats.kv_pages_allocated, stats.kv_pages_freed);
    }

    #[test]
    fn unknown_routes_bad_ids_and_bad_bodies_are_typed() {
        let server = start_http(BatchPolicy::per_request());
        let mut client = HttpClient::connect(server.local_addr());
        for (method, path, body, want) in [
            ("GET", "/nope", None, 404),
            ("POST", "/v1/sessions/banana/decode", None, 400),
            ("PATCH", "/healthz", None, 405),
            (
                "POST",
                "/v1/prefill",
                Some(Json::Str("not an object".into())),
                400,
            ),
            (
                "POST",
                "/v1/sessions/999/decode",
                Some(Json::obj(vec![("q_row", Json::f32_row(&[0.0]))])),
                404,
            ),
        ] {
            let err = client.call(method, path, body.as_ref()).unwrap_err();
            match err {
                HttpClientError::Status { status, .. } => {
                    assert_eq!(status, want, "{method} {path}")
                }
                other => panic!("{method} {path}: expected status, got {other:?}"),
            }
        }
        // An unparseable prefill body is a 400, and the server keeps
        // serving valid traffic on the same connection.
        let health = client.call("GET", "/healthz", None).expect("healthz");
        assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
        let _ = server.shutdown();
    }

    #[test]
    fn garbage_bytes_get_400_and_count_as_parse_rejects() {
        let server = start_http(BatchPolicy::per_request());
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream
            .write_all(b"NOT HTTP AT ALL\x00\xff\r\n\r\n")
            .unwrap();
        let mut reader = RequestReader::new(stream.try_clone().unwrap());
        let resp = wire::read_response(&mut reader, &WireLimits::default()).expect("a response");
        assert_eq!(resp.status, 400);
        // The acceptor survived; metrics report the reject.
        let mut client = HttpClient::connect(addr);
        let metrics = client.request("GET", "/metrics", None).expect("metrics");
        let text = String::from_utf8(metrics.body).unwrap();
        assert!(
            text.contains("dfss_http_parse_rejects 1"),
            "metrics missing the parse reject:\n{text}"
        );
        let stats = server.shutdown();
        assert_eq!(stats.http_parse_rejects, 1);
        assert_eq!(stats.http_connections_accepted, 2);
    }

    #[test]
    fn slow_loris_gets_typed_408_not_a_hung_acceptor() {
        let server = start_http(BatchPolicy::per_request());
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        // Half a request line, then silence past the read deadline.
        stream.write_all(b"GET /heal").unwrap();
        let mut reader = RequestReader::new(stream.try_clone().unwrap());
        let resp = wire::read_response(&mut reader, &WireLimits::default()).expect("a response");
        assert_eq!(resp.status, 408);
        // The acceptor is still serving.
        let mut client = HttpClient::connect(addr);
        assert!(client.call("GET", "/healthz", None).is_ok());
        let _ = server.shutdown();
    }

    #[test]
    fn oversized_body_is_typed_413() {
        let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(FullAttention);
        let att = AttentionServer::start(mech, BatchPolicy::per_request());
        let config = HttpConfig {
            limits: WireLimits {
                max_body_bytes: 64,
                ..WireLimits::default()
            },
            ..quick_config()
        };
        let server = HttpServer::bind(att, config).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream
            .write_all(b"POST /v1/prefill HTTP/1.1\r\ncontent-length: 100000\r\n\r\n")
            .unwrap();
        let mut reader = RequestReader::new(stream.try_clone().unwrap());
        let resp = wire::read_response(&mut reader, &WireLimits::default()).expect("a response");
        assert_eq!(resp.status, 413);
        let _ = server.shutdown();
    }

    #[test]
    fn connection_cap_sheds_typed_503_with_retry_after() {
        let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(FullAttention);
        let att = AttentionServer::start(mech, BatchPolicy::per_request());
        let config = HttpConfig {
            max_connections: 1,
            ..quick_config()
        };
        let server = HttpServer::bind(att, config).unwrap();
        // One idle connection occupies the only slot...
        let _holder = TcpStream::connect(server.local_addr()).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        // ...so the next connection is shed before any bytes are read.
        let mut client = HttpClient::connect(server.local_addr());
        let resp = client.request("GET", "/healthz", None).expect("a response");
        assert_eq!(resp.status, 503);
        assert_eq!(resp.retry_after(), Some(1), "shed must carry Retry-After");
        let stats = server.shutdown();
        assert_eq!(stats.http_connections_shed, 1);
        assert_eq!(stats.http_connections_accepted, 2);
    }

    #[test]
    fn overload_shed_rides_the_wire_as_503_retry_after() {
        // Queue depth 1 with a slow-close policy: the second submission
        // is shed at admission and the wire answer is a typed 503.
        let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(FullAttention);
        let att = AttentionServer::start(
            mech,
            BatchPolicy::batched(1000, Duration::from_millis(100)).with_queue_depth(1),
        );
        let server = HttpServer::bind(att, quick_config()).unwrap();
        let addr = server.local_addr();
        let body = Json::obj(vec![
            ("q", matrix_body(&Matrix::<f32>::zeros(4, 4))),
            ("k", matrix_body(&Matrix::<f32>::zeros(4, 4))),
            ("v", matrix_body(&Matrix::<f32>::zeros(4, 4))),
        ]);
        // First request occupies the queue (its bucket waits 100ms);
        // fire it from a second thread and shed the overlapping one.
        let mut bg = HttpClient::connect(addr);
        let bg_body = body.clone();
        let t = std::thread::spawn(move || bg.call("POST", "/v1/prefill", Some(&bg_body)));
        std::thread::sleep(Duration::from_millis(30));
        let mut client = HttpClient::connect(addr);
        let err = client.call("POST", "/v1/prefill", Some(&body)).unwrap_err();
        match err {
            HttpClientError::Status {
                status,
                retry_after,
                ..
            } => {
                assert_eq!(status, 503);
                assert_eq!(retry_after, Some(1));
            }
            other => panic!("expected a typed 503, got {other:?}"),
        }
        assert!(t.join().unwrap().is_ok(), "the queued request still serves");
        let stats = server.shutdown();
        assert_eq!(stats.overload_sheds, 1);
    }

    #[test]
    fn readyz_flips_and_drain_force_closes_stragglers() {
        let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(FullAttention);
        let att = AttentionServer::start(mech, BatchPolicy::per_request());
        let config = HttpConfig {
            // Long read deadline: the straggler below would otherwise
            // pin its handler far past the drain deadline.
            read_timeout: Duration::from_secs(60),
            write_timeout: Duration::from_secs(1),
            drain_deadline: Duration::from_millis(200),
            ..HttpConfig::default()
        };
        let server = HttpServer::bind(att, config).unwrap();
        let mut client = HttpClient::connect(server.local_addr());
        let ready = client.request("GET", "/readyz", None).expect("readyz");
        assert_eq!(ready.status, 200);
        // Close the probe's keep-alive connection so the only straggler
        // left at drain time is the silent one below.
        drop(client);
        std::thread::sleep(Duration::from_millis(50));
        // A connection that sends nothing: its handler blocks in read.
        let straggler = TcpStream::connect(server.local_addr()).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let t0 = Instant::now();
        let stats = server.shutdown();
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "drain must not wait out the 60s read deadline"
        );
        assert_eq!(stats.drain_force_closed, 1, "straggler was force-closed");
        drop(straggler);
    }

    #[test]
    fn poisoned_registry_heals_through_the_http_layer() {
        // A thread dies holding the registry lock with scribbled
        // counters; /metrics and every later endpoint must keep serving
        // off the healed, reconciled registry.
        let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(FullAttention);
        let att = AttentionServer::start_with_kv(
            mech,
            BatchPolicy::per_request(),
            KvConfig {
                page_elems: 64,
                budget_bytes: 16 * 1024,
                evict_idle: false,
                ..KvConfig::default()
            },
        );
        let server = HttpServer::bind(att, quick_config()).unwrap();
        let mut client = HttpClient::connect(server.local_addr());
        let opened = client
            .call(
                "POST",
                "/v1/sessions",
                Some(&Json::obj(vec![("d", Json::Num(8.0))])),
            )
            .expect("open");
        let sid = opened.get("session").unwrap().as_f64().unwrap() as u64;
        client
            .call(
                "POST",
                &format!("/v1/sessions/{sid}/append"),
                Some(&Json::obj(vec![
                    ("k_row", Json::f32_row(&[1.0; 8])),
                    ("v_row", Json::f32_row(&[2.0; 8])),
                ])),
            )
            .expect("append");
        // Poison the registry mid-flight (a dead client thread).
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        server
            .inner
            .as_ref()
            .expect("live")
            .shared
            .att
            .poison_registry_for_test();
        std::panic::set_hook(hook);
        // /metrics reads the healed registry: the scribbled u64::MAX
        // byte count must not surface.
        let metrics = client.request("GET", "/metrics", None).expect("metrics");
        assert_eq!(metrics.status, 200);
        let text = String::from_utf8(metrics.body).unwrap();
        let peak_line = text
            .lines()
            .find(|l| l.starts_with("dfss_kv_bytes_peak "))
            .expect("kv_bytes_peak exported");
        let peak: f64 = peak_line.split(' ').nth(1).unwrap().parse().unwrap();
        // One appended row of k (8 f32) + v (8 f32) = 64 bytes.
        assert_eq!(peak as u64, (8 + 8) * 4, "healed peak, not the scribble");
        // Subsequent session traffic still serves (free-page arithmetic
        // under pages_used = 9999 would underflow without the heal).
        client
            .call(
                "POST",
                &format!("/v1/sessions/{sid}/append"),
                Some(&Json::obj(vec![
                    ("k_row", Json::f32_row(&[3.0; 8])),
                    ("v_row", Json::f32_row(&[4.0; 8])),
                ])),
            )
            .expect("append after heal");
        let decoded = client
            .call(
                "POST",
                &format!("/v1/sessions/{sid}/decode"),
                Some(&Json::obj(vec![("q_row", Json::f32_row(&[0.5; 8]))])),
            )
            .expect("decode after heal");
        assert_eq!(decoded.get("cached_len").unwrap().as_f64(), Some(2.0));
        let stats = server.shutdown();
        assert_eq!(stats.kv_pages_allocated, stats.kv_pages_freed);
    }

    #[test]
    fn client_retry_loop_rides_503_retry_after() {
        // An injected pool exhaustion fails the first append with a 503
        // Retry-After; with_backoff retries it to success — the typed
        // transient contract working end to end over the wire.
        let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(FullAttention);
        let att = AttentionServer::start_with_faults(
            mech,
            BatchPolicy::per_request(),
            FaultPlan::new().inject(1, FaultKind::ExhaustPool),
        );
        let server = HttpServer::bind(att, quick_config()).unwrap();
        let mut client = HttpClient::connect(server.local_addr());
        let opened = client
            .call(
                "POST",
                "/v1/sessions",
                Some(&Json::obj(vec![("d", Json::Num(8.0))])),
            )
            .expect("open");
        let sid = opened.get("session").unwrap().as_f64().unwrap() as u64;
        let body = Json::obj(vec![
            ("k_row", Json::f32_row(&[1.0; 8])),
            ("v_row", Json::f32_row(&[2.0; 8])),
        ]);
        let mut attempts = 0;
        let out = with_backoff(Backoff::quick(3), || {
            attempts += 1;
            client.call("POST", &format!("/v1/sessions/{sid}/append"), Some(&body))
        });
        assert!(out.is_ok(), "retry must clear the injected exhaustion");
        assert_eq!(attempts, 2, "exactly one 503 then success");
        let _ = server.shutdown();
    }

    #[test]
    fn metrics_exports_queue_depths() {
        let mech: Arc<dyn Attention<f32> + Send + Sync> = Arc::new(FullAttention);
        let att =
            AttentionServer::start(mech, BatchPolicy::batched(1000, Duration::from_millis(150)));
        let server = HttpServer::bind(att, quick_config()).unwrap();
        let addr = server.local_addr();
        let body = Json::obj(vec![
            ("q", matrix_body(&Matrix::<f32>::zeros(4, 4))),
            ("k", matrix_body(&Matrix::<f32>::zeros(4, 4))),
            ("v", matrix_body(&Matrix::<f32>::zeros(4, 4))),
        ]);
        let mut bg = HttpClient::connect(addr);
        let t = std::thread::spawn(move || bg.call("POST", "/v1/prefill", Some(&body)));
        std::thread::sleep(Duration::from_millis(50));
        let mut client = HttpClient::connect(addr);
        let metrics = client.request("GET", "/metrics", None).expect("metrics");
        let text = String::from_utf8(metrics.body).unwrap();
        assert!(
            text.contains("dfss_queue_depth_prefill{n=\"4\",d=\"4\"} 1"),
            "queued request missing from depth gauges:\n{text}"
        );
        let backend = dfss_kernels::simd::active().name();
        assert!(
            text.contains(&format!("dfss_simd_backend{{name=\"{backend}\"}} 1")),
            "metrics missing the dispatched SIMD backend:\n{text}"
        );
        assert!(t.join().unwrap().is_ok());
        let _ = server.shutdown();
    }

    #[test]
    fn keep_alive_serves_many_requests_on_one_connection() {
        let server = start_http(BatchPolicy::per_request());
        let mut client = HttpClient::connect(server.local_addr());
        for _ in 0..5 {
            client.call("GET", "/healthz", None).expect("healthz");
        }
        let stats = server.shutdown();
        assert_eq!(
            stats.http_connections_accepted, 1,
            "five requests, one connection"
        );
    }

    #[test]
    fn stalled_response_reader_cannot_pin_the_server() {
        // A client that sends a request and then refuses to read the
        // response: the write lands in the socket buffer (or fails the
        // bounded write deadline) and drain still completes.
        let server = start_http(BatchPolicy::per_request());
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n")
            .unwrap();
        std::thread::sleep(Duration::from_millis(100));
        let t0 = Instant::now();
        let stats = server.shutdown();
        assert!(t0.elapsed() < Duration::from_secs(5));
        assert_eq!(stats.http_connections_accepted, 1);
        // Server-side state is fully reconciled regardless.
        assert_eq!(stats.kv_pages_allocated, stats.kv_pages_freed);
        let mut sink = Vec::new();
        let _ = stream.read_to_end(&mut sink);
    }
}
