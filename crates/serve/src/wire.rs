//! HTTP/1.1 wire framing and a minimal JSON codec — no dependencies.
//!
//! This is the byte-level half of the HTTP front door
//! ([`crate::http`]): request parsing with **bounded** header/body
//! limits, response serialisation, and the JSON value type the endpoint
//! bodies use. The design constraints mirror the batcher's no-tokio
//! style, plus one that only matters at a network boundary: **parsing
//! arbitrary bytes can never panic**. Every malformed input is a typed
//! [`WireError`] (the front door maps it to a `400`), every slow or
//! oversized input is a typed [`WireError::TimedOut`] /
//! [`WireError::TooLarge`] (`408` / `413`), and the JSON parser carries
//! an explicit recursion-depth cap so `[[[[…` from a hostile client
//! exhausts a counter, not the stack. `tests/http_chaos.rs` pins the
//! never-panics property with a fuzz-style proptest over random byte
//! streams.
//!
//! Framing is deliberately small: request-line + headers +
//! `Content-Length` bodies (no chunked transfer encoding, no HTTP/2),
//! which is exactly what `curl`, the bench load generator, and the
//! chaos client speak.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::{ErrorKind, Read, Write};
use std::time::Duration;

/// Byte budgets for one parsed request. Exceeding either limit is a
/// typed refusal ([`WireError::TooLarge`] → `413`), never unbounded
/// buffering.
#[derive(Clone, Copy, Debug)]
pub struct WireLimits {
    /// Most bytes the request line + headers may occupy.
    pub max_header_bytes: usize,
    /// Most bytes a declared `Content-Length` body may occupy.
    pub max_body_bytes: usize,
}

impl Default for WireLimits {
    fn default() -> WireLimits {
        WireLimits {
            max_header_bytes: 16 * 1024,
            max_body_bytes: 8 * 1024 * 1024,
        }
    }
}

/// Why a request could not be read off the wire. Every variant maps to
/// one HTTP status (or a silent close) in [`crate::http`] — a byte
/// stream can *never* hang the connection handler or panic it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The bytes are not a well-formed HTTP/1.1 request (bad request
    /// line, bad header syntax, unparseable `Content-Length`,
    /// unsupported framing). Mapped to `400`.
    Malformed(String),
    /// Headers or declared body exceed [`WireLimits`]. Mapped to `413`.
    TooLarge {
        /// What overflowed, for the error body.
        what: &'static str,
        /// The limit that was exceeded, in bytes.
        limit: usize,
    },
    /// The socket's read deadline expired mid-request (slow-loris or an
    /// idle keep-alive connection). Mapped to `408`.
    TimedOut,
    /// The peer closed the connection mid-request — there is nobody
    /// left to answer, the handler just closes.
    ConnectionClosed,
    /// A transport error other than a timeout (reset, broken pipe).
    /// The handler closes without answering.
    Io(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Malformed(why) => write!(f, "malformed request: {why}"),
            WireError::TooLarge { what, limit } => {
                write!(f, "{what} exceeds the {limit}-byte limit")
            }
            WireError::TimedOut => write!(f, "read deadline expired mid-request"),
            WireError::ConnectionClosed => write!(f, "peer closed the connection mid-request"),
            WireError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

/// One parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Request method, uppercased as received (`GET`, `POST`, …).
    pub method: String,
    /// Request target path (query strings are kept verbatim).
    pub target: String,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (`Content-Length` framing; empty if absent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header (name lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange (`Connection: close`).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// A buffered request reader over one connection. Keep-alive leftovers
/// (bytes of the next request that arrived with the previous one) stay
/// in the buffer between [`read_request`](Self::read_request) calls.
pub struct RequestReader<R: Read> {
    inner: R,
    buf: VecDeque<u8>,
}

impl<R: Read> RequestReader<R> {
    /// Wrap a byte stream (a `TcpStream` with its read deadline already
    /// set, or a byte slice in tests).
    pub fn new(inner: R) -> RequestReader<R> {
        RequestReader {
            inner,
            buf: VecDeque::new(),
        }
    }

    /// Pull more bytes from the stream into the buffer. `Ok(0)` is EOF.
    fn fill(&mut self) -> Result<usize, WireError> {
        let mut chunk = [0u8; 4096];
        loop {
            match self.inner.read(&mut chunk) {
                Ok(n) => {
                    self.buf.extend(&chunk[..n]);
                    return Ok(n);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Err(WireError::TimedOut)
                }
                Err(e) => return Err(WireError::Io(e.to_string())),
            }
        }
    }

    /// Read and parse one request. `Ok(None)` is a clean close: the peer
    /// hung up on a request boundary (no bytes of a next request seen).
    /// Everything else — partial request then EOF, limits, timeouts,
    /// garbage — is a typed [`WireError`].
    pub fn read_request(&mut self, limits: &WireLimits) -> Result<Option<Request>, WireError> {
        // Accumulate until the blank line that ends the header block.
        let head_end = loop {
            if let Some(end) = find_head_end(&self.buf) {
                break end;
            }
            if self.buf.len() > limits.max_header_bytes {
                return Err(WireError::TooLarge {
                    what: "request headers",
                    limit: limits.max_header_bytes,
                });
            }
            if self.fill()? == 0 {
                return if self.buf.is_empty() {
                    Ok(None)
                } else {
                    Err(WireError::ConnectionClosed)
                };
            }
        };
        if head_end.head_len > limits.max_header_bytes {
            return Err(WireError::TooLarge {
                what: "request headers",
                limit: limits.max_header_bytes,
            });
        }
        let head: Vec<u8> = self.buf.drain(..head_end.head_len).collect();
        self.buf.drain(..head_end.sep_len);
        let mut request = parse_head(&head)?;
        let body_len = content_length(&request)?;
        if body_len > limits.max_body_bytes {
            return Err(WireError::TooLarge {
                what: "request body",
                limit: limits.max_body_bytes,
            });
        }
        while self.buf.len() < body_len {
            if self.fill()? == 0 {
                return Err(WireError::ConnectionClosed);
            }
        }
        request.body = self.buf.drain(..body_len).collect();
        Ok(Some(request))
    }
}

/// Where the header block ends: `head_len` bytes of head, then
/// `sep_len` bytes of blank-line separator.
struct HeadEnd {
    head_len: usize,
    sep_len: usize,
}

/// Find the end of the header block — `\r\n\r\n`, or a tolerated bare
/// `\n\n`.
fn find_head_end(buf: &VecDeque<u8>) -> Option<HeadEnd> {
    let (a, b) = buf.as_slices();
    // Work over a contiguous view only when the buffer wraps (rare:
    // the deque is drained from the front each request).
    let joined;
    let bytes: &[u8] = if b.is_empty() {
        a
    } else {
        joined = buf.iter().copied().collect::<Vec<u8>>();
        &joined
    };
    for i in 0..bytes.len() {
        if bytes[i] != b'\n' {
            continue;
        }
        if i + 1 < bytes.len() && bytes[i + 1] == b'\n' {
            return Some(HeadEnd {
                head_len: i + 1,
                sep_len: 1,
            });
        }
        if i + 2 < bytes.len() && bytes[i + 1] == b'\r' && bytes[i + 2] == b'\n' {
            return Some(HeadEnd {
                head_len: i + 1,
                sep_len: 2,
            });
        }
    }
    None
}

/// Parse the request line + headers (everything before the blank line).
fn parse_head(head: &[u8]) -> Result<Request, WireError> {
    let text = std::str::from_utf8(head)
        .map_err(|_| WireError::Malformed("headers are not valid UTF-8".into()))?;
    let mut lines = text.lines();
    let request_line = lines
        .next()
        .ok_or_else(|| WireError::Malformed("empty request".into()))?;
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| WireError::Malformed("missing method".into()))?;
    let target = parts
        .next()
        .ok_or_else(|| WireError::Malformed("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| WireError::Malformed("missing HTTP version".into()))?;
    if parts.next().is_some() {
        return Err(WireError::Malformed("extra tokens on request line".into()));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(WireError::Malformed(format!(
            "unsupported protocol version {version:?}"
        )));
    }
    if !method.bytes().all(|b| b.is_ascii_uppercase()) || method.is_empty() {
        return Err(WireError::Malformed(format!("bad method {method:?}")));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| WireError::Malformed(format!("header line without colon: {line:?}")))?;
        if name.is_empty() || name.contains(' ') {
            return Err(WireError::Malformed(format!("bad header name {name:?}")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(Request {
        method: method.to_string(),
        target: target.to_string(),
        headers,
        body: Vec::new(),
    })
}

/// The request's declared body length. Chunked transfer encoding is not
/// supported (typed refusal, not a misframed read).
fn content_length(req: &Request) -> Result<usize, WireError> {
    if req
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(WireError::Malformed(
            "chunked transfer encoding is not supported".into(),
        ));
    }
    match req.header("content-length") {
        None => Ok(0),
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| WireError::Malformed(format!("bad content-length {v:?}"))),
    }
}

/// Standard reason phrase for the status codes the front door emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        410 => "Gone",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Response",
    }
}

/// Serialise one response. `retry_after` adds a `Retry-After` header
/// (the transient-shed contract `retry::with_backoff` keys on);
/// `close` adds `Connection: close`.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    retry_after: Option<Duration>,
    close: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\n",
        reason(status),
        body.len()
    );
    if let Some(after) = retry_after {
        let _ = write!(head, "retry-after: {}\r\n", after.as_secs().max(1));
    }
    if close {
        head.push_str("connection: close\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// A parsed HTTP response (the client half of the wire — the bench load
/// generator, the chaos harness, and [`crate::http::HttpClient`] read
/// responses through this).
#[derive(Clone, Debug)]
pub struct Response {
    /// The status code from the status line.
    pub status: u16,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl Response {
    /// First value of a header (name lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The `Retry-After` header in whole seconds, if present and numeric.
    pub fn retry_after(&self) -> Option<u64> {
        self.header("retry-after").and_then(|v| v.parse().ok())
    }
}

/// Read one response off a stream (same bounded, typed discipline as
/// the request path).
pub fn read_response(
    reader: &mut RequestReader<impl Read>,
    limits: &WireLimits,
) -> Result<Response, WireError> {
    let head_end = loop {
        if let Some(end) = find_head_end(&reader.buf) {
            break end;
        }
        if reader.buf.len() > limits.max_header_bytes {
            return Err(WireError::TooLarge {
                what: "response headers",
                limit: limits.max_header_bytes,
            });
        }
        if reader.fill()? == 0 {
            return Err(WireError::ConnectionClosed);
        }
    };
    let head: Vec<u8> = reader.buf.drain(..head_end.head_len).collect();
    reader.buf.drain(..head_end.sep_len);
    let text = std::str::from_utf8(&head)
        .map_err(|_| WireError::Malformed("response headers are not valid UTF-8".into()))?;
    let mut lines = text.lines();
    let status_line = lines
        .next()
        .ok_or_else(|| WireError::Malformed("empty response".into()))?;
    let mut parts = status_line.split_ascii_whitespace();
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        other => return Err(WireError::Malformed(format!("bad status line: {other:?}"))),
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| WireError::Malformed("bad status code".into()))?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| WireError::Malformed(format!("header line without colon: {line:?}")))?;
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    let mut resp = Response {
        status,
        headers,
        body: Vec::new(),
    };
    let req_view = Request {
        method: String::new(),
        target: String::new(),
        headers: resp.headers.clone(),
        body: Vec::new(),
    };
    let body_len = content_length(&req_view)?;
    if body_len > limits.max_body_bytes {
        return Err(WireError::TooLarge {
            what: "response body",
            limit: limits.max_body_bytes,
        });
    }
    while reader.buf.len() < body_len {
        if reader.fill()? == 0 {
            return Err(WireError::ConnectionClosed);
        }
    }
    resp.body = reader.buf.drain(..body_len).collect();
    Ok(resp)
}

/// Deepest JSON nesting the parser follows before refusing — bounds the
/// recursion a hostile `[[[[…` body can force.
const MAX_JSON_DEPTH: usize = 64;

/// A JSON value — the endpoint body format of the HTTP front door.
///
/// Same shape as the bench artifact codec, with the two properties the
/// wire needs: a recursion-depth cap on parsing (network bytes are
/// hostile) and exact `f32` round-trips (numbers render as shortest
/// `f64` strings, and every `f32` is exactly representable as `f64`, so
/// `output` matrices survive serialisation bit-identically — the chaos
/// harness asserts this end to end).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An insertion-ordered object.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object literal.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Field lookup on objects; `None` for other variants or missing
    /// keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// A row of `f32`s as a JSON array (exact: each `f32` widens to
    /// `f64` losslessly).
    pub fn f32_row(row: &[f32]) -> Json {
        Json::Arr(row.iter().map(|&x| Json::Num(f64::from(x))).collect())
    }

    /// Parse this value as a row of `f32`s (exact inverse of
    /// [`f32_row`](Self::f32_row)).
    pub fn to_f32_row(&self) -> Option<Vec<f32>> {
        self.as_arr()?
            .iter()
            .map(|v| v.as_f64().map(|x| x as f32))
            .collect()
    }

    /// Render compactly (single line, no trailing newline) — the wire
    /// format of request and response bodies.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(x) => {
                if !x.is_finite() {
                    out.push_str("null");
                } else if *x == 0.0 && x.is_sign_negative() {
                    // The integer fast-path below would erase the sign
                    // of -0.0, breaking f32 bit-identity on the wire.
                    out.push_str("-0");
                } else if x.fract() == 0.0 && x.abs() < 1e15 {
                    let _ = write!(out, "{}", *x as i64);
                } else {
                    let _ = write!(out, "{x}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document from raw bytes (must be UTF-8 and consume
    /// the whole input). Never panics: depth, syntax, and encoding
    /// errors are all `Err`.
    pub fn parse(bytes: &[u8]) -> Result<Json, String> {
        let text = std::str::from_utf8(bytes).map_err(|_| "body is not valid UTF-8".to_string())?;
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_JSON_DEPTH {
        return Err(format!("nesting deeper than {MAX_JSON_DEPTH}"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(bytes, pos, "null").map(|_| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|_| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos, depth + 1)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(Json::Num),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences arrive
                // intact because the input was validated as a &str).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let parsed = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|e| e.to_string())?
        .parse::<f64>()
        .map_err(|_| format!("invalid number at byte {start}"))?;
    if parsed.is_finite() {
        Ok(parsed)
    } else {
        Err(format!("non-finite number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_bytes(bytes: &[u8]) -> Result<Option<Request>, WireError> {
        RequestReader::new(bytes).read_request(&WireLimits::default())
    }

    #[test]
    fn parses_a_plain_get() {
        let req = parse_bytes(b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_body_and_keepalive_leftover() {
        let bytes =
            b"POST /v1/prefill HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcdGET /healthz HTTP/1.1\r\n\r\n";
        let mut reader = RequestReader::new(&bytes[..]);
        let limits = WireLimits::default();
        let first = reader.read_request(&limits).unwrap().unwrap();
        assert_eq!(first.body, b"abcd");
        let second = reader.read_request(&limits).unwrap().unwrap();
        assert_eq!(second.target, "/healthz");
        assert!(reader.read_request(&limits).unwrap().is_none());
    }

    #[test]
    fn tolerates_bare_lf_line_endings() {
        let req = parse_bytes(b"GET / HTTP/1.1\nhost: x\n\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.target, "/");
    }

    #[test]
    fn clean_close_is_none_and_partial_close_is_typed() {
        assert!(parse_bytes(b"").unwrap().is_none());
        assert_eq!(
            parse_bytes(b"GET / HT").unwrap_err(),
            WireError::ConnectionClosed
        );
    }

    #[test]
    fn garbage_is_malformed_not_a_panic() {
        for bad in [
            &b"\x00\xff\xfe garbage\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET / SPDY/9\r\n\r\n",
            b"get / HTTP/1.1\r\n\r\n",
            b"GET / HTTP/1.1\r\nbad header line\r\n\r\n",
            b"POST / HTTP/1.1\r\ncontent-length: banana\r\n\r\n",
            b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
        ] {
            assert!(
                matches!(parse_bytes(bad), Err(WireError::Malformed(_))),
                "expected Malformed for {bad:?}"
            );
        }
    }

    #[test]
    fn oversized_header_and_body_are_typed() {
        let limits = WireLimits {
            max_header_bytes: 64,
            max_body_bytes: 8,
        };
        let huge = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(200));
        let err = RequestReader::new(huge.as_bytes())
            .read_request(&limits)
            .unwrap_err();
        assert!(matches!(
            err,
            WireError::TooLarge {
                what: "request headers",
                ..
            }
        ));
        let body = b"POST / HTTP/1.1\r\ncontent-length: 99\r\n\r\n";
        let err = RequestReader::new(&body[..])
            .read_request(&limits)
            .unwrap_err();
        assert!(matches!(
            err,
            WireError::TooLarge {
                what: "request body",
                ..
            }
        ));
    }

    #[test]
    fn response_roundtrip() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            503,
            "application/json",
            br#"{"error":"overloaded"}"#,
            Some(Duration::from_secs(1)),
            true,
        )
        .unwrap();
        let mut reader = RequestReader::new(&out[..]);
        let resp = read_response(&mut reader, &WireLimits::default()).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.retry_after(), Some(1));
        assert_eq!(resp.header("connection"), Some("close"));
        assert_eq!(resp.body, br#"{"error":"overloaded"}"#);
    }

    #[test]
    fn json_f32_rows_roundtrip_bit_identically() {
        let row: Vec<f32> = vec![0.1, -3.25e-8, f32::MIN_POSITIVE, 1.0 / 3.0, -0.0, 123456.78];
        let text = Json::f32_row(&row).render();
        let back = Json::parse(text.as_bytes()).unwrap().to_f32_row().unwrap();
        for (a, b) in row.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} diverged through JSON");
        }
    }

    #[test]
    fn json_depth_cap_refuses_instead_of_overflowing() {
        let deep = "[".repeat(100_000);
        assert!(Json::parse(deep.as_bytes()).is_err());
        let obj = "{\"a\":".repeat(100_000);
        assert!(Json::parse(obj.as_bytes()).is_err());
    }

    #[test]
    fn json_rejects_garbage_and_non_finite() {
        for bad in [
            &b"{"[..],
            b"[1, ]",
            b"12 34",
            b"nul",
            b"1e999",
            b"\"\\q\"",
            b"[\xff",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
