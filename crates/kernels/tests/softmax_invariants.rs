//! The softmax kernels must produce probability distributions in every
//! storage format — dense rows, compressed N:M rows, and CSR rows.

use dfss_kernels::{softmax, GpuCtx};
use dfss_nmsparse::{Csr, NmCompressed, NmPattern};
use dfss_tensor::{Bf16, Matrix, Rng};
use proptest::prelude::*;

fn row_sums_to_one(row: &[f32], tol: f32) -> bool {
    let s: f32 = row.iter().sum();
    (s - 1.0).abs() < tol && row.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn compressed_softmax_rows_sum_to_one(seed in 0u64..10_000, pat in 0usize..2) {
        let pattern = [NmPattern::P1_2, NmPattern::P2_4][pat];
        let mut rng = Rng::new(seed);
        let scores = Matrix::<f32>::random_normal(24, 48, 0.0, 2.0, &mut rng);
        let mut comp = NmCompressed::compress(&scores, pattern);
        let mut ctx = GpuCtx::a100();
        softmax::softmax_nm(&mut ctx, &mut comp);
        for r in 0..comp.rows() {
            prop_assert!(
                row_sums_to_one(comp.row_nonzeros(r), 1e-4),
                "row {r} of {}", pattern.name()
            );
        }
    }

    #[test]
    fn compressed_softmax_rows_sum_to_one_bf16(seed in 0u64..10_000) {
        let mut rng = Rng::new(seed);
        let scores = Matrix::<Bf16>::random_normal(16, 32, 0.0, 2.0, &mut rng);
        let mut comp = NmCompressed::compress(&scores, NmPattern::P2_4);
        let mut ctx = GpuCtx::a100();
        softmax::softmax_nm(&mut ctx, &mut comp);
        // bf16 has ~8 bits of mantissa; the per-row sum carries the rounding.
        for r in 0..comp.rows() {
            let row: Vec<f32> = comp.row_nonzeros(r).iter().map(|v| v.to_f32()).collect();
            prop_assert!(row_sums_to_one(&row, 0.05), "row {r}");
        }
    }

    #[test]
    fn dense_softmax_rows_sum_to_one(seed in 0u64..10_000) {
        let mut rng = Rng::new(seed);
        let scores = Matrix::<f32>::random_normal(12, 40, 0.0, 2.0, &mut rng);
        let mut ctx = GpuCtx::a100();
        let probs = softmax::softmax_dense(&mut ctx, &scores);
        for r in 0..probs.rows() {
            prop_assert!(row_sums_to_one(probs.row(r), 1e-4), "row {r}");
        }
    }

    #[test]
    fn csr_softmax_rows_sum_to_one(seed in 0u64..10_000) {
        let mut rng = Rng::new(seed);
        let scores = Matrix::<f32>::random_normal(20, 40, 0.0, 2.0, &mut rng);
        let mut csr = Csr::from_dense_topk(&scores, 10);
        let mut ctx = GpuCtx::a100();
        softmax::softmax_csr(&mut ctx, &mut csr);
        for r in 0..csr.rows() {
            let (_, vals) = csr.row(r);
            prop_assert!(row_sums_to_one(vals, 1e-4), "row {r}");
        }
    }
}

/// Softmax over extreme magnitudes must stay finite (the stable three-phase
/// scheme of Equation (10)).
#[test]
fn compressed_softmax_is_stable_at_extremes() {
    let mut scores = Matrix::<f32>::zeros(4, 16);
    for c in 0..16 {
        scores.set(0, c, 1e30);
        scores.set(1, c, -1e30);
        scores.set(2, c, if c % 2 == 0 { 500.0 } else { -500.0 });
        scores.set(3, c, 0.0);
    }
    let mut comp = NmCompressed::compress(&scores, NmPattern::P1_2);
    let mut ctx = GpuCtx::a100();
    softmax::softmax_nm(&mut ctx, &mut comp);
    for r in 0..4 {
        let s: f32 = comp.row_nonzeros(r).iter().sum();
        assert!((s - 1.0).abs() < 1e-4, "row {r} sums to {s}");
        assert!(comp.row_nonzeros(r).iter().all(|p| p.is_finite()));
    }
}
