//! Decode-kernel contract: a ragged launch over B streams is bit-identical
//! to the per-stream solo decode loop, records exactly ONE profile per op,
//! and its counters are the sum of the per-stream solo charges.

use dfss_gpusim::Stage;
use dfss_kernels::{gemm, sddmm, softmax, spmm, GpuCtx};
use dfss_nmsparse::{NmPattern, NmRagged};
use dfss_tensor::{Matrix, RaggedBatch, Rng};

/// Ragged decode fixture: B streams with deliberately misaligned cached
/// lengths (odd lens exercise the dense tail), one query row each.
struct Fixture {
    q: Matrix<f32>,
    k_panels: Vec<Matrix<f32>>,
    v_panels: Vec<Matrix<f32>>,
    d: usize,
    d_v: usize,
}

fn fixture(lens: &[usize], d: usize, d_v: usize, seed: u64) -> Fixture {
    let mut rng = Rng::new(seed);
    let q = Matrix::random_normal(lens.len(), d, 0.0, 1.0, &mut rng);
    let k_panels: Vec<Matrix<f32>> = lens
        .iter()
        .map(|&l| Matrix::random_normal(l, d, 0.0, 1.0, &mut rng))
        .collect();
    let v_panels: Vec<Matrix<f32>> = lens
        .iter()
        .map(|&l| Matrix::random_normal(l, d_v, 0.0, 1.0, &mut rng))
        .collect();
    Fixture {
        q,
        k_panels,
        v_panels,
        d,
        d_v,
    }
}

fn ragged_of(panels: &[Matrix<f32>]) -> RaggedBatch<f32> {
    let refs: Vec<&Matrix<f32>> = panels.iter().collect();
    RaggedBatch::gather(&refs)
}

fn q_row(f: &Fixture, s: usize) -> Matrix<f32> {
    Matrix::from_vec(1, f.d, f.q.row(s).to_vec())
}

const LENS: [usize; 4] = [7, 16, 33, 2];

#[test]
fn fused_ragged_bit_identical_to_solo_loop_with_summed_charges() {
    let f = fixture(&LENS, 16, 8, 1);
    let pattern = NmPattern::P1_2;
    let mut rctx = GpuCtx::a100();
    let ragged =
        sddmm::sddmm_nm_fused_ragged(&mut rctx, &f.q, &ragged_of(&f.k_panels), 0.25, pattern);
    assert_eq!(rctx.timeline.entries().len(), 1);
    assert_eq!(rctx.timeline.launches(), 1);

    let mut sctx = GpuCtx::a100();
    for (s, k) in f.k_panels.iter().enumerate() {
        let solo = sddmm::sddmm_nm_decode(&mut sctx, &q_row(&f, s), k, 0.25, pattern);
        assert_eq!(solo.row_codes(0), ragged.row_codes(s), "stream {s} codes");
        let same = solo
            .row_nonzeros(0)
            .iter()
            .zip(ragged.row_nonzeros(s))
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "stream {s} values diverged");
    }
    // One summed profile: exactly the per-stream charges.
    assert_eq!(sctx.timeline.entries().len(), LENS.len());
    assert_eq!(rctx.timeline.total_bytes(), sctx.timeline.total_bytes());
    let (re, ses) = (&rctx.timeline.entries()[0], sctx.timeline.entries());
    assert_eq!(re.tc_macs, ses.iter().map(|e| e.tc_macs).sum::<u64>());
    assert_eq!(re.alu_ops, ses.iter().map(|e| e.alu_ops).sum::<u64>());
}

#[test]
fn dense_tail_is_kept_verbatim() {
    // len = 7 under 1:2: 3 full groups + 1 dense tail position, which must
    // hold the scaled score of the newest cached position.
    let f = fixture(&[7], 8, 4, 2);
    let mut ctx = GpuCtx::a100();
    let comp = sddmm::sddmm_nm_decode(
        &mut ctx,
        &q_row(&f, 0),
        &f.k_panels[0],
        1.0,
        NmPattern::P1_2,
    );
    assert_eq!(
        (comp.kept_of(0), comp.groups_of(0), comp.tail_of(0)),
        (4, 3, 1)
    );
    let mut cols = Vec::new();
    comp.scan_row(0, |c, _| cols.push(c));
    assert_eq!(
        *cols.last().unwrap(),
        6,
        "tail column is the newest position"
    );
}

#[test]
fn unfused_ragged_matches_fused_selection() {
    let f = fixture(&LENS, 8, 4, 3);
    let pattern = NmPattern::P2_4;
    let mut c1 = GpuCtx::a100();
    let fused = sddmm::sddmm_nm_fused_ragged(&mut c1, &f.q, &ragged_of(&f.k_panels), 0.5, pattern);
    let mut c2 = GpuCtx::a100();
    let scores = gemm::gemm_nt_ragged(&mut c2, Stage::Qk, &f.q, &ragged_of(&f.k_panels), 0.5);
    let unfused = sddmm::dense_prune_ragged(&mut c2, &scores, pattern);
    for s in 0..LENS.len() {
        assert_eq!(fused.row_codes(s), unfused.row_codes(s), "stream {s}");
        for (a, b) in fused.row_nonzeros(s).iter().zip(unfused.row_nonzeros(s)) {
            assert!((a - b).abs() < 1e-5);
        }
    }
    // The unfused path costs exactly the dense row writes + reads extra.
    let dense_elems: u64 = LENS.iter().map(|&l| l as u64).sum();
    let extra = c2.timeline.total_bytes() - c1.timeline.total_bytes();
    assert_eq!(extra, 2 * dense_elems * 4);
    // Two launches (score + prune) instead of one.
    assert_eq!(c2.timeline.launches(), 2);
}

#[test]
fn gemm_nt_ragged_bit_identical_to_solo_rows() {
    let f = fixture(&LENS, 16, 8, 4);
    let mut rctx = GpuCtx::a100();
    let ragged = gemm::gemm_nt_ragged(&mut rctx, Stage::Qk, &f.q, &ragged_of(&f.k_panels), 0.125);
    let mut sctx = GpuCtx::a100();
    for (s, k) in f.k_panels.iter().enumerate() {
        let solo = gemm::gemm_nt_decode(&mut sctx, Stage::Qk, &q_row(&f, s), k, 0.125);
        let same = solo
            .as_slice()
            .iter()
            .zip(ragged.panel(s))
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "stream {s} diverged");
    }
    assert_eq!(rctx.timeline.launches(), 1);
    assert_eq!(rctx.timeline.total_bytes(), sctx.timeline.total_bytes());
}

#[test]
fn softmax_ragged_rows_are_distributions_and_charges_sum() {
    let f = fixture(&LENS, 8, 4, 5);
    let pattern = NmPattern::P1_2;
    let mut bctx = GpuCtx::a100();
    let mut batched =
        sddmm::sddmm_nm_fused_ragged(&mut bctx, &f.q, &ragged_of(&f.k_panels), 1.0, pattern);
    let mark = bctx.timeline.entries().len();
    softmax::softmax_nm_ragged(&mut bctx, &mut batched);
    assert_eq!(bctx.timeline.entries().len() - mark, 1);

    let mut sctx = GpuCtx::a100();
    for (s, k) in f.k_panels.iter().enumerate() {
        let mut solo = sddmm::sddmm_nm_decode(&mut sctx, &q_row(&f, s), k, 1.0, pattern);
        softmax::softmax_nm_ragged(&mut sctx, &mut solo);
        let same = solo
            .row_nonzeros(0)
            .iter()
            .zip(batched.row_nonzeros(s))
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "stream {s} diverged");
        let sum: f32 = batched.row_nonzeros(s).iter().sum();
        assert!((sum - 1.0).abs() < 1e-5, "stream {s} sum {sum}");
    }
    assert_eq!(bctx.timeline.total_bytes(), sctx.timeline.total_bytes());
}

#[test]
fn full_decode_pipeline_ragged_matches_solo_loop() {
    // End-to-end over the three decode ops: one launch each, outputs
    // bit-identical to the per-stream loop.
    let f = fixture(&LENS, 16, 16, 6);
    let pattern = NmPattern::P1_2;
    let kb = ragged_of(&f.k_panels);
    let vb = ragged_of(&f.v_panels);
    let mut bctx = GpuCtx::a100();
    let mut comp = sddmm::sddmm_nm_fused_ragged(&mut bctx, &f.q, &kb, 0.25, pattern);
    softmax::softmax_nm_ragged(&mut bctx, &mut comp);
    let out = spmm::spmm_nm_ragged(&mut bctx, &comp, &vb);
    assert_eq!(out.shape(), (LENS.len(), f.d_v));
    assert_eq!(bctx.timeline.entries().len(), 3);
    assert_eq!(bctx.timeline.launches(), 3);

    let mut sctx = GpuCtx::a100();
    for s in 0..LENS.len() {
        let mut solo =
            sddmm::sddmm_nm_decode(&mut sctx, &q_row(&f, s), &f.k_panels[s], 0.25, pattern);
        softmax::softmax_nm_ragged(&mut sctx, &mut solo);
        let orow = spmm::spmm_nm_decode(&mut sctx, &solo, &f.v_panels[s]);
        let same = orow
            .as_slice()
            .iter()
            .zip(out.row(s))
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "stream {s} diverged");
    }
    // 3 solo launches per stream vs 3 ragged launches total; same bytes.
    assert_eq!(sctx.timeline.launches(), 3 * LENS.len() as u64);
    assert_eq!(bctx.timeline.total_bytes(), sctx.timeline.total_bytes());
}

#[test]
fn decode_output_approximates_dense_row_attention() {
    // Semantics check: the Dfss decode row stays close to full dense row
    // attention over the cache (softmax mass concentrates on kept scores).
    let f = fixture(&[64], 32, 32, 7);
    let pattern = NmPattern::P1_2;
    let scale = 1.0 / (32.0f32).sqrt();
    let mut ctx = GpuCtx::a100();
    let mut comp = sddmm::sddmm_nm_decode(&mut ctx, &q_row(&f, 0), &f.k_panels[0], scale, pattern);
    softmax::softmax_nm_ragged(&mut ctx, &mut comp);
    let sparse = spmm::spmm_nm_decode(&mut ctx, &comp, &f.v_panels[0]);

    // Dense reference.
    let mut scores: Vec<f32> = (0..64)
        .map(|j| {
            f.q.row(0)
                .iter()
                .zip(f.k_panels[0].row(j))
                .map(|(a, b)| a * b)
                .sum::<f32>()
                * scale
        })
        .collect();
    dfss_tensor::math::softmax_row(&mut scores);
    let mut dense = vec![0.0f32; 32];
    for (j, &w) in scores.iter().enumerate() {
        for (o, &x) in dense.iter_mut().zip(f.v_panels[0].row(j)) {
            *o += w * x;
        }
    }
    let err: f32 = sparse
        .as_slice()
        .iter()
        .zip(&dense)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f32::max);
    let scale_ref: f32 = dense.iter().map(|x| x.abs()).fold(0.0, f32::max);
    assert!(
        err < 0.8 * scale_ref.max(1.0),
        "decode err {err} vs dense {scale_ref}"
    );
}

#[test]
fn charge_only_decode_matches_exec_charges() {
    let f = fixture(&LENS, 16, 8, 8);
    let pattern = NmPattern::P1_2;
    let kb = ragged_of(&f.k_panels);
    let vb = ragged_of(&f.v_panels);
    let run = |ctx: &mut GpuCtx| {
        let mut comp = sddmm::sddmm_nm_fused_ragged(ctx, &f.q, &kb, 0.25, pattern);
        softmax::softmax_nm_ragged(ctx, &mut comp);
        let _ = spmm::spmm_nm_ragged(ctx, &comp, &vb);
        comp
    };
    let mut exec = GpuCtx::a100();
    let _ = run(&mut exec);
    let mut charge = GpuCtx::a100_charge_only();
    let comp = run(&mut charge);
    // Structurally valid placeholder result, identical charges.
    assert_eq!(comp.lens(), kb.lens());
    assert!(comp.nonzeros().iter().all(|&x| x == 0.0));
    assert_eq!(exec.timeline.total_bytes(), charge.timeline.total_bytes());
    assert_eq!(exec.timeline.launches(), charge.timeline.launches());
}

#[test]
fn ragged_kept_counts_follow_the_dense_tail_rule() {
    for (len, pattern, want_kept) in [
        (9usize, NmPattern::P1_2, 5usize),
        (10, NmPattern::P2_4, 6),
        (1, NmPattern::P1_2, 1),
    ] {
        assert_eq!(NmRagged::<f32>::kept_for(pattern, len), want_kept);
    }
}
