//! Worker-pool parity tests: every kernel must produce **bit-identical**
//! results whether its `par_*` loops fan out across the persistent pool or
//! run serially on one thread, nested parallel sections must not deadlock,
//! and a panic inside one kernel launch must not poison the pool.
//!
//! `RAYON_NUM_THREADS=4` is pinned before the first pool use so the fan-out
//! paths are exercised even on single-core CI runners.

use dfss_gpusim::Stage;
use dfss_kernels::{ell, gemm, sddmm, softmax, spmm, GpuCtx};
use dfss_nmsparse::{BlockedEll, Csr, NmCompressed, NmPattern};
use dfss_tensor::{Matrix, Rng, Scalar};

/// Pin the pool width before its lazy initialisation (call first in every
/// test; whichever test runs first wins the race, all set the same value).
fn pin_pool() {
    static PIN: std::sync::OnceLock<()> = std::sync::OnceLock::new();
    PIN.get_or_init(|| {
        std::env::set_var("RAYON_NUM_THREADS", "4");
    });
}

fn bits<T: Scalar>(m: &Matrix<T>) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_f32().to_bits()).collect()
}

fn qkv(n: usize, d: usize, seed: u64) -> (Matrix<f32>, Matrix<f32>, Matrix<f32>) {
    let mut rng = Rng::new(seed);
    (
        Matrix::random_normal(n, d, 0.0, 1.0, &mut rng),
        Matrix::random_normal(n, d, 0.0, 1.0, &mut rng),
        Matrix::random_normal(n, d, 0.0, 1.0, &mut rng),
    )
}

#[test]
fn gemm_kernels_match_serial_bitwise() {
    pin_pool();
    // 67 rows: exercises the odd-row tail of the paired NT microkernel.
    let (q, k, v) = qkv(67, 64, 1);
    let par_nt = gemm::gemm_nt(&mut GpuCtx::a100(), Stage::Qk, &q, &k, 0.125);
    let ser_nt =
        rayon::with_serial(|| gemm::gemm_nt(&mut GpuCtx::a100(), Stage::Qk, &q, &k, 0.125));
    assert_eq!(bits(&par_nt), bits(&ser_nt), "gemm_nt");

    let par_nn = gemm::gemm_nn(&mut GpuCtx::a100(), Stage::Av, &par_nt, &v);
    let ser_nn = rayon::with_serial(|| gemm::gemm_nn(&mut GpuCtx::a100(), Stage::Av, &par_nt, &v));
    assert_eq!(bits(&par_nn), bits(&ser_nn), "gemm_nn");

    let par_tn = gemm::gemm_tn(&mut GpuCtx::a100(), Stage::NonAttention, &q, &k);
    let ser_tn =
        rayon::with_serial(|| gemm::gemm_tn(&mut GpuCtx::a100(), Stage::NonAttention, &q, &k));
    assert_eq!(bits(&par_tn), bits(&ser_tn), "gemm_tn");
}

#[test]
fn sddmm_matches_serial_bitwise() {
    pin_pool();
    let (q, k, _) = qkv(66, 32, 2);
    let par = sddmm::sddmm_nm_fused(&mut GpuCtx::a100(), &q, &k, 0.2, NmPattern::P1_2);
    let ser = rayon::with_serial(|| {
        sddmm::sddmm_nm_fused(&mut GpuCtx::a100(), &q, &k, 0.2, NmPattern::P1_2)
    });
    assert_eq!(par.codes(), ser.codes());
    assert_eq!(bits(&par.decompress()), bits(&ser.decompress()));
}

#[test]
fn softmax_matches_serial_bitwise() {
    pin_pool();
    let mut rng = Rng::new(3);
    let scores = Matrix::<f32>::random_normal(65, 64, 0.0, 1.0, &mut rng);
    let par = softmax::softmax_dense(&mut GpuCtx::a100(), &scores);
    let ser = rayon::with_serial(|| softmax::softmax_dense(&mut GpuCtx::a100(), &scores));
    assert_eq!(bits(&par), bits(&ser));

    let mut par_c = NmCompressed::compress(&scores, NmPattern::P1_2);
    let mut ser_c = par_c.clone();
    softmax::softmax_nm(&mut GpuCtx::a100(), &mut par_c);
    rayon::with_serial(|| softmax::softmax_nm(&mut GpuCtx::a100(), &mut ser_c));
    assert_eq!(bits(&par_c.decompress()), bits(&ser_c.decompress()));
}

#[test]
fn spmm_matches_serial_bitwise() {
    pin_pool();
    let mut rng = Rng::new(4);
    let scores = Matrix::<f32>::random_normal(64, 64, 0.0, 1.0, &mut rng);
    let v = Matrix::<f32>::random_normal(64, 32, 0.0, 1.0, &mut rng);
    let comp = NmCompressed::compress(&scores, NmPattern::P1_2);
    let par = spmm::spmm_nm(&mut GpuCtx::a100(), &comp, &v);
    let ser = rayon::with_serial(|| spmm::spmm_nm(&mut GpuCtx::a100(), &comp, &v));
    assert_eq!(bits(&par), bits(&ser), "spmm_nm");

    let csr = Csr::from_dense_topk(&scores, 9);
    let par = spmm::spmm_csr(&mut GpuCtx::a100(), &csr, &v);
    let ser = rayon::with_serial(|| spmm::spmm_csr(&mut GpuCtx::a100(), &csr, &v));
    assert_eq!(bits(&par), bits(&ser), "spmm_csr");
}

#[test]
fn ell_pipeline_matches_serial_bitwise() {
    pin_pool();
    let (q, k, v) = qkv(64, 16, 5);
    let ell_map = BlockedEll::sliding_window(64, 64, 16, 2);
    let run = |ctx: &mut GpuCtx| {
        let mut a = ell::sddmm_ell_nm_fused(ctx, &q, &k, 0.25, NmPattern::P1_2, &ell_map);
        ell::softmax_ell_nm(ctx, &mut a);
        ell::spmm_ell_nm(ctx, &a, &v)
    };
    let par = run(&mut GpuCtx::a100());
    let ser = rayon::with_serial(|| run(&mut GpuCtx::a100()));
    assert_eq!(bits(&par), bits(&ser));
}

#[test]
fn nested_kernel_calls_do_not_deadlock() {
    pin_pool();
    use rayon::prelude::*;
    // Outer parallel loop over heads, each head running full parallel
    // kernels — the shape `dfss-transformer::attn` produces once batching
    // lands. Completion (rather than hanging) is the assertion.
    let outs: Vec<Matrix<f32>> = (0..4usize)
        .into_par_iter()
        .map(|h| {
            let (q, k, v) = qkv(48, 16, 100 + h as u64);
            let mut ctx = GpuCtx::a100();
            let mut a = sddmm::sddmm_nm_fused(&mut ctx, &q, &k, 0.25, NmPattern::P1_2);
            softmax::softmax_nm(&mut ctx, &mut a);
            spmm::spmm_nm(&mut ctx, &a, &v)
        })
        .collect();
    assert_eq!(outs.len(), 4);
    for (h, o) in outs.iter().enumerate() {
        // And each nested result matches its serial computation.
        let (q, k, v) = qkv(48, 16, 100 + h as u64);
        let expect = rayon::with_serial(|| {
            let mut ctx = GpuCtx::a100();
            let mut a = sddmm::sddmm_nm_fused(&mut ctx, &q, &k, 0.25, NmPattern::P1_2);
            softmax::softmax_nm(&mut ctx, &mut a);
            spmm::spmm_nm(&mut ctx, &a, &v)
        });
        assert_eq!(bits(o), bits(&expect), "head {h}");
    }
}

#[test]
fn kernel_panic_poisons_only_its_launch() {
    pin_pool();
    // A dimension-mismatch panic fires *inside* the launch path. It must
    // propagate to the caller…
    let boom = std::panic::catch_unwind(|| {
        let a = Matrix::<f32>::zeros(64, 3);
        let b = Matrix::<f32>::zeros(64, 4);
        let _ = gemm::gemm_nt(&mut GpuCtx::a100(), Stage::Qk, &a, &b, 1.0);
    });
    assert!(boom.is_err());
    // …and the pool must keep serving kernels afterwards.
    let (q, k, _) = qkv(64, 32, 6);
    let c = gemm::gemm_nt(&mut GpuCtx::a100(), Stage::Qk, &q, &k, 1.0);
    let reference =
        rayon::with_serial(|| gemm::gemm_nt(&mut GpuCtx::a100(), Stage::Qk, &q, &k, 1.0));
    assert_eq!(bits(&c), bits(&reference));
    assert!(rayon::spawned_workers() <= rayon::current_num_threads());
}
