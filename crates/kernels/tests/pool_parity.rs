//! Worker-pool parity tests: every kernel must produce **bit-identical**
//! results whether its `par_*` loops fan out across the persistent pool or
//! run serially on one thread, nested parallel sections must not deadlock,
//! and a panic inside one kernel launch must not poison the pool.
//!
//! The batched B×H entry points carry the same contract twice over: their
//! outputs must be bit-identical to a **per-panel serial loop** of the
//! single-head kernels (for all five kernel families), and their single
//! recorded profile must charge **exactly batch ×** the single-head
//! `KernelProfile` in one launch.
//!
//! `RAYON_NUM_THREADS=4` is pinned before the first pool use so the fan-out
//! paths are exercised even on single-core CI runners.

use dfss_gpusim::{KernelProfile, Stage};
use dfss_kernels::{ell, gemm, sddmm, softmax, spmm, GpuCtx};
use dfss_nmsparse::{BlockedEll, Csr, NmCompressed, NmPattern};
use dfss_tensor::{BatchedMatrix, Matrix, Rng, Scalar};

/// Pin the pool width before its lazy initialisation (call first in every
/// test; whichever test runs first wins the race, all set the same value).
fn pin_pool() {
    static PIN: std::sync::OnceLock<()> = std::sync::OnceLock::new();
    PIN.get_or_init(|| {
        std::env::set_var("RAYON_NUM_THREADS", "4");
    });
}

fn bits<T: Scalar>(m: &Matrix<T>) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_f32().to_bits()).collect()
}

fn qkv(n: usize, d: usize, seed: u64) -> (Matrix<f32>, Matrix<f32>, Matrix<f32>) {
    let mut rng = Rng::new(seed);
    (
        Matrix::random_normal(n, d, 0.0, 1.0, &mut rng),
        Matrix::random_normal(n, d, 0.0, 1.0, &mut rng),
        Matrix::random_normal(n, d, 0.0, 1.0, &mut rng),
    )
}

#[test]
fn gemm_kernels_match_serial_bitwise() {
    pin_pool();
    // 67 rows: exercises the odd-row tail of the paired NT microkernel.
    let (q, k, v) = qkv(67, 64, 1);
    let par_nt = gemm::gemm_nt(&mut GpuCtx::a100(), Stage::Qk, &q, &k, 0.125);
    let ser_nt =
        rayon::with_serial(|| gemm::gemm_nt(&mut GpuCtx::a100(), Stage::Qk, &q, &k, 0.125));
    assert_eq!(bits(&par_nt), bits(&ser_nt), "gemm_nt");

    let par_nn = gemm::gemm_nn(&mut GpuCtx::a100(), Stage::Av, &par_nt, &v);
    let ser_nn = rayon::with_serial(|| gemm::gemm_nn(&mut GpuCtx::a100(), Stage::Av, &par_nt, &v));
    assert_eq!(bits(&par_nn), bits(&ser_nn), "gemm_nn");

    let par_tn = gemm::gemm_tn(&mut GpuCtx::a100(), Stage::NonAttention, &q, &k);
    let ser_tn =
        rayon::with_serial(|| gemm::gemm_tn(&mut GpuCtx::a100(), Stage::NonAttention, &q, &k));
    assert_eq!(bits(&par_tn), bits(&ser_tn), "gemm_tn");
}

#[test]
fn sddmm_matches_serial_bitwise() {
    pin_pool();
    let (q, k, _) = qkv(66, 32, 2);
    let par = sddmm::sddmm_nm_fused(&mut GpuCtx::a100(), &q, &k, 0.2, NmPattern::P1_2);
    let ser = rayon::with_serial(|| {
        sddmm::sddmm_nm_fused(&mut GpuCtx::a100(), &q, &k, 0.2, NmPattern::P1_2)
    });
    assert_eq!(par.codes(), ser.codes());
    assert_eq!(bits(&par.decompress()), bits(&ser.decompress()));
}

#[test]
fn softmax_matches_serial_bitwise() {
    pin_pool();
    let mut rng = Rng::new(3);
    let scores = Matrix::<f32>::random_normal(65, 64, 0.0, 1.0, &mut rng);
    let par = softmax::softmax_dense(&mut GpuCtx::a100(), &scores);
    let ser = rayon::with_serial(|| softmax::softmax_dense(&mut GpuCtx::a100(), &scores));
    assert_eq!(bits(&par), bits(&ser));

    let mut par_c = NmCompressed::compress(&scores, NmPattern::P1_2);
    let mut ser_c = par_c.clone();
    softmax::softmax_nm(&mut GpuCtx::a100(), &mut par_c);
    rayon::with_serial(|| softmax::softmax_nm(&mut GpuCtx::a100(), &mut ser_c));
    assert_eq!(bits(&par_c.decompress()), bits(&ser_c.decompress()));
}

#[test]
fn spmm_matches_serial_bitwise() {
    pin_pool();
    let mut rng = Rng::new(4);
    let scores = Matrix::<f32>::random_normal(64, 64, 0.0, 1.0, &mut rng);
    let v = Matrix::<f32>::random_normal(64, 32, 0.0, 1.0, &mut rng);
    let comp = NmCompressed::compress(&scores, NmPattern::P1_2);
    let par = spmm::spmm_nm(&mut GpuCtx::a100(), &comp, &v);
    let ser = rayon::with_serial(|| spmm::spmm_nm(&mut GpuCtx::a100(), &comp, &v));
    assert_eq!(bits(&par), bits(&ser), "spmm_nm");

    let csr = Csr::from_dense_topk(&scores, 9);
    let par = spmm::spmm_csr(&mut GpuCtx::a100(), &csr, &v);
    let ser = rayon::with_serial(|| spmm::spmm_csr(&mut GpuCtx::a100(), &csr, &v));
    assert_eq!(bits(&par), bits(&ser), "spmm_csr");
}

#[test]
fn ell_pipeline_matches_serial_bitwise() {
    pin_pool();
    let (q, k, v) = qkv(64, 16, 5);
    let ell_map = BlockedEll::sliding_window(64, 64, 16, 2);
    let run = |ctx: &mut GpuCtx| {
        let mut a = ell::sddmm_ell_nm_fused(ctx, &q, &k, 0.25, NmPattern::P1_2, &ell_map);
        ell::softmax_ell_nm(ctx, &mut a);
        ell::spmm_ell_nm(ctx, &a, &v)
    };
    let par = run(&mut GpuCtx::a100());
    let ser = rayon::with_serial(|| run(&mut GpuCtx::a100()));
    assert_eq!(bits(&par), bits(&ser));
}

/// A stack of `batch` distinct random n×d panels.
fn stack(batch: usize, n: usize, d: usize, seed: u64) -> BatchedMatrix<f32> {
    let mut rng = Rng::new(seed);
    BatchedMatrix::random_normal(batch, n, d, 0.0, 1.0, &mut rng)
}

/// Assert one batched profile charges exactly `batch ×` the single-head
/// profile, in a single launch.
fn assert_batched_charge(batched: &KernelProfile, single: &KernelProfile, batch: u64, what: &str) {
    assert_eq!(batched.name, single.name, "{what}: kernel name");
    assert_eq!(batched.stage, single.stage, "{what}: stage");
    assert_eq!(
        batched.bytes_read,
        batch * single.bytes_read,
        "{what}: reads"
    );
    assert_eq!(
        batched.bytes_written,
        batch * single.bytes_written,
        "{what}: writes"
    );
    assert_eq!(batched.tc_macs, batch * single.tc_macs, "{what}: MACs");
    assert_eq!(batched.alu_ops, batch * single.alu_ops, "{what}: ALU ops");
    assert_eq!(batched.tc_class, single.tc_class, "{what}: tc class");
    assert_eq!(batched.launches, 1, "{what}: one launch per batched op");
}

/// Batched GEMMs: bit-identical to a serial per-panel loop; one profile of
/// exactly batch × the per-panel charge.
#[test]
fn batched_gemm_matches_serial_panel_loop() {
    pin_pool();
    // 35 rows: odd row-group tail; 37-wide B panels: odd column-tile tail.
    let (batch, m, n, d) = (5usize, 35usize, 37usize, 16usize);
    let a = stack(batch, m, d, 10);
    let b = stack(batch, n, d, 11);
    let mut bctx = GpuCtx::a100();
    let nt = gemm::gemm_nt_batched(&mut bctx, Stage::Qk, &a, &b, 0.25);
    let mut sctx = GpuCtx::a100();
    for p in 0..batch {
        let single = rayon::with_serial(|| {
            gemm::gemm_nt(&mut sctx, Stage::Qk, &a.to_panel(p), &b.to_panel(p), 0.25)
        });
        assert_eq!(bits(&nt.to_panel(p)), bits(&single), "gemm_nt panel {p}");
    }
    assert_eq!(bctx.timeline.entries().len(), 1);
    assert_batched_charge(
        &bctx.timeline.entries()[0],
        &sctx.timeline.entries()[0],
        batch as u64,
        "gemm_nt",
    );

    // NN: weights (batch×m×n) × V (batch×n×d).
    let w = stack(batch, m, n, 12);
    let v = stack(batch, n, d, 13);
    let mut bctx = GpuCtx::a100();
    let nn = gemm::gemm_nn_batched(&mut bctx, Stage::Av, &w, &v);
    let mut sctx = GpuCtx::a100();
    for p in 0..batch {
        let single = rayon::with_serial(|| {
            gemm::gemm_nn(&mut sctx, Stage::Av, &w.to_panel(p), &v.to_panel(p))
        });
        assert_eq!(bits(&nn.to_panel(p)), bits(&single), "gemm_nn panel {p}");
    }
    assert_batched_charge(
        &bctx.timeline.entries()[0],
        &sctx.timeline.entries()[0],
        batch as u64,
        "gemm_nn",
    );
}

/// Batched fused SDDMM (both hardware patterns): bit-identical nonzeros +
/// codes, exact batch × charge.
#[test]
fn batched_sddmm_matches_serial_panel_loop() {
    pin_pool();
    let (batch, n, d) = (4usize, 66usize, 32usize);
    for pattern in [NmPattern::P1_2, NmPattern::P2_4, NmPattern::new(1, 4)] {
        // 66 columns is not a multiple of 4; round the K stack to the
        // pattern's group size.
        let cols = n - n % pattern.m().max(2);
        let q = stack(batch, n, d, 20);
        let k = stack(batch, cols, d, 21);
        let mut bctx = GpuCtx::a100();
        let comp = sddmm::sddmm_nm_fused_batched(&mut bctx, &q, &k, 0.2, pattern);
        let mut sctx = GpuCtx::a100();
        for p in 0..batch {
            let single = rayon::with_serial(|| {
                sddmm::sddmm_nm_fused(&mut sctx, &q.to_panel(p), &k.to_panel(p), 0.2, pattern)
            });
            assert_eq!(comp.panel_codes(p), single.codes(), "{pattern} codes {p}");
            assert_eq!(
                bits(&comp.to_compressed(p).decompress()),
                bits(&single.decompress()),
                "{pattern} values {p}"
            );
        }
        assert_eq!(bctx.timeline.entries().len(), 1);
        assert_batched_charge(
            &bctx.timeline.entries()[0],
            &sctx.timeline.entries()[0],
            batch as u64,
            "sddmm_nm_fused",
        );
    }
}

/// Batched unfused SDDMM: same results as fused, with the two-kernel charge
/// exactly batch × the per-panel pair.
#[test]
fn batched_unfused_sddmm_matches_serial_panel_loop() {
    pin_pool();
    let (batch, n, d) = (3usize, 32usize, 16usize);
    let q = stack(batch, n, d, 30);
    let k = stack(batch, n, d, 31);
    let mut bctx = GpuCtx::a100();
    let comp = sddmm::sddmm_nm_unfused_batched(&mut bctx, &q, &k, 1.0, NmPattern::P1_2);
    let mut sctx = GpuCtx::a100();
    for p in 0..batch {
        let single = rayon::with_serial(|| {
            sddmm::sddmm_nm_unfused(
                &mut sctx,
                &q.to_panel(p),
                &k.to_panel(p),
                1.0,
                NmPattern::P1_2,
            )
        });
        assert_eq!(comp.panel_codes(p), single.codes(), "codes {p}");
        assert_eq!(
            bits(&comp.to_compressed(p).decompress()),
            bits(&single.decompress()),
            "values {p}"
        );
    }
    // Two launches (GEMM + prune), each exactly batch × the per-panel one.
    assert_eq!(bctx.timeline.entries().len(), 2);
    for j in 0..2 {
        assert_batched_charge(
            &bctx.timeline.entries()[j],
            &sctx.timeline.entries()[j],
            batch as u64,
            "sddmm_nm_unfused",
        );
    }
}

/// Batched softmax (dense + compressed): bit-identical rows, exact batch ×
/// charge.
#[test]
fn batched_softmax_matches_serial_panel_loop() {
    pin_pool();
    let (batch, n) = (4usize, 48usize);
    let scores = stack(batch, n, n, 40);
    let mut bctx = GpuCtx::a100();
    let dense = softmax::softmax_dense_batched(&mut bctx, &scores);
    let mut sctx = GpuCtx::a100();
    for p in 0..batch {
        let single = rayon::with_serial(|| softmax::softmax_dense(&mut sctx, &scores.to_panel(p)));
        assert_eq!(bits(&dense.to_panel(p)), bits(&single), "dense panel {p}");
    }
    assert_batched_charge(
        &bctx.timeline.entries()[0],
        &sctx.timeline.entries()[0],
        batch as u64,
        "softmax_dense",
    );

    let panels: Vec<NmCompressed<f32>> = (0..batch)
        .map(|p| NmCompressed::compress(&scores.to_panel(p), NmPattern::P1_2))
        .collect();
    let mut comp = dfss_nmsparse::NmBatch::from_panels(&panels);
    let mut bctx = GpuCtx::a100();
    softmax::softmax_nm_batched(&mut bctx, &mut comp);
    let mut sctx = GpuCtx::a100();
    for (p, panel) in panels.into_iter().enumerate() {
        let mut single = panel;
        rayon::with_serial(|| softmax::softmax_nm(&mut sctx, &mut single));
        assert_eq!(
            bits(&comp.to_compressed(p).decompress()),
            bits(&single.decompress()),
            "nm panel {p}"
        );
    }
    assert_batched_charge(
        &bctx.timeline.entries()[0],
        &sctx.timeline.entries()[0],
        batch as u64,
        "softmax_nm",
    );
}

/// Batched N:M SpMM (both patterns): bit-identical outputs, exact batch ×
/// charge.
#[test]
fn batched_spmm_matches_serial_panel_loop() {
    pin_pool();
    let (batch, n, d) = (4usize, 64usize, 24usize); // d=24: column-tile tail
    for pattern in [NmPattern::P1_2, NmPattern::P2_4] {
        let scores = stack(batch, n, n, 50);
        let v = stack(batch, n, d, 51);
        let panels: Vec<NmCompressed<f32>> = (0..batch)
            .map(|p| NmCompressed::compress(&scores.to_panel(p), pattern))
            .collect();
        let comp = dfss_nmsparse::NmBatch::from_panels(&panels);
        let mut bctx = GpuCtx::a100();
        let out = spmm::spmm_nm_batched(&mut bctx, &comp, &v);
        let mut sctx = GpuCtx::a100();
        for (p, panel) in panels.iter().enumerate() {
            let single = rayon::with_serial(|| spmm::spmm_nm(&mut sctx, panel, &v.to_panel(p)));
            assert_eq!(bits(&out.to_panel(p)), bits(&single), "{pattern} panel {p}");
        }
        assert_batched_charge(
            &bctx.timeline.entries()[0],
            &sctx.timeline.entries()[0],
            batch as u64,
            "spmm_nm",
        );
    }
}

/// Batched blocked-ELL pipeline: bit-identical end to end, exact batch ×
/// charge for all three launches.
#[test]
fn batched_ell_pipeline_matches_serial_panel_loop() {
    pin_pool();
    let (batch, n, d) = (3usize, 64usize, 16usize);
    let ell_map = BlockedEll::sliding_window(n, n, 16, 2);
    let q = stack(batch, n, d, 60);
    let k = stack(batch, n, d, 61);
    let v = stack(batch, n, d, 62);
    let mut bctx = GpuCtx::a100();
    let mut a = ell::sddmm_ell_nm_fused_batched(&mut bctx, &q, &k, 0.25, NmPattern::P1_2, &ell_map);
    ell::softmax_ell_nm_batched(&mut bctx, &mut a);
    let out = ell::spmm_ell_nm_batched(&mut bctx, &a, &v);

    let mut sctx = GpuCtx::a100();
    for p in 0..batch {
        let (single_a, single_o) = rayon::with_serial(|| {
            let mut sa = ell::sddmm_ell_nm_fused(
                &mut sctx,
                &q.to_panel(p),
                &k.to_panel(p),
                0.25,
                NmPattern::P1_2,
                &ell_map,
            );
            ell::softmax_ell_nm(&mut sctx, &mut sa);
            let so = ell::spmm_ell_nm(&mut sctx, &sa, &v.to_panel(p));
            (sa, so)
        });
        assert_eq!(
            a.packed.panel_codes(p),
            single_a.packed.codes(),
            "panel {p}"
        );
        assert_eq!(
            bits(&a.packed.to_compressed(p).decompress()),
            bits(&single_a.packed.decompress()),
            "packed values {p}"
        );
        assert_eq!(bits(&out.to_panel(p)), bits(&single_o), "output {p}");
    }
    assert_eq!(bctx.timeline.entries().len(), 3);
    for j in 0..3 {
        assert_batched_charge(
            &bctx.timeline.entries()[j],
            &sctx.timeline.entries()[j],
            batch as u64,
            "ell pipeline",
        );
    }
}

/// Charge-only batched launches record the identical profiles without
/// materialising any panel data.
#[test]
fn batched_charge_only_profiles_match_executed() {
    pin_pool();
    let (batch, n, d) = (4usize, 64usize, 32usize);
    let q = stack(batch, n, d, 70);
    let k = stack(batch, n, d, 71);
    let mut exec = GpuCtx::a100();
    let _ = sddmm::sddmm_nm_fused_batched(&mut exec, &q, &k, 0.125, NmPattern::P1_2);
    let mut charge = GpuCtx::a100_charge_only();
    let comp = sddmm::sddmm_nm_fused_batched(&mut charge, &q, &k, 0.125, NmPattern::P1_2);
    assert!(!comp.is_materialized());
    let (e, c) = (&exec.timeline.entries()[0], &charge.timeline.entries()[0]);
    assert_eq!(e.bytes_read, c.bytes_read);
    assert_eq!(e.bytes_written, c.bytes_written);
    assert_eq!(e.tc_macs, c.tc_macs);
    assert_eq!(e.alu_ops, c.alu_ops);
}

#[test]
fn nested_kernel_calls_do_not_deadlock() {
    pin_pool();
    use rayon::prelude::*;
    // Outer parallel loop over heads, each head running full parallel
    // kernels — the shape `dfss-transformer::attn` produces once batching
    // lands. Completion (rather than hanging) is the assertion.
    let outs: Vec<Matrix<f32>> = (0..4usize)
        .into_par_iter()
        .map(|h| {
            let (q, k, v) = qkv(48, 16, 100 + h as u64);
            let mut ctx = GpuCtx::a100();
            let mut a = sddmm::sddmm_nm_fused(&mut ctx, &q, &k, 0.25, NmPattern::P1_2);
            softmax::softmax_nm(&mut ctx, &mut a);
            spmm::spmm_nm(&mut ctx, &a, &v)
        })
        .collect();
    assert_eq!(outs.len(), 4);
    for (h, o) in outs.iter().enumerate() {
        // And each nested result matches its serial computation.
        let (q, k, v) = qkv(48, 16, 100 + h as u64);
        let expect = rayon::with_serial(|| {
            let mut ctx = GpuCtx::a100();
            let mut a = sddmm::sddmm_nm_fused(&mut ctx, &q, &k, 0.25, NmPattern::P1_2);
            softmax::softmax_nm(&mut ctx, &mut a);
            spmm::spmm_nm(&mut ctx, &a, &v)
        });
        assert_eq!(bits(o), bits(&expect), "head {h}");
    }
}

#[test]
fn kernel_panic_poisons_only_its_launch() {
    pin_pool();
    // A dimension-mismatch panic fires *inside* the launch path. It must
    // propagate to the caller…
    let boom = std::panic::catch_unwind(|| {
        let a = Matrix::<f32>::zeros(64, 3);
        let b = Matrix::<f32>::zeros(64, 4);
        let _ = gemm::gemm_nt(&mut GpuCtx::a100(), Stage::Qk, &a, &b, 1.0);
    });
    assert!(boom.is_err());
    // …and the pool must keep serving kernels afterwards.
    let (q, k, _) = qkv(64, 32, 6);
    let c = gemm::gemm_nt(&mut GpuCtx::a100(), Stage::Qk, &q, &k, 1.0);
    let reference =
        rayon::with_serial(|| gemm::gemm_nt(&mut GpuCtx::a100(), Stage::Qk, &q, &k, 1.0));
    assert_eq!(bits(&c), bits(&reference));
    assert!(rayon::spawned_workers() <= rayon::current_num_threads());
}
