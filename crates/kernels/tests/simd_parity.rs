//! Bit-parity gauntlet: every SIMD microkernel backend available on this
//! host must produce **bitwise identical** results to the always-compiled
//! scalar reference, for every microkernel, over adversarial lengths.
//!
//! This is the contract that lets `DFSS_SIMD` pick a backend freely
//! without perturbing a single downstream test, proptest, or golden
//! artifact: the vector kernels keep the scalar reference's reduction
//! trees and never contract mul+add into FMA, so regrouping into lanes is
//! the *only* transformation — and the references are written in the same
//! lane-blocked order.
//!
//! Lengths cover 0, 1, lane−1, lane, lane+1, tail-only, exact multiples,
//! multiples±1 and large-ish odd sizes, for both the 8-lane (AVX2/NEON
//! pairs) and 16-lane (AVX-512) widths.

use dfss_kernels::simd::{
    self, axpy2_ref, axpy_ref, axpy_widen, axpy_widen_ref, dot_ref, dot_widen, dot_widen_ref,
    panel_tile_ref, row_max_ref, Backend,
};
use dfss_tensor::{Bf16, Rng};

/// Every backend the host CPU can actually run (always includes Scalar).
fn available_backends() -> Vec<Backend> {
    [
        Backend::Scalar,
        Backend::Avx2,
        Backend::Avx512,
        Backend::Neon,
    ]
    .into_iter()
    .filter(|b| b.available())
    .collect()
}

/// Adversarial slice lengths around both vector widths.
const LENGTHS: &[usize] = &[
    0, 1, 2, 7, 8, 9, 15, 16, 17, 23, 24, 25, 31, 32, 33, 63, 64, 65, 100, 127, 257,
];

fn vec_of(len: usize, rng: &mut Rng) -> Vec<f32> {
    (0..len).map(|_| rng.normal(0.0, 1.0)).collect()
}

#[test]
fn dot_is_bit_identical_across_backends() {
    let mut rng = Rng::new(0xD07);
    for &len in LENGTHS {
        let a = vec_of(len, &mut rng);
        let b = vec_of(len, &mut rng);
        let want = dot_ref(&a, &b);
        for backend in available_backends() {
            let got = backend.dot(&a, &b);
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "dot len {len} on {}: {got} != {want}",
                backend.name()
            );
        }
    }
}

#[test]
fn axpy_is_bit_identical_across_backends() {
    let mut rng = Rng::new(0xA11);
    for &len in LENGTHS {
        let row = vec_of(len, &mut rng);
        let acc0 = vec_of(len, &mut rng);
        let s = rng.normal(0.0, 1.0);
        let mut want = acc0.clone();
        axpy_ref(&mut want, s, &row);
        for backend in available_backends() {
            let mut got = acc0.clone();
            backend.axpy(&mut got, s, &row);
            let same = got
                .iter()
                .zip(&want)
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "axpy len {len} diverged on {}", backend.name());
        }
    }
}

#[test]
fn axpy2_is_bit_identical_across_backends() {
    let mut rng = Rng::new(0xA22);
    for &len in LENGTHS {
        let row = vec_of(len, &mut rng);
        let acc0 = vec_of(len, &mut rng);
        let acc1 = vec_of(len, &mut rng);
        let (s0, s1) = (rng.normal(0.0, 1.0), rng.normal(0.0, 1.0));
        let (mut w0, mut w1) = (acc0.clone(), acc1.clone());
        axpy2_ref(&mut w0, &mut w1, s0, s1, &row);
        for backend in available_backends() {
            let (mut g0, mut g1) = (acc0.clone(), acc1.clone());
            backend.axpy2(&mut g0, &mut g1, s0, s1, &row);
            let same = g0
                .iter()
                .zip(&w0)
                .chain(g1.iter().zip(&w1))
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "axpy2 len {len} diverged on {}", backend.name());
        }
    }
}

#[test]
fn panel_tile_is_bit_identical_across_backends() {
    // One register tile: rcnt rows × w≤16 columns over ka packed steps.
    // Element-wise mul+add per k step, so any lane width is exact — but
    // the tails (w < 16, rcnt < 4) are where the masking bugs live.
    let mut rng = Rng::new(0x7113);
    for &ka in &[1usize, 2, 3, 7, 8, 9, 33] {
        for rcnt in 1usize..=4 {
            for &w in &[1usize, 7, 8, 9, 15, 16] {
                let rows: Vec<Vec<f32>> = (0..4).map(|_| vec_of(ka, &mut rng)).collect();
                let arows: [&[f32]; 4] =
                    [&rows[0], &rows[1], &rows[2], &rows[3]].map(|r: &Vec<f32>| r.as_slice());
                let block = vec_of(ka * 16, &mut rng);
                let n = 24usize; // acc stride wider than the tile
                let j0 = 3usize;
                let mut want = vec![0.0f32; 4 * n];
                panel_tile_ref(&arows, rcnt, &block, n, j0, w, &mut want);
                for backend in available_backends() {
                    let mut got = vec![0.0f32; 4 * n];
                    backend.panel_tile(&arows, rcnt, &block, n, j0, w, &mut got);
                    let same = got
                        .iter()
                        .zip(&want)
                        .all(|(x, y)| x.to_bits() == y.to_bits());
                    assert!(
                        same,
                        "panel_tile ka={ka} rcnt={rcnt} w={w} diverged on {}",
                        backend.name()
                    );
                }
            }
        }
    }
}

#[test]
fn row_max_is_bit_identical_across_backends() {
    let mut rng = Rng::new(0x3A);
    for &len in LENGTHS {
        let mut buf = vec_of(len, &mut rng);
        if len > 2 {
            buf[len / 2] = f32::NEG_INFINITY;
            buf[len - 1] = 100.0;
        }
        let want = row_max_ref(&buf);
        for backend in available_backends() {
            let got = backend.row_max(&buf);
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "row_max len {len} on {}",
                backend.name()
            );
        }
    }
}

#[test]
fn dot_widen_f32_is_bit_identical_across_backends() {
    // S = f32 runs the TF32-truncating widen (to_mul) inside the dot.
    let mut rng = Rng::new(0x1F32);
    for &len in LENGTHS {
        let q = vec_of(len, &mut rng);
        let row = vec_of(len, &mut rng);
        let want = dot_widen_ref::<f32>(&q, &row);
        for backend in available_backends() {
            let got = dot_widen::<f32>(backend, &q, &row);
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "dot_widen<f32> len {len} on {}",
                backend.name()
            );
        }
    }
}

#[test]
fn dot_widen_bf16_is_bit_identical_across_backends() {
    let mut rng = Rng::new(0x1B16);
    for &len in LENGTHS {
        let q = vec_of(len, &mut rng);
        let row: Vec<Bf16> = (0..len)
            .map(|_| Bf16::from_f32(rng.normal(0.0, 1.0)))
            .collect();
        let want = dot_widen_ref::<Bf16>(&q, &row);
        for backend in available_backends() {
            let got = dot_widen::<Bf16>(backend, &q, &row);
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "dot_widen<Bf16> len {len} on {}",
                backend.name()
            );
        }
    }
}

#[test]
fn axpy_widen_is_bit_identical_across_backends_for_both_dtypes() {
    let mut rng = Rng::new(0xA3);
    for &len in LENGTHS {
        let row_f: Vec<f32> = vec_of(len, &mut rng);
        let row_b: Vec<Bf16> = (0..len)
            .map(|_| Bf16::from_f32(rng.normal(0.0, 1.0)))
            .collect();
        let acc0 = vec_of(len, &mut rng);
        let s = rng.normal(0.0, 1.0);
        let mut want_f = acc0.clone();
        axpy_widen_ref::<f32>(&mut want_f, s, &row_f);
        let mut want_b = acc0.clone();
        axpy_widen_ref::<Bf16>(&mut want_b, s, &row_b);
        for backend in available_backends() {
            let mut got = acc0.clone();
            axpy_widen::<f32>(backend, &mut got, s, &row_f);
            let same = got
                .iter()
                .zip(&want_f)
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(
                same,
                "axpy_widen<f32> len {len} diverged on {}",
                backend.name()
            );
            let mut got = acc0.clone();
            axpy_widen::<Bf16>(backend, &mut got, s, &row_b);
            let same = got
                .iter()
                .zip(&want_b)
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(
                same,
                "axpy_widen<Bf16> len {len} diverged on {}",
                backend.name()
            );
        }
    }
}

#[test]
fn tf32_widen_preserves_nan_and_infinity_lanes() {
    // The SIMD TF32 rounding uses an integer add on the exponent/mantissa
    // bits — a naive version corrupts NaN payloads and can carry Inf into
    // NaN. Specials must pass through on every backend, in every lane
    // position of a vector body (not just the scalar tail).
    //
    // When several distinct NaNs meet in one reduction (a propagated qNaN
    // and the `inf + -inf` indefinite), *which payload* survives depends
    // on the operand order LLVM happens to emit for each fadd — it is not
    // stable even scalar-vs-scalar across inlining contexts. NaN-ness is
    // the contract there, payload bits are not; everything non-NaN
    // (including exact ±inf and MAX overflowing to inf under TF32
    // rounding) must still match bitwise.
    let specials = [
        f32::NAN,
        f32::INFINITY,
        f32::NEG_INFINITY,
        f32::MAX,
        1.000_000_1,
    ];
    for lane in 0..8 {
        let mut row = vec![1.0f32; 16];
        for (off, &s) in specials.iter().enumerate() {
            row[(lane + off * 3) % 16] = s;
        }
        let q = vec![1.0f32; 16];
        let want = dot_widen_ref::<f32>(&q, &row);
        for backend in available_backends() {
            let got = dot_widen::<f32>(backend, &q, &row);
            if want.is_nan() {
                assert!(
                    got.is_nan(),
                    "specials at lane {lane} on {}: lost the NaN ({got})",
                    backend.name()
                );
            } else {
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "specials at lane {lane} diverged on {}",
                    backend.name()
                );
            }
        }
    }
    // Single-special rows exercise each passthrough without NaN-vs-NaN
    // ambiguity: at most one NaN source means every fadd has at most one
    // NaN operand and the result is deterministic — full bit parity.
    for &s in &specials {
        for pos in [0usize, 5, 8, 15] {
            let mut row = vec![1.0f32; 16];
            row[pos] = s;
            let q = vec![1.0f32; 16];
            let want = dot_widen_ref::<f32>(&q, &row);
            for backend in available_backends() {
                let got = dot_widen::<f32>(backend, &q, &row);
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "single special {s:?} at {pos} diverged on {}",
                    backend.name()
                );
            }
        }
    }
}

#[test]
fn forcing_each_available_backend_runs_the_full_dispatched_surface() {
    // Drive the public micro-kernel entry points (the ones production code
    // calls) under each forced backend and compare against Scalar-forced
    // runs: the dispatcher must route every family, not just the ones the
    // unit tests above touch directly.
    let mut rng = Rng::new(0xF0);
    let a = vec_of(100, &mut rng);
    let b = vec_of(100, &mut rng);
    let acc0 = vec_of(100, &mut rng);
    let s = rng.normal(0.0, 1.0);
    simd::force(Some(Backend::Scalar));
    let want_dot = dfss_kernels::micro::dot(&a, &b);
    let mut want_axpy = acc0.clone();
    dfss_kernels::micro::axpy(&mut want_axpy, s, &a);
    for backend in available_backends() {
        simd::force(Some(backend));
        assert_eq!(simd::active(), backend);
        let got_dot = dfss_kernels::micro::dot(&a, &b);
        assert_eq!(got_dot.to_bits(), want_dot.to_bits(), "{}", backend.name());
        let mut got_axpy = acc0.clone();
        dfss_kernels::micro::axpy(&mut got_axpy, s, &a);
        let same = got_axpy
            .iter()
            .zip(&want_axpy)
            .all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(same, "micro::axpy diverged under forced {}", backend.name());
    }
    simd::force(None);
}
