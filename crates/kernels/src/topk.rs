//! Explicit top-k selection + CSR encoding — the baseline's runtime cost.
//!
//! §4.3: "the top-k operator is difficult to parallel and introduces high
//! overhead", and §2.3 notes the sparse encoding must be generated in "a
//! special format such that the metadata can be used efficiently later".
//! This kernel performs both steps and charges them honestly:
//!
//! * traffic — one full read of the dense n×n scores plus the CSR write
//!   (values, 4-byte column indices, row pointers);
//! * compute — a bitonic-style selection network of `cols·log²(cols)/2`
//!   comparators per row (the standard GPU top-k approach when k is not
//!   tiny), which is what makes the *executed* top-k curve in Figure 11 sit
//!   far below its oracle bound.

use crate::GpuCtx;
use dfss_gpusim::{KernelProfile, Stage};
use dfss_nmsparse::Csr;
use dfss_tensor::{Matrix, Scalar};

/// Select the k largest entries of each row and encode the result as CSR.
pub fn topk_csr<T: Scalar>(ctx: &mut GpuCtx, scores: &Matrix<T>, k: usize) -> Csr<T> {
    let (rows, cols) = scores.shape();
    let csr = if ctx.exec {
        Csr::from_dense_topk(scores, k)
    } else {
        // Charge-only: structurally equivalent CSR (first k columns).
        Csr::from_dense_where(scores, |_, c, _| c < k)
    };

    let log2c = (usize::BITS - cols.max(2).leading_zeros()) as u64;
    let select_ops = rows as u64 * cols as u64 * log2c * log2c / 2;
    ctx.record(
        KernelProfile::new("topk_select_encode", Stage::Overhead)
            .with_traffic(scores.bytes() as u64, csr.bytes() as u64)
            .with_alu(select_ops),
    );
    csr
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfss_tensor::Rng;

    #[test]
    fn selects_k_largest_per_row() {
        let mut rng = Rng::new(1);
        let s = Matrix::<f32>::random_normal(16, 64, 0.0, 1.0, &mut rng);
        let mut ctx = GpuCtx::a100();
        let csr = topk_csr(&mut ctx, &s, 5);
        for r in 0..16 {
            let (_, vals) = csr.row(r);
            assert_eq!(vals.len(), 5);
            let mut sorted: Vec<f32> = s.row(r).to_vec();
            sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
            let thresh = sorted[4];
            assert!(vals.iter().all(|&v| v >= thresh));
        }
    }

    #[test]
    fn overhead_grows_superlinearly_with_row_length() {
        let mut rng = Rng::new(2);
        let small = Matrix::<f32>::random_normal(64, 64, 0.0, 1.0, &mut rng);
        let large = Matrix::<f32>::random_normal(64, 1024, 0.0, 1.0, &mut rng);
        let mut c1 = GpuCtx::a100();
        let mut c2 = GpuCtx::a100();
        let _ = topk_csr(&mut c1, &small, 8);
        let _ = topk_csr(&mut c2, &large, 8);
        let ops1 = c1.timeline.entries()[0].alu_ops as f64;
        let ops2 = c2.timeline.entries()[0].alu_ops as f64;
        // 16× the columns should cost more than 16× the ops (log² factor).
        assert!(ops2 / ops1 > 16.0, "ratio {}", ops2 / ops1);
    }

    #[test]
    fn recorded_as_overhead_stage() {
        let s = Matrix::<f32>::zeros(32, 32);
        let mut ctx = GpuCtx::a100();
        let _ = topk_csr(&mut ctx, &s, 4);
        assert_eq!(ctx.timeline.entries()[0].stage, Stage::Overhead);
        assert!(ctx.timeline.stage_latency(Stage::Overhead, &ctx.dev) > 0.0);
    }
}
