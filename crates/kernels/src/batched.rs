//! Shared plumbing for the batched B×H kernel entry points.
//!
//! A batched kernel processes the whole batch × heads volume in **one
//! simulated launch**: it records a single [`KernelProfile`] whose counters
//! are exactly `batch ×` the per-panel charge (shape work such as
//! `GpuCtx::tile_for` runs once per launch, not once per head), and executes
//! as **one pool fan-out** over (panel, row-tile) work items — the host
//! analogue of FlashAttention-style kernels folding the (batch, head) grid
//! into the launch grid.
//!
//! [`KernelProfile`]: dfss_gpusim::KernelProfile

use rayon::prelude::*;

/// Rows per (panel, row-tile) work item of a batched launch (matches the
/// single-head kernels' row batching so work-item granularity is familiar).
pub(crate) const ROW_TILE: usize = 16;

/// Fan out over (panel, row-tile) work items of a stacked output buffer.
///
/// `out` is `batch` panels of `panel_elems` contiguous elements; each panel
/// is cut into `chunk_elems`-sized tiles (the panel tail may be shorter) and
/// every `(panel, tile)` pair becomes one pool work item. The callback
/// receives `(panel_index, element_offset_within_panel, tile_slice)`.
pub(crate) fn fan_out<T: Send>(
    out: &mut [T],
    panel_elems: usize,
    chunk_elems: usize,
    f: impl Fn(usize, usize, &mut [T]) + Sync,
) {
    let items: Vec<(usize, usize, &mut [T])> = out
        .chunks_mut(panel_elems.max(1))
        .enumerate()
        .flat_map(|(p, panel)| {
            panel
                .chunks_mut(chunk_elems.max(1))
                .enumerate()
                .map(move |(ci, chunk)| (p, ci * chunk_elems, chunk))
        })
        .collect();
    items
        .into_par_iter()
        .for_each(|(p, elem0, chunk)| f(p, elem0, chunk));
}

/// Two-buffer variant of [`fan_out`] for kernels that emit paired streams
/// (the fused SDDMM's nonzeros + metadata): both buffers are cut at the same
/// row boundaries and handed to the callback together.
pub(crate) fn fan_out2<A: Send, B: Send>(
    out_a: &mut [A],
    panel_elems_a: usize,
    chunk_elems_a: usize,
    out_b: &mut [B],
    panel_elems_b: usize,
    chunk_elems_b: usize,
    f: impl Fn(usize, usize, &mut [A], &mut [B]) + Sync,
) {
    let items: Vec<(usize, usize, &mut [A], &mut [B])> = out_a
        .chunks_mut(panel_elems_a.max(1))
        .zip(out_b.chunks_mut(panel_elems_b.max(1)))
        .enumerate()
        .flat_map(|(p, (panel_a, panel_b))| {
            panel_a
                .chunks_mut(chunk_elems_a.max(1))
                .zip(panel_b.chunks_mut(chunk_elems_b.max(1)))
                .enumerate()
                .map(move |(ci, (ca, cb))| (p, ci * chunk_elems_a, ca, cb))
        })
        .collect();
    items
        .into_par_iter()
        .for_each(|(p, elem0, ca, cb)| f(p, elem0, ca, cb));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_out_covers_every_panel_and_tile() {
        let mut out = vec![0u32; 3 * 10];
        fan_out(&mut out, 10, 4, |p, e0, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (p * 100 + e0 + i) as u32;
            }
        });
        for p in 0..3 {
            for e in 0..10 {
                assert_eq!(out[p * 10 + e], (p * 100 + e) as u32);
            }
        }
    }

    #[test]
    fn fan_out2_keeps_streams_aligned() {
        let mut a = vec![0u32; 2 * 8];
        let mut b = vec![0u8; 2 * 4];
        fan_out2(&mut a, 8, 4, &mut b, 4, 2, |p, e0, ca, cb| {
            assert_eq!(ca.len() / 2, cb.len());
            for v in ca.iter_mut() {
                *v = (p * 10 + e0 / 4) as u32;
            }
            for v in cb.iter_mut() {
                *v = (p * 10 + e0 / 4) as u8;
            }
        });
        assert_eq!(a[..4], [0, 0, 0, 0]);
        assert_eq!(a[4..8], [1, 1, 1, 1]);
        assert_eq!(b[4..6], [10, 10]);
        assert_eq!(b[6..8], [11, 11]);
    }
}
