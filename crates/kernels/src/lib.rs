//! # dfss-kernels — device kernels over the simulated GPU
//!
//! Rust ports of the paper's CUDA kernels. Each kernel both *executes* (on
//! CPU threads via rayon, preserving the paper's tile structure) and *charges*
//! the [`dfss_gpusim`] cost model for the global-memory traffic and
//! tensor-core MACs the real kernel would incur. The headline kernel is
//! [`sddmm::sddmm_nm_fused`]: a dense Q·Kᵀ GEMM whose epilogue prunes the
//! accumulator tiles to N:M sparsity and emits nonzeros + metadata directly,
//! never writing the dense score matrix — the paper's "first operator in the
//! deep learning software stack that dynamically prunes a dense matrix and
//! generates its sparse encoding with zero overhead" (§3.4).
//!
//! Kernel inventory:
//! * [`gemm`] — tiled dense GEMM (`NT`, `NN`, `TN` layouts), f32 accumulate,
//!   TF32 input rounding on the `float` path.
//! * [`sddmm`] — fused SDDMM + N:M prune epilogue, the unfused ablation, and
//!   the standalone dense-prune kernel.
//! * [`softmax`] — dense softmax, compressed N:M softmax (half-length rows),
//!   CSR softmax; register-cached vs streaming traffic per row length.
//! * [`spmm`] — N:M SpMM on the simulated sparse tensor core, CSR SpMM with
//!   the vector tiling of Figure 10(B), blocked-ELL × N:M hybrid SpMM.
//! * [`topk`] — explicit top-k row selection + CSR encoding, charged
//!   honestly (it is the overhead §4.3 says sinks the top-k baseline).
//! * [`ctx`] — the [`GpuCtx`] bundle of device config, kernel timeline and
//!   memory tracker threaded through every kernel.
//! * [`simd`] — explicit-SIMD microkernel backends (AVX2 / AVX-512 / NEON)
//!   with one-time runtime dispatch; every hot loop above routes through it.

pub mod batched;
pub mod ctx;
pub(crate) mod decode;
pub mod ell;
pub mod gemm;
pub mod micro;
pub mod sddmm;
pub mod simd;
pub mod softmax;
pub mod spmm;
pub mod topk;

pub use ctx::GpuCtx;
