//! Hybrid blocked-ELL × N:M kernels (Appendix A.1.2, "Blocked-ELL
//! Sparsity").
//!
//! "Under long sequence length, higher sparsity is desired … Our kernel
//! supports hybrid blocked-ELL sparsity and 50% structured sparsity. We set
//! the block size in blocked-ELL to the thread block tile size of the GEMM.
//! Therefore, we can simply skip those pruned blocks during the execution."
//!
//! The compressed result is stored *packed*: each row keeps only the
//! `ell_width · block` columns of its active blocks, pruned N:M within.
//! [`EllNm`] carries the packing map so SpMM can gather the right V rows.

use crate::ctx::{dense_class, sparse_class, GpuCtx};
use crate::micro;
use crate::spmm::ROW_CHUNK;
use dfss_gpusim::{KernelProfile, Stage};
use dfss_nmsparse::{BlockedEll, NmBatch, NmCompressed, NmPattern};
use dfss_tensor::{scratch_f32, scratch_f32_stale, BatchedMatrix, Matrix, Scalar};
use rayon::prelude::*;

/// An attention weight matrix under hybrid blocked-ELL × N:M sparsity.
#[derive(Clone, Debug)]
pub struct EllNm<T> {
    /// Which column blocks are active per row block.
    pub ell: BlockedEll,
    /// N:M-compressed scores over the packed active columns
    /// (`rows × (ell_width·block)` logical dense).
    pub packed: NmCompressed<T>,
}

impl<T: Scalar> EllNm<T> {
    /// Dense column index of packed column `pc` for a row in row-block `rb`.
    #[inline]
    pub fn dense_col(&self, rb: usize, pc: usize) -> usize {
        let b = self.ell.block();
        let active = self.ell.row_active(rb);
        active[pc / b] as usize * b + pc % b
    }

    /// Overall density (active fraction × N/M).
    pub fn density(&self) -> f64 {
        self.ell.hybrid_density(self.packed.pattern().density())
    }

    /// Total compressed bytes (nonzeros + N:M metadata + ELL table).
    pub fn bytes(&self) -> usize {
        self.packed.bytes() + self.ell.row_blocks() * self.ell.ell_width() * 4
    }
}

/// Per-panel cost counters of the hybrid fused SDDMM (shared by the single
/// and batched entry points so the batched charge is exactly `batch ×`
/// this).
fn ell_sddmm_charge<T: Scalar>(
    ell: &BlockedEll,
    rows: usize,
    d: usize,
    pattern: NmPattern,
) -> (u64, u64, u64, u64) {
    let b = ell.block();
    let packed_cols = ell.ell_width() * b;
    let kept_per_row = pattern.kept_per_row(packed_cols);
    let groups_per_row = packed_cols / pattern.m();
    let active_tiles = (ell.row_blocks() * ell.ell_width()) as u64;
    let reads = active_tiles * (2 * b * d) as u64 * T::BYTES as u64;
    let nz_bytes = (rows * kept_per_row * T::BYTES) as u64;
    let meta_bytes = ((rows * groups_per_row) as u64 * 4).div_ceil(8);
    let macs = active_tiles * (b * b * d) as u64;
    let groups = (rows * groups_per_row) as u64;
    (reads, nz_bytes + meta_bytes, macs, groups)
}

/// Fused SDDMM + N:M prune restricted to the active blocks of `ell`.
///
/// Inactive blocks are never computed (their tiles are skipped in the launch
/// grid), never written, and act as −∞ for the subsequent softmax.
pub fn sddmm_ell_nm_fused<T: Scalar>(
    ctx: &mut GpuCtx,
    q: &Matrix<T>,
    k: &Matrix<T>,
    scale: f32,
    pattern: NmPattern,
    ell: &BlockedEll,
) -> EllNm<T> {
    let (rows, d) = q.shape();
    let (kn, dk) = k.shape();
    assert_eq!(d, dk);
    assert_eq!(rows, ell.rows());
    assert_eq!(kn, ell.cols());
    let b = ell.block();
    assert_eq!(b % pattern.m(), 0, "block size must be a multiple of M");

    let packed_cols = ell.ell_width() * b;
    let kept_per_row = pattern.kept_per_row(packed_cols);
    let groups_per_row = packed_cols / pattern.m();

    // Simulated cost: only active tiles compute & load operands.
    let (reads, writes, macs, groups) = ell_sddmm_charge::<T>(ell, rows, d, pattern);
    ctx.record(
        KernelProfile::new("sddmm_ell_nm_fused", Stage::Qk)
            .with_traffic(reads, writes)
            .with_tc(macs, dense_class::<T>())
            .with_alu(groups * 12),
    );

    if !ctx.exec {
        let code = (0..pattern.n()).fold(0u8, |acc, i| acc | (1 << i));
        return EllNm {
            ell: ell.clone(),
            packed: NmCompressed::from_parts(
                pattern,
                rows,
                packed_cols,
                vec![T::zero(); rows * kept_per_row],
                vec![code; rows * groups_per_row],
            ),
        };
    }
    // Execution: per row, compute scores for active blocks only, packed.
    // Scores accumulate as an outer product over the widen-transposed K
    // panel — the same `axpy` microkernel (same serial-k-order sums) as the
    // dense GEMM and plain fused SDDMM, so packed scores are bit-identical
    // to theirs.
    let qw = micro::widen(q);
    let kt = micro::widen_transposed(k);
    let mut nonzeros = vec![T::zero(); rows * kept_per_row];
    let mut codes = vec![0u8; rows * groups_per_row];

    nonzeros
        .par_chunks_mut(kept_per_row)
        .zip(codes.par_chunks_mut(groups_per_row))
        .enumerate()
        .for_each(|(i, (nz_row, code_row))| {
            let mut acc = scratch_f32(packed_cols);
            ell_sddmm_row(
                &qw[i * d..(i + 1) * d],
                &kt,
                kn,
                ell,
                i / b,
                b,
                pattern,
                scale,
                &mut acc,
                nz_row,
                code_row,
            );
        });

    EllNm {
        ell: ell.clone(),
        packed: NmCompressed::from_parts(pattern, rows, packed_cols, nonzeros, codes),
    }
}

/// One packed score row of the hybrid SDDMM: active-block outer-product
/// accumulation into `acc` (caller-zeroed) followed by the N:M prune.
/// Shared by the single-head and batched entry points so both produce
/// bit-identical rows.
#[allow(clippy::too_many_arguments)]
fn ell_sddmm_row<T: Scalar>(
    qrow: &[f32],
    kt: &[f32],
    kn: usize,
    ell: &BlockedEll,
    rb: usize,
    b: usize,
    pattern: NmPattern,
    scale: f32,
    acc: &mut [f32],
    nz_row: &mut [T],
    code_row: &mut [u8],
) {
    for (kk, &qv) in qrow.iter().enumerate() {
        let krow = &kt[kk * kn..(kk + 1) * kn];
        for (slot, &cb) in ell.row_active(rb).iter().enumerate() {
            let col0 = cb as usize * b;
            micro::axpy(
                &mut acc[slot * b..(slot + 1) * b],
                qv,
                &krow[col0..col0 + b],
            );
        }
    }
    // Prune the packed row.
    let mut nz_pos = 0usize;
    let mut kept = [0usize; dfss_nmsparse::MAX_M];
    for (g, chunk) in acc.chunks_exact(pattern.m()).enumerate() {
        let n_kept = pattern.select_group_into(chunk, &mut kept);
        let mut code = 0u8;
        for &kidx in &kept[..n_kept] {
            code |= 1 << kidx;
            nz_row[nz_pos] = T::from_acc(chunk[kidx] * scale);
            nz_pos += 1;
        }
        code_row[g] = code;
    }
}

/// Softmax over the packed compressed rows (inactive blocks contribute
/// nothing, kept entries normalise to 1).
pub fn softmax_ell_nm<T: Scalar>(ctx: &mut GpuCtx, a: &mut EllNm<T>) {
    crate::softmax::softmax_nm(ctx, &mut a.packed);
}

/// Per-panel cost counters of the hybrid SpMM (tiling computed once, shared
/// by the single and batched entry points).
fn ell_spmm_charge<T: Scalar>(
    ctx: &GpuCtx,
    ell: &BlockedEll,
    rows: usize,
    d: usize,
    kept_per_row: usize,
    groups_per_row: usize,
) -> (u64, u64, u64) {
    // Like spmm_nm but only active-block V panels are loaded.
    let tm = ctx.tile_for(rows) as u64;
    let tiles_m = (rows as u64).div_ceil(tm);
    let kept_row_bytes = (kept_per_row * T::BYTES) as u64;
    let meta_row_bytes = (groups_per_row as u64 * 4).div_ceil(8);
    let packed_inner = (ell.ell_width() * ell.block()) as u64;
    let v_panel = packed_inner * d as u64 * T::BYTES as u64;
    let reads = tiles_m * (tm * (kept_row_bytes + meta_row_bytes) + v_panel);
    let writes = (rows * d * T::BYTES) as u64;
    let phys_macs = (rows * kept_per_row * d) as u64;
    (reads, writes, phys_macs)
}

/// One output row of the hybrid SpMM (shared single/batched): packed scan,
/// dense-column gather, `axpy` into the caller's zeroed accumulator.
fn ell_spmm_row<T: Scalar>(
    packed_row: impl FnOnce(&mut dyn FnMut(usize, T)),
    ell: &BlockedEll,
    rb: usize,
    vw: &[f32],
    d: usize,
    acc: &mut [f32],
    orow: &mut [T],
) {
    let b = ell.block();
    acc.iter_mut().for_each(|x| *x = 0.0);
    packed_row(&mut |pc, val: T| {
        let active = ell.row_active(rb);
        let col = active[pc / b] as usize * b + pc % b;
        micro::axpy(acc, val.to_mul(), &vw[col * d..(col + 1) * d]);
    });
    for (o, &x) in orow.iter_mut().zip(acc.iter()) {
        *o = T::from_acc(x);
    }
}

/// `O = Aᶜ · V` for hybrid blocked-ELL × N:M `A`.
pub fn spmm_ell_nm<T: Scalar>(ctx: &mut GpuCtx, a: &EllNm<T>, v: &Matrix<T>) -> Matrix<T> {
    let rows = a.packed.rows();
    let (vr, d) = v.shape();
    assert_eq!(vr, a.ell.cols());
    let b = a.ell.block();

    let (reads, writes, phys_macs) = ell_spmm_charge::<T>(
        ctx,
        &a.ell,
        rows,
        d,
        a.packed.kept_per_row(),
        a.packed.groups_per_row(),
    );
    ctx.record(
        KernelProfile::new("spmm_ell_nm", Stage::Av)
            .with_traffic(reads, writes)
            .with_tc(phys_macs, sparse_class::<T>()),
    );
    if !ctx.exec {
        return Matrix::zeros(rows, d);
    }

    let vw = micro::widen(v);
    let mut out = vec![T::zero(); rows * d];
    // Batch rows per work item (one scratch accumulator per chunk).
    out.par_chunks_mut(d * ROW_CHUNK)
        .enumerate()
        .for_each(|(ci, chunk)| {
            let mut acc = scratch_f32_stale(d);
            for (local, orow) in chunk.chunks_mut(d).enumerate() {
                let r = ci * ROW_CHUNK + local;
                ell_spmm_row(
                    |f| a.packed.scan_row(r, f),
                    &a.ell,
                    r / b,
                    &vw,
                    d,
                    &mut acc,
                    orow,
                );
            }
        });
    Matrix::from_vec(rows, d, out)
}

/// An attention weight stack under hybrid blocked-ELL × N:M sparsity: one
/// shared block map (the ELL pattern is shape-derived, identical across
/// heads) over a batched packed compressed stack.
#[derive(Clone, Debug)]
pub struct EllNmBatch<T> {
    /// Which column blocks are active per row block (shared by every panel).
    pub ell: BlockedEll,
    /// N:M-compressed packed scores for every panel.
    pub packed: NmBatch<T>,
}

impl<T: Scalar> EllNmBatch<T> {
    /// Copy panel `b` out as a standalone [`EllNm`].
    pub fn to_ell_nm(&self, b: usize) -> EllNm<T> {
        EllNm {
            ell: self.ell.clone(),
            packed: self.packed.to_compressed(b),
        }
    }

    /// Overall density (active fraction × N/M).
    pub fn density(&self) -> f64 {
        self.ell.hybrid_density(self.packed.pattern().density())
    }

    /// Total compressed bytes across the stack (nonzeros + N:M metadata +
    /// the shared ELL table).
    pub fn bytes(&self) -> usize {
        self.packed.bytes() + self.ell.row_blocks() * self.ell.ell_width() * 4
    }
}

/// Batched hybrid fused SDDMM over a whole B×H stack in **one launch**: a
/// single profile of exactly `batch ×` the per-panel
/// [`sddmm_ell_nm_fused`] cost and one pool fan-out over (panel, row-tile)
/// work items. Bit-identical to a per-panel loop.
pub fn sddmm_ell_nm_fused_batched<T: Scalar>(
    ctx: &mut GpuCtx,
    q: &BatchedMatrix<T>,
    k: &BatchedMatrix<T>,
    scale: f32,
    pattern: NmPattern,
    ell: &BlockedEll,
) -> EllNmBatch<T> {
    let (batch, rows, d) = q.shape();
    let (bb, kn, dk) = k.shape();
    assert_eq!(batch, bb, "batch sizes differ");
    assert_eq!(d, dk);
    assert_eq!(rows, ell.rows());
    assert_eq!(kn, ell.cols());
    let b = ell.block();
    assert_eq!(b % pattern.m(), 0, "block size must be a multiple of M");

    let packed_cols = ell.ell_width() * b;
    let kept_per_row = pattern.kept_per_row(packed_cols);
    let groups_per_row = packed_cols / pattern.m();

    let (reads, writes, macs, groups) = ell_sddmm_charge::<T>(ell, rows, d, pattern);
    let b64 = batch as u64;
    ctx.record(
        KernelProfile::new("sddmm_ell_nm_fused", Stage::Qk)
            .with_traffic(b64 * reads, b64 * writes)
            .with_tc(b64 * macs, dense_class::<T>())
            .with_alu(b64 * groups * 12),
    );
    if !ctx.exec {
        return EllNmBatch {
            ell: ell.clone(),
            packed: NmBatch::charge_only(pattern, batch, rows, packed_cols),
        };
    }

    let qw = micro::widen_batched(q);
    // Per-panel widen-transposed K (same layout the single-head kernel
    // streams) packed back to back.
    let mut kts = dfss_tensor::scratch_f32(batch * d * kn);
    for p in 0..batch {
        let dst = &mut kts[p * d * kn..(p + 1) * d * kn];
        for (j, row) in k.panel(p).chunks_exact(d.max(1)).enumerate() {
            for (kk, v) in row.iter().enumerate() {
                dst[kk * kn + j] = v.to_mul();
            }
        }
    }
    let mut nonzeros = vec![T::zero(); batch * rows * kept_per_row];
    let mut codes = vec![0u8; batch * rows * groups_per_row];
    crate::batched::fan_out2(
        &mut nonzeros,
        rows * kept_per_row,
        crate::batched::ROW_TILE * kept_per_row,
        &mut codes,
        rows * groups_per_row,
        crate::batched::ROW_TILE * groups_per_row,
        |p, e0, nz_chunk, code_chunk| {
            let qw_p = &qw[p * rows * d..(p + 1) * rows * d];
            let kt_p = &kts[p * d * kn..(p + 1) * d * kn];
            let row0 = e0 / kept_per_row;
            let rows_here = nz_chunk.len() / kept_per_row;
            let mut acc = scratch_f32_stale(packed_cols);
            for local in 0..rows_here {
                let r = row0 + local;
                acc.iter_mut().for_each(|x| *x = 0.0);
                ell_sddmm_row(
                    &qw_p[r * d..(r + 1) * d],
                    kt_p,
                    kn,
                    ell,
                    r / b,
                    b,
                    pattern,
                    scale,
                    &mut acc,
                    &mut nz_chunk[local * kept_per_row..(local + 1) * kept_per_row],
                    &mut code_chunk[local * groups_per_row..(local + 1) * groups_per_row],
                );
            }
        },
    );
    EllNmBatch {
        ell: ell.clone(),
        packed: NmBatch::from_parts(pattern, batch, rows, packed_cols, nonzeros, codes),
    }
}

/// Batched softmax over the packed compressed stack (one launch for every
/// panel's rows).
pub fn softmax_ell_nm_batched<T: Scalar>(ctx: &mut GpuCtx, a: &mut EllNmBatch<T>) {
    crate::softmax::softmax_nm_batched(ctx, &mut a.packed);
}

/// Batched `O = Aᶜ · V` for hybrid blocked-ELL × N:M stacks in one launch
/// (single profile = `batch ×` the per-panel [`spmm_ell_nm`] cost, tiling
/// hoisted). Bit-identical to a per-panel loop.
pub fn spmm_ell_nm_batched<T: Scalar>(
    ctx: &mut GpuCtx,
    a: &EllNmBatch<T>,
    v: &BatchedMatrix<T>,
) -> BatchedMatrix<T> {
    let (batch, rows) = (a.packed.batch(), a.packed.rows());
    let (bb, vr, d) = v.shape();
    assert_eq!(batch, bb, "batch sizes differ");
    assert_eq!(vr, a.ell.cols());
    let b = a.ell.block();

    let (reads, writes, phys_macs) = ell_spmm_charge::<T>(
        ctx,
        &a.ell,
        rows,
        d,
        a.packed.kept_per_row(),
        a.packed.groups_per_row(),
    );
    let b64 = batch as u64;
    ctx.record(
        KernelProfile::new("spmm_ell_nm", Stage::Av)
            .with_traffic(b64 * reads, b64 * writes)
            .with_tc(b64 * phys_macs, sparse_class::<T>()),
    );
    if !ctx.exec {
        return BatchedMatrix::charge_only(batch, rows, d);
    }

    let vw = micro::widen_batched(v);
    let mut out = vec![T::zero(); batch * rows * d];
    crate::batched::fan_out(
        &mut out,
        rows * d,
        crate::batched::ROW_TILE * d,
        |p, e0, chunk| {
            let vw_p = &vw[p * vr * d..(p + 1) * vr * d];
            let row0 = e0 / d;
            let mut acc = scratch_f32_stale(d);
            for (local, orow) in chunk.chunks_mut(d).enumerate() {
                let r = row0 + local;
                ell_spmm_row(
                    |f| a.packed.scan_row(p, r, f),
                    &a.ell,
                    r / b,
                    vw_p,
                    d,
                    &mut acc,
                    orow,
                );
            }
        },
    );
    BatchedMatrix::from_vec(batch, rows, d, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfss_tensor::Rng;

    fn setup(n: usize, d: usize, seed: u64) -> (Matrix<f32>, Matrix<f32>, Matrix<f32>) {
        let mut rng = Rng::new(seed);
        (
            Matrix::random_normal(n, d, 0.0, 1.0, &mut rng),
            Matrix::random_normal(n, d, 0.0, 1.0, &mut rng),
            Matrix::random_normal(n, d, 0.0, 1.0, &mut rng),
        )
    }

    /// Reference: dense scores with −∞ outside active blocks, softmax, N:M
    /// prune inside active blocks, times V.
    fn reference_ell_attention(
        q: &Matrix<f32>,
        k: &Matrix<f32>,
        v: &Matrix<f32>,
        ell: &BlockedEll,
        pattern: NmPattern,
        scale: f32,
    ) -> Matrix<f32> {
        let n = q.rows();
        let scores = q.matmul_ref(&k.transpose());
        let mask = ell.to_mask();
        let b = ell.block();
        let mut out_weights = Matrix::<f32>::zeros(n, n);
        for r in 0..n {
            let rb = r / b;
            // Collect packed active entries.
            let mut packed: Vec<(usize, f32)> = Vec::new();
            for &cb in ell.row_active(rb) {
                for j in 0..b {
                    let c = cb as usize * b + j;
                    assert_eq!(mask.get(r, c), 1.0);
                    packed.push((c, scores.get(r, c) * scale));
                }
            }
            // Prune N:M over the packed order.
            let vals: Vec<f32> = packed.iter().map(|&(_, s)| s).collect();
            let mut keep = vec![false; vals.len()];
            pattern.mask_row(&vals, &mut keep);
            let kept: Vec<(usize, f32)> = packed
                .iter()
                .zip(&keep)
                .filter(|(_, &kp)| kp)
                .map(|(&(c, s), _)| (c, s))
                .collect();
            let probs =
                dfss_tensor::math::softmax(&kept.iter().map(|&(_, s)| s).collect::<Vec<f32>>());
            for ((c, _), p) in kept.into_iter().zip(probs) {
                out_weights.set(r, c, p);
            }
        }
        out_weights.matmul_ref(v)
    }

    #[test]
    fn hybrid_pipeline_matches_reference() {
        let n = 64;
        let d = 16;
        let (q, k, v) = setup(n, d, 1);
        let ell = BlockedEll::sliding_window(n, n, 16, 2);
        let mut ctx = GpuCtx::a100();
        let mut a = sddmm_ell_nm_fused(&mut ctx, &q, &k, 0.25, NmPattern::P1_2, &ell);
        softmax_ell_nm(&mut ctx, &mut a);
        let o = spmm_ell_nm(&mut ctx, &a, &v);
        let reference = reference_ell_attention(&q, &k, &v, &ell, NmPattern::P1_2, 0.25);
        assert!(
            o.max_abs_diff(&reference) < 1e-2,
            "diff {}",
            o.max_abs_diff(&reference)
        );
    }

    #[test]
    fn packed_density_halves_active_blocks() {
        let n = 64;
        let (q, k, _) = setup(n, 16, 2);
        let ell = BlockedEll::sliding_window(n, n, 16, 2);
        let mut ctx = GpuCtx::a100();
        let a = sddmm_ell_nm_fused(&mut ctx, &q, &k, 1.0, NmPattern::P1_2, &ell);
        // 2 of 4 blocks active × 1/2 N:M = 0.25 density.
        assert!((a.density() - 0.25).abs() < 1e-12);
        assert_eq!(a.packed.kept_per_row(), 16);
    }

    #[test]
    fn skipped_blocks_save_traffic_and_macs() {
        let n = 128;
        let (q, k, _) = setup(n, 32, 3);
        let full = BlockedEll::dense(n, n, 32);
        let sparse = BlockedEll::sliding_window(n, n, 32, 2);
        let mut cf = GpuCtx::a100();
        let mut cs = GpuCtx::a100();
        let _ = sddmm_ell_nm_fused(&mut cf, &q, &k, 1.0, NmPattern::P1_2, &full);
        let _ = sddmm_ell_nm_fused(&mut cs, &q, &k, 1.0, NmPattern::P1_2, &sparse);
        assert!(cs.timeline.total_bytes() < cf.timeline.total_bytes());
        assert_eq!(
            cs.timeline.entries()[0].tc_macs * 2,
            cf.timeline.entries()[0].tc_macs
        );
    }

    #[test]
    fn dense_ell_equals_plain_fused_sddmm() {
        let n = 64;
        let (q, k, _) = setup(n, 16, 4);
        let ell = BlockedEll::dense(n, n, 16);
        let mut c1 = GpuCtx::a100();
        let mut c2 = GpuCtx::a100();
        let hybrid = sddmm_ell_nm_fused(&mut c1, &q, &k, 1.0, NmPattern::P1_2, &ell);
        let plain = crate::sddmm::sddmm_nm_fused(&mut c2, &q, &k, 1.0, NmPattern::P1_2);
        // With all blocks active, packed order == dense order.
        assert_eq!(hybrid.packed.codes(), plain.codes());
        assert!(hybrid.packed.decompress().max_abs_diff(&plain.decompress()) < 1e-5);
    }

    #[test]
    fn softmax_rows_sum_to_one_over_active() {
        let n = 64;
        let (q, k, _) = setup(n, 16, 5);
        let ell = BlockedEll::sliding_window(n, n, 16, 3);
        let mut ctx = GpuCtx::a100();
        let mut a = sddmm_ell_nm_fused(&mut ctx, &q, &k, 1.0, NmPattern::P2_4, &ell);
        softmax_ell_nm(&mut ctx, &mut a);
        for r in 0..n {
            let s: f32 = a.packed.row_nonzeros(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }
}
