//! The simulated-device context threaded through every kernel.

use dfss_gpusim::{DeviceConfig, KernelProfile, MemTracker, TcClass, Timeline};
use dfss_tensor::Scalar;

/// Bundle of device configuration, kernel timeline and memory tracker.
///
/// Every kernel takes `&mut GpuCtx`, performs its computation on the host,
/// and records the profile the equivalent CUDA kernel would have on the
/// simulated device.
#[derive(Clone, Debug)]
pub struct GpuCtx {
    pub dev: DeviceConfig,
    pub timeline: Timeline,
    pub mem: MemTracker,
    /// When false, kernels record their exact cost profiles but skip the
    /// numeric work (outputs are zeros). Kernel costs depend only on shapes,
    /// densities and group structure — all of which are still computed — so
    /// latency/memory experiments (Figures 5, 14–16) can sweep paper-scale
    /// grids without paying CPU time for n² arithmetic whose values nobody
    /// reads.
    pub exec: bool,
}

impl GpuCtx {
    pub fn new(dev: DeviceConfig) -> GpuCtx {
        // Pin (and log) the process-wide SIMD backend before any kernel
        // runs: dispatch happens once, not per call.
        let _ = crate::simd::active();
        GpuCtx {
            dev,
            timeline: Timeline::new(),
            mem: MemTracker::new(),
            exec: true,
        }
    }

    /// Context for the paper's evaluation device.
    pub fn a100() -> GpuCtx {
        GpuCtx::new(DeviceConfig::a100())
    }

    /// A cost-accounting-only context (see the `exec` field).
    pub fn a100_charge_only() -> GpuCtx {
        let mut ctx = GpuCtx::a100();
        ctx.exec = false;
        ctx
    }

    /// Record a custom profile (used by attention mechanisms for their
    /// mechanism-specific overhead kernels: hashing, clustering, landmark
    /// pooling, …).
    pub fn record(&mut self, profile: KernelProfile) {
        self.timeline.record(profile);
    }

    /// Reset the timeline (memory ledger keeps its peak).
    pub fn reset_timeline(&mut self) {
        self.timeline.clear();
    }

    /// Total simulated latency of everything recorded so far.
    pub fn latency(&self) -> f64 {
        self.timeline.total_latency(&self.dev)
    }

    /// The effective thread-block tile edge for an output dimension: the
    /// device tile `T`, shrunk if the dimension itself is smaller.
    pub fn tile_for(&self, dim: usize) -> usize {
        self.dev.tile.min(dim.max(1))
    }
}

impl Default for GpuCtx {
    fn default() -> Self {
        GpuCtx::a100()
    }
}

/// Dense tensor-core class for a scalar type (TF32 for f32, bf16 otherwise).
#[inline]
pub fn dense_class<T: Scalar>() -> TcClass {
    if T::BYTES == 4 {
        TcClass::DenseTf32
    } else {
        TcClass::DenseBf16
    }
}

/// Sparse tensor-core class for a scalar type.
#[inline]
pub fn sparse_class<T: Scalar>() -> TcClass {
    if T::BYTES == 4 {
        TcClass::SparseTf32
    } else {
        TcClass::SparseBf16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfss_gpusim::Stage;
    use dfss_tensor::Bf16;

    #[test]
    fn classes_by_dtype() {
        assert_eq!(dense_class::<f32>(), TcClass::DenseTf32);
        assert_eq!(dense_class::<Bf16>(), TcClass::DenseBf16);
        assert_eq!(sparse_class::<f32>(), TcClass::SparseTf32);
        assert_eq!(sparse_class::<Bf16>(), TcClass::SparseBf16);
    }

    #[test]
    fn record_and_latency() {
        let mut ctx = GpuCtx::a100();
        assert_eq!(ctx.latency(), 0.0);
        ctx.record(KernelProfile::new("x", Stage::Overhead).with_traffic(1_000_000, 0));
        assert!(ctx.latency() > 0.0);
        ctx.reset_timeline();
        assert_eq!(ctx.latency(), 0.0);
    }

    #[test]
    fn tile_shrinks_to_dim() {
        let ctx = GpuCtx::a100();
        assert_eq!(ctx.tile_for(4096), 128);
        assert_eq!(ctx.tile_for(64), 64);
        assert_eq!(ctx.tile_for(0), 1);
    }
}
