//! Explicit-SIMD microkernel backends with one-time runtime dispatch.
//!
//! The paper's premise is that N:M sparsity exists to feed fixed-function
//! units at their roofline; the host engine chases the same roofline here
//! instead of hoping autovectorisation fires. Every hot inner loop of the
//! microkernels ([`crate::micro`], the decode routines in the private
//! `decode` module) routes through a [`Backend`] chosen **once per
//! process** by `std::arch` runtime feature detection — AVX-512 / AVX2 on
//! x86-64, NEON on aarch64 — with the scalar reference path always
//! compiled in (it is the semantics every SIMD implementation must match
//! bit for bit, and the `DFSS_SIMD=scalar` CI leg runs the whole suite on
//! it).
//!
//! **Bit-parity is a hard contract**, not a best-effort goal. The existing
//! test suites pin exact bitwise equality between kernels (batched vs
//! looped, ragged vs solo, paged vs contiguous), so a SIMD backend may not
//! change a single ulp. Three rules make that possible:
//!
//! * **No FMA.** The scalar path rounds every product before adding
//!   (`acc += s * x` is an IEEE multiply then an IEEE add); fused
//!   multiply-add keeps the infinite-precision product and produces
//!   different bits. All backends use separate multiply and add.
//! * **Element-wise ops vectorise freely.** [`Backend::axpy`],
//!   [`Backend::axpy2`] and the register tiles of [`Backend::panel_tile`]
//!   update independent output lanes in serial k-order; lane width does
//!   not touch the per-lane operation order, so any width is
//!   bit-identical.
//! * **Reductions keep the scalar shape.** [`crate::micro::dot`]
//!   accumulates into 8 lanes (serially across 8-blocks) and reduces with
//!   a fixed tree `((l0+l4)+(l1+l5)) + ((l2+l6)+(l3+l7))`. The AVX2
//!   horizontal sum — add the high 128-bit half onto the low, then
//!   pairwise-add — performs *exactly* that tree. AVX-512 must **not**
//!   widen the dot accumulator to 16 lanes (that changes the summation
//!   order); it reuses the 8-lane dot and spends its width on the
//!   element-wise ops instead.
//!
//! The decode path additionally gets **fused widen-on-load** operands
//! ([`dot_widen`] / [`axpy_widen`]): cached K/V rows stored as `f32` are
//! TF32-rounded in-register (bit-exact replica of
//! [`dfss_tensor::tf32_round`], including NaN/Inf passthrough), and rows
//! stored as [`Bf16`] are widened by a zero-extend + 16-bit shift — exact
//! by construction — so the bf16-quantised KV cache is read at half the
//! memory traffic with no intermediate widened buffer. Because bf16→f32
//! widening is exact and TF32 keeps more mantissa bits than bf16 has,
//! the fused bf16 path is bitwise identical to a host-side
//! widen-then-f32 model.
//!
//! Dispatch order: `DFSS_SIMD` env override (`scalar`/`avx2`/`avx512`/
//! `neon`) → runtime detection → scalar. The choice is logged once to
//! stderr at startup (the serving layer also exports it in `/metrics`).
//! [`force`] overrides the choice at runtime for A/B benchmarking
//! (`dfss-bench`'s scalar-vs-dispatched section).

// The one place the workspace's `unsafe_code = "deny"` is relaxed:
// `std::arch` intrinsics are inherently `unsafe fn`. Safety arguments are
// local and mechanical — every vector load/store stays inside `full`
// (the largest lane multiple ≤ len) and every `target_feature` function is
// reached only through a `Backend` variant whose `available()` check passed.
#![allow(unsafe_code)]

use dfss_tensor::{tf32_round, Bf16, Scalar};
use std::any::TypeId;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Lane width of the blocked-dot accumulator (see [`crate::micro::LANES`]);
/// every backend must reduce over exactly this many lanes.
const LANES: usize = 8;

/// One SIMD instruction-set backend. `Scalar` is the always-available
/// reference; the others are selected only when the CPU supports them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Portable reference implementation (also the `DFSS_SIMD=scalar` CI
    /// leg). Defines the bit-exact semantics of every operation.
    Scalar,
    /// 256-bit x86-64 path (8 f32 lanes).
    Avx2,
    /// 512-bit x86-64 path: 16-lane element-wise ops, 8-lane dot (the dot's
    /// reduction shape is part of the bit contract and cannot widen).
    Avx512,
    /// 128-bit aarch64 path (4 f32 lanes, paired to 8-lane blocks).
    Neon,
}

impl Backend {
    /// Stable lowercase name (used by `DFSS_SIMD`, logs and `/metrics`).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
            Backend::Avx512 => "avx512",
            Backend::Neon => "neon",
        }
    }

    /// Whether this backend can run on the current CPU.
    pub fn available(self) -> bool {
        match self {
            Backend::Scalar => true,
            Backend::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    is_x86_feature_detected!("avx2")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            Backend::Avx512 => {
                #[cfg(target_arch = "x86_64")]
                {
                    is_x86_feature_detected!("avx2") && is_x86_feature_detected!("avx512f")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            Backend::Neon => {
                #[cfg(target_arch = "aarch64")]
                {
                    std::arch::is_aarch64_feature_detected!("neon")
                }
                #[cfg(not(target_arch = "aarch64"))]
                {
                    false
                }
            }
        }
    }

    fn parse(name: &str) -> Option<Backend> {
        match name {
            "scalar" => Some(Backend::Scalar),
            "avx2" => Some(Backend::Avx2),
            "avx512" => Some(Backend::Avx512),
            "neon" => Some(Backend::Neon),
            _ => None,
        }
    }
}

/// Best backend the current CPU supports.
fn detect() -> Backend {
    for b in [Backend::Avx512, Backend::Avx2, Backend::Neon] {
        if b.available() {
            return b;
        }
    }
    Backend::Scalar
}

/// Resolve the process-wide backend: `DFSS_SIMD` override if set and
/// available, else runtime detection. Logs the choice once.
fn choose() -> Backend {
    let detected = detect();
    let chosen = match std::env::var("DFSS_SIMD") {
        Err(_) => detected,
        Ok(req) => match Backend::parse(&req) {
            Some(b) if b.available() => b,
            Some(b) => {
                eprintln!(
                    "dfss-simd: DFSS_SIMD={} not available on this CPU, using {}",
                    b.name(),
                    detected.name()
                );
                detected
            }
            None => {
                eprintln!(
                    "dfss-simd: unknown DFSS_SIMD value {req:?} \
                     (expected scalar|avx2|avx512|neon), using {}",
                    detected.name()
                );
                detected
            }
        },
    };
    eprintln!(
        "dfss-simd: backend={} (detected={}; set DFSS_SIMD=scalar|avx2|avx512|neon to override)",
        chosen.name(),
        detected.name()
    );
    chosen
}

static CHOSEN: OnceLock<Backend> = OnceLock::new();
/// 0 = no forced override; otherwise `backend as u8 + 1`.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// The backend every microkernel call site dispatches through. Resolved
/// (and logged) exactly once per process, on first use — kernel pools call
/// this at startup so the choice is pinned before any compute runs.
#[inline]
pub fn active() -> Backend {
    match FORCED.load(Ordering::Relaxed) {
        1 => Backend::Scalar,
        2 => Backend::Avx2,
        3 => Backend::Avx512,
        4 => Backend::Neon,
        _ => *CHOSEN.get_or_init(choose),
    }
}

/// Force a specific backend process-wide (`None` restores the dispatched
/// choice). For A/B benchmarking and backend-pinned tests only; panics if
/// the backend is not available on this CPU.
pub fn force(backend: Option<Backend>) {
    let code = match backend {
        None => 0,
        Some(b) => {
            assert!(b.available(), "backend {} not available here", b.name());
            match b {
                Backend::Scalar => 1,
                Backend::Avx2 => 2,
                Backend::Avx512 => 3,
                Backend::Neon => 4,
            }
        }
    };
    FORCED.store(code, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Scalar reference implementations (the bit-exact semantics).
// ---------------------------------------------------------------------------

/// Reference 8-lane blocked dot (see [`crate::micro::dot`] for the shape's
/// rationale). Every SIMD backend must reproduce this bit for bit.
#[inline(always)]
pub fn dot_ref(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let full = a.len() / LANES * LANES;
    let mut lanes = [0.0f32; LANES];
    for c in (0..full).step_by(LANES) {
        let xa: &[f32; LANES] = a[c..c + LANES].try_into().unwrap();
        let xb: &[f32; LANES] = b[c..c + LANES].try_into().unwrap();
        for l in 0..LANES {
            lanes[l] += xa[l] * xb[l];
        }
    }
    let q0 = (lanes[0] + lanes[4]) + (lanes[1] + lanes[5]);
    let q1 = (lanes[2] + lanes[6]) + (lanes[3] + lanes[7]);
    let mut acc = q0 + q1;
    for (x, y) in a[full..].iter().zip(&b[full..]) {
        acc += x * y;
    }
    acc
}

/// Reference `acc[j] += s · row[j]`.
#[inline(always)]
pub fn axpy_ref(acc: &mut [f32], s: f32, row: &[f32]) {
    debug_assert_eq!(acc.len(), row.len());
    for (o, &x) in acc.iter_mut().zip(row) {
        *o += s * x;
    }
}

/// Reference paired-row axpy (each `row[j]` loaded once for both outputs).
#[inline(always)]
pub fn axpy2_ref(acc0: &mut [f32], acc1: &mut [f32], s0: f32, s1: f32, row: &[f32]) {
    debug_assert_eq!(acc0.len(), row.len());
    debug_assert_eq!(acc1.len(), row.len());
    for ((o0, o1), &x) in acc0.iter_mut().zip(acc1.iter_mut()).zip(row) {
        *o0 += s0 * x;
        *o1 += s1 * x;
    }
}

#[inline(always)]
fn panel_tile_ref_r<const R: usize>(
    arows: &[&[f32]; 4],
    block: &[f32],
    n: usize,
    j0: usize,
    w: usize,
    acc_out: &mut [f32],
) {
    let ka = arows[0].len();
    let mut acc = [[0.0f32; 16]; R];
    for kk in 0..ka {
        let row: &[f32; 16] = block[kk * 16..(kk + 1) * 16].try_into().unwrap();
        for r in 0..R {
            let s = arows[r][kk];
            for (o, &x) in acc[r].iter_mut().zip(row) {
                *o += s * x;
            }
        }
    }
    for r in 0..R {
        acc_out[r * n + j0..r * n + j0 + w].copy_from_slice(&acc[r][..w]);
    }
}

/// Reference register tile of [`crate::micro::panel_product`]: `rcnt ≤ 4`
/// accumulator rows of one 16-column tile, serial k-order per element.
pub fn panel_tile_ref(
    arows: &[&[f32]; 4],
    rcnt: usize,
    block: &[f32],
    n: usize,
    j0: usize,
    w: usize,
    acc_out: &mut [f32],
) {
    match rcnt {
        4 => panel_tile_ref_r::<4>(arows, block, n, j0, w, acc_out),
        3 => panel_tile_ref_r::<3>(arows, block, n, j0, w, acc_out),
        2 => panel_tile_ref_r::<2>(arows, block, n, j0, w, acc_out),
        _ => panel_tile_ref_r::<1>(arows, block, n, j0, w, acc_out),
    }
}

/// Reference lane-blocked row maximum (see `softmax`): `f32::max` is
/// associative, commutative and NaN-ignoring, and a `±0.0` tie is invisible
/// downstream, so lane regrouping cannot change softmax results.
#[inline(always)]
pub fn row_max_ref(buf: &[f32]) -> f32 {
    let full = buf.len() / LANES * LANES;
    let mut lanes = [f32::NEG_INFINITY; LANES];
    for c in (0..full).step_by(LANES) {
        let xb: &[f32; LANES] = buf[c..c + LANES].try_into().unwrap();
        for l in 0..LANES {
            lanes[l] = lanes[l].max(xb[l]);
        }
    }
    let mut max = f32::NEG_INFINITY;
    for &l in &lanes {
        max = max.max(l);
    }
    for &x in &buf[full..] {
        max = max.max(x);
    }
    max
}

/// Reference fused widen-on-load dot: `dot(q, to_mul(row))` without the
/// intermediate widened buffer — TF32 rounding for `f32` KV, exact widening
/// for [`Bf16`] KV, via [`Scalar::to_mul`]. Bitwise equal to widening the
/// row first and calling [`dot_ref`].
#[inline(always)]
pub fn dot_widen_ref<S: Scalar>(q: &[f32], row: &[S]) -> f32 {
    debug_assert_eq!(q.len(), row.len());
    let full = q.len() / LANES * LANES;
    let mut lanes = [0.0f32; LANES];
    for c in (0..full).step_by(LANES) {
        let xq: &[f32; LANES] = q[c..c + LANES].try_into().unwrap();
        let xr: &[S; LANES] = row[c..c + LANES].try_into().unwrap();
        for l in 0..LANES {
            lanes[l] += xq[l] * xr[l].to_mul();
        }
    }
    let q0 = (lanes[0] + lanes[4]) + (lanes[1] + lanes[5]);
    let q1 = (lanes[2] + lanes[6]) + (lanes[3] + lanes[7]);
    let mut acc = q0 + q1;
    for (x, y) in q[full..].iter().zip(&row[full..]) {
        acc += x * y.to_mul();
    }
    acc
}

/// Reference fused widen-on-load axpy: `acc[j] += s · to_mul(row[j])`.
#[inline(always)]
pub fn axpy_widen_ref<S: Scalar>(acc: &mut [f32], s: f32, row: &[S]) {
    debug_assert_eq!(acc.len(), row.len());
    for (o, &x) in acc.iter_mut().zip(row) {
        *o += s * x.to_mul();
    }
}

// ---------------------------------------------------------------------------
// Dispatched operations.
// ---------------------------------------------------------------------------

impl Backend {
    /// Lane-blocked dot product (bit-identical across backends).
    #[inline]
    pub fn dot(self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        match self {
            #[cfg(target_arch = "x86_64")]
            // AVX-512 keeps the 8-lane dot: widening the accumulator would
            // change the reduction order (see module docs).
            Backend::Avx2 | Backend::Avx512 => unsafe { x86::dot_avx2(a, b) },
            #[cfg(target_arch = "aarch64")]
            Backend::Neon => unsafe { neon::dot_neon(a, b) },
            _ => dot_ref(a, b),
        }
    }

    /// `acc[j] += s · row[j]` (element-wise; bit-identical at any width).
    #[inline]
    pub fn axpy(self, acc: &mut [f32], s: f32, row: &[f32]) {
        debug_assert_eq!(acc.len(), row.len());
        match self {
            #[cfg(target_arch = "x86_64")]
            Backend::Avx512 => unsafe { x86::axpy_avx512(acc, s, row) },
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => unsafe { x86::axpy_avx2(acc, s, row) },
            #[cfg(target_arch = "aarch64")]
            Backend::Neon => unsafe { neon::axpy_neon(acc, s, row) },
            _ => axpy_ref(acc, s, row),
        }
    }

    /// Paired-row axpy (each operand element loaded once for both rows).
    #[inline]
    pub fn axpy2(self, acc0: &mut [f32], acc1: &mut [f32], s0: f32, s1: f32, row: &[f32]) {
        debug_assert_eq!(acc0.len(), row.len());
        debug_assert_eq!(acc1.len(), row.len());
        match self {
            #[cfg(target_arch = "x86_64")]
            Backend::Avx512 => unsafe { x86::axpy2_avx512(acc0, acc1, s0, s1, row) },
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => unsafe { x86::axpy2_avx2(acc0, acc1, s0, s1, row) },
            #[cfg(target_arch = "aarch64")]
            Backend::Neon => unsafe { neon::axpy2_neon(acc0, acc1, s0, s1, row) },
            _ => axpy2_ref(acc0, acc1, s0, s1, row),
        }
    }

    /// One register tile of `panel_product`: `rcnt ≤ 4` rows × 16 columns,
    /// accumulated over the whole k extent in registers. `block` holds
    /// `ka × 16` packed elements; results overwrite
    /// `acc_out[r·n + j0 .. r·n + j0 + w]`.
    #[inline]
    pub fn panel_tile(
        self,
        arows: &[&[f32]; 4],
        rcnt: usize,
        block: &[f32],
        n: usize,
        j0: usize,
        w: usize,
        acc_out: &mut [f32],
    ) {
        debug_assert!((1..=4).contains(&rcnt));
        debug_assert!(block.len() >= arows[0].len() * 16);
        match self {
            #[cfg(target_arch = "x86_64")]
            Backend::Avx512 => unsafe {
                x86::panel_tile_avx512(arows, rcnt, block, n, j0, w, acc_out)
            },
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => unsafe { x86::panel_tile_avx2(arows, rcnt, block, n, j0, w, acc_out) },
            #[cfg(target_arch = "aarch64")]
            Backend::Neon => unsafe {
                neon::panel_tile_neon(arows, rcnt, block, n, j0, w, acc_out)
            },
            _ => panel_tile_ref(arows, rcnt, block, n, j0, w, acc_out),
        }
    }

    /// Row maximum (softmax phase 1; order-insensitive by `f32::max`
    /// algebra, see [`row_max_ref`]).
    #[inline]
    pub fn row_max(self, buf: &[f32]) -> f32 {
        match self {
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 | Backend::Avx512 => unsafe { x86::row_max_avx2(buf) },
            #[cfg(target_arch = "aarch64")]
            Backend::Neon => unsafe { neon::row_max_neon(buf) },
            _ => row_max_ref(buf),
        }
    }
}

/// Fused widen-on-load dot against a raw KV row (`f32` → TF32-rounded
/// in-register, [`Bf16`] → exact widen in-register): the decode score
/// microkernel. Bitwise equal to [`dot_widen_ref`] (= widen then
/// [`dot_ref`]) on every backend.
#[inline]
pub fn dot_widen<S: Scalar>(backend: Backend, q: &[f32], row: &[S]) -> f32 {
    debug_assert_eq!(q.len(), row.len());
    match backend {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 | Backend::Avx512 => {
            if TypeId::of::<S>() == TypeId::of::<f32>() {
                // SAFETY: S == f32 (checked above); slices of a type are
                // slices of itself.
                let row =
                    unsafe { std::slice::from_raw_parts(row.as_ptr().cast::<f32>(), row.len()) };
                return unsafe { x86::dot_tf32_avx2(q, row) };
            }
            if TypeId::of::<S>() == TypeId::of::<Bf16>() {
                // SAFETY: S == Bf16, which is repr(transparent) over u16.
                let row =
                    unsafe { std::slice::from_raw_parts(row.as_ptr().cast::<u16>(), row.len()) };
                return unsafe { x86::dot_bf16_avx2(q, row) };
            }
            dot_widen_ref(q, row)
        }
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => {
            if TypeId::of::<S>() == TypeId::of::<f32>() {
                // SAFETY: S == f32 (checked above).
                let row =
                    unsafe { std::slice::from_raw_parts(row.as_ptr().cast::<f32>(), row.len()) };
                return unsafe { neon::dot_tf32_neon(q, row) };
            }
            if TypeId::of::<S>() == TypeId::of::<Bf16>() {
                // SAFETY: S == Bf16, which is repr(transparent) over u16.
                let row =
                    unsafe { std::slice::from_raw_parts(row.as_ptr().cast::<u16>(), row.len()) };
                return unsafe { neon::dot_bf16_neon(q, row) };
            }
            dot_widen_ref(q, row)
        }
        _ => dot_widen_ref(q, row),
    }
}

/// Fused widen-on-load axpy against a raw KV row: the decode SpMM
/// microkernel. Bitwise equal to [`axpy_widen_ref`] on every backend.
#[inline]
pub fn axpy_widen<S: Scalar>(backend: Backend, acc: &mut [f32], s: f32, row: &[S]) {
    debug_assert_eq!(acc.len(), row.len());
    match backend {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 | Backend::Avx512 => {
            if TypeId::of::<S>() == TypeId::of::<f32>() {
                // SAFETY: S == f32 (checked above).
                let row =
                    unsafe { std::slice::from_raw_parts(row.as_ptr().cast::<f32>(), row.len()) };
                return unsafe { x86::axpy_tf32_avx2(acc, s, row) };
            }
            if TypeId::of::<S>() == TypeId::of::<Bf16>() {
                // SAFETY: S == Bf16, which is repr(transparent) over u16.
                let row =
                    unsafe { std::slice::from_raw_parts(row.as_ptr().cast::<u16>(), row.len()) };
                return unsafe { x86::axpy_bf16_avx2(acc, s, row) };
            }
            axpy_widen_ref(acc, s, row)
        }
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => {
            if TypeId::of::<S>() == TypeId::of::<f32>() {
                // SAFETY: S == f32 (checked above).
                let row =
                    unsafe { std::slice::from_raw_parts(row.as_ptr().cast::<f32>(), row.len()) };
                return unsafe { neon::axpy_tf32_neon(acc, s, row) };
            }
            if TypeId::of::<S>() == TypeId::of::<Bf16>() {
                // SAFETY: S == Bf16, which is repr(transparent) over u16.
                let row =
                    unsafe { std::slice::from_raw_parts(row.as_ptr().cast::<u16>(), row.len()) };
                return unsafe { neon::axpy_bf16_neon(acc, s, row) };
            }
            axpy_widen_ref(acc, s, row)
        }
        _ => axpy_widen_ref(acc, s, row),
    }
}

// ---------------------------------------------------------------------------
// x86-64 implementations.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::tf32_round;
    use std::arch::x86_64::*;

    /// Horizontal sum of an 8-lane accumulator in the scalar tree order:
    /// adding the high 128-bit half onto the low yields
    /// `[l0+l4, l1+l5, l2+l6, l3+l7]`, one `hadd` yields
    /// `[(l0+l4)+(l1+l5), (l2+l6)+(l3+l7), …]`, and the final scalar add
    /// is `q0 + q1` — exactly `dot_ref`'s reduction.
    #[inline(always)]
    unsafe fn hsum_tree(acc: __m256) -> f32 {
        let hi = _mm256_extractf128_ps::<1>(acc);
        let lo = _mm256_castps256_ps128(acc);
        let s = _mm_add_ps(lo, hi);
        let h = _mm_hadd_ps(s, s);
        _mm_cvtss_f32(_mm_add_ss(h, _mm_movehdup_ps(h)))
    }

    /// Bit-exact vector replica of [`dfss_tensor::tf32_round`]: round to
    /// nearest-even at 10 mantissa bits, NaN/Inf passed through (exponent
    /// all-ones lanes keep their input bits).
    #[inline(always)]
    unsafe fn tf32_round8(v: __m256) -> __m256 {
        let bits = _mm256_castps_si256(v);
        let lsb = _mm256_and_si256(_mm256_srli_epi32::<13>(bits), _mm256_set1_epi32(1));
        let rounded = _mm256_add_epi32(bits, _mm256_add_epi32(_mm256_set1_epi32(0xFFF), lsb));
        let masked = _mm256_and_si256(rounded, _mm256_set1_epi32(!0x1FFFi32));
        let exp = _mm256_and_si256(bits, _mm256_set1_epi32(0x7F80_0000));
        let special = _mm256_cmpeq_epi32(exp, _mm256_set1_epi32(0x7F80_0000));
        _mm256_blendv_ps(_mm256_castsi256_ps(masked), v, _mm256_castsi256_ps(special))
    }

    /// Widen 8 bf16 values (as raw u16 bits) to f32: zero-extend, shift
    /// left 16 — exact, the scalar `Bf16::to_f32` lane by lane.
    #[inline(always)]
    unsafe fn widen_bf16_8(p: *const u16) -> __m256 {
        let half = _mm_loadu_si128(p.cast::<__m128i>());
        let wide = _mm256_cvtepu16_epi32(half);
        _mm256_castsi256_ps(_mm256_slli_epi32::<16>(wide))
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot_avx2(a: &[f32], b: &[f32]) -> f32 {
        let full = a.len() / 8 * 8;
        let mut acc = _mm256_setzero_ps();
        let mut c = 0;
        while c < full {
            let va = _mm256_loadu_ps(a.as_ptr().add(c));
            let vb = _mm256_loadu_ps(b.as_ptr().add(c));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(va, vb));
            c += 8;
        }
        let mut out = hsum_tree(acc);
        for i in full..a.len() {
            out += a.get_unchecked(i) * b.get_unchecked(i);
        }
        out
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot_tf32_avx2(a: &[f32], b: &[f32]) -> f32 {
        let full = a.len() / 8 * 8;
        let mut acc = _mm256_setzero_ps();
        let mut c = 0;
        while c < full {
            let va = _mm256_loadu_ps(a.as_ptr().add(c));
            let vb = tf32_round8(_mm256_loadu_ps(b.as_ptr().add(c)));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(va, vb));
            c += 8;
        }
        let mut out = hsum_tree(acc);
        for i in full..a.len() {
            out += a.get_unchecked(i) * tf32_round(*b.get_unchecked(i));
        }
        out
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot_bf16_avx2(a: &[f32], b: &[u16]) -> f32 {
        let full = a.len() / 8 * 8;
        let mut acc = _mm256_setzero_ps();
        let mut c = 0;
        while c < full {
            let va = _mm256_loadu_ps(a.as_ptr().add(c));
            let vb = widen_bf16_8(b.as_ptr().add(c));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(va, vb));
            c += 8;
        }
        let mut out = hsum_tree(acc);
        for i in full..a.len() {
            out += a.get_unchecked(i) * f32::from_bits((*b.get_unchecked(i) as u32) << 16);
        }
        out
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy_avx2(acc: &mut [f32], s: f32, row: &[f32]) {
        let n = acc.len();
        let full = n / 8 * 8;
        let vs = _mm256_set1_ps(s);
        let mut i = 0;
        while i < full {
            let o = _mm256_loadu_ps(acc.as_ptr().add(i));
            let x = _mm256_loadu_ps(row.as_ptr().add(i));
            _mm256_storeu_ps(
                acc.as_mut_ptr().add(i),
                _mm256_add_ps(o, _mm256_mul_ps(vs, x)),
            );
            i += 8;
        }
        for j in full..n {
            *acc.get_unchecked_mut(j) += s * row.get_unchecked(j);
        }
    }

    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn axpy_avx512(acc: &mut [f32], s: f32, row: &[f32]) {
        let n = acc.len();
        let full = n / 16 * 16;
        let vs = _mm512_set1_ps(s);
        let mut i = 0;
        while i < full {
            let o = _mm512_loadu_ps(acc.as_ptr().add(i));
            let x = _mm512_loadu_ps(row.as_ptr().add(i));
            _mm512_storeu_ps(
                acc.as_mut_ptr().add(i),
                _mm512_add_ps(o, _mm512_mul_ps(vs, x)),
            );
            i += 16;
        }
        for j in full..n {
            *acc.get_unchecked_mut(j) += s * row.get_unchecked(j);
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy2_avx2(
        acc0: &mut [f32],
        acc1: &mut [f32],
        s0: f32,
        s1: f32,
        row: &[f32],
    ) {
        let n = row.len();
        let full = n / 8 * 8;
        let v0 = _mm256_set1_ps(s0);
        let v1 = _mm256_set1_ps(s1);
        let mut i = 0;
        while i < full {
            let x = _mm256_loadu_ps(row.as_ptr().add(i));
            let o0 = _mm256_loadu_ps(acc0.as_ptr().add(i));
            let o1 = _mm256_loadu_ps(acc1.as_ptr().add(i));
            _mm256_storeu_ps(
                acc0.as_mut_ptr().add(i),
                _mm256_add_ps(o0, _mm256_mul_ps(v0, x)),
            );
            _mm256_storeu_ps(
                acc1.as_mut_ptr().add(i),
                _mm256_add_ps(o1, _mm256_mul_ps(v1, x)),
            );
            i += 8;
        }
        for j in full..n {
            let x = *row.get_unchecked(j);
            *acc0.get_unchecked_mut(j) += s0 * x;
            *acc1.get_unchecked_mut(j) += s1 * x;
        }
    }

    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn axpy2_avx512(
        acc0: &mut [f32],
        acc1: &mut [f32],
        s0: f32,
        s1: f32,
        row: &[f32],
    ) {
        let n = row.len();
        let full = n / 16 * 16;
        let v0 = _mm512_set1_ps(s0);
        let v1 = _mm512_set1_ps(s1);
        let mut i = 0;
        while i < full {
            let x = _mm512_loadu_ps(row.as_ptr().add(i));
            let o0 = _mm512_loadu_ps(acc0.as_ptr().add(i));
            let o1 = _mm512_loadu_ps(acc1.as_ptr().add(i));
            _mm512_storeu_ps(
                acc0.as_mut_ptr().add(i),
                _mm512_add_ps(o0, _mm512_mul_ps(v0, x)),
            );
            _mm512_storeu_ps(
                acc1.as_mut_ptr().add(i),
                _mm512_add_ps(o1, _mm512_mul_ps(v1, x)),
            );
            i += 16;
        }
        for j in full..n {
            let x = *row.get_unchecked(j);
            *acc0.get_unchecked_mut(j) += s0 * x;
            *acc1.get_unchecked_mut(j) += s1 * x;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy_tf32_avx2(acc: &mut [f32], s: f32, row: &[f32]) {
        let n = acc.len();
        let full = n / 8 * 8;
        let vs = _mm256_set1_ps(s);
        let mut i = 0;
        while i < full {
            let o = _mm256_loadu_ps(acc.as_ptr().add(i));
            let x = tf32_round8(_mm256_loadu_ps(row.as_ptr().add(i)));
            _mm256_storeu_ps(
                acc.as_mut_ptr().add(i),
                _mm256_add_ps(o, _mm256_mul_ps(vs, x)),
            );
            i += 8;
        }
        for j in full..n {
            *acc.get_unchecked_mut(j) += s * tf32_round(*row.get_unchecked(j));
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy_bf16_avx2(acc: &mut [f32], s: f32, row: &[u16]) {
        let n = acc.len();
        let full = n / 8 * 8;
        let vs = _mm256_set1_ps(s);
        let mut i = 0;
        while i < full {
            let o = _mm256_loadu_ps(acc.as_ptr().add(i));
            let x = widen_bf16_8(row.as_ptr().add(i));
            _mm256_storeu_ps(
                acc.as_mut_ptr().add(i),
                _mm256_add_ps(o, _mm256_mul_ps(vs, x)),
            );
            i += 8;
        }
        for j in full..n {
            *acc.get_unchecked_mut(j) += s * f32::from_bits((*row.get_unchecked(j) as u32) << 16);
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn panel_tile_avx2(
        arows: &[&[f32]; 4],
        rcnt: usize,
        block: &[f32],
        n: usize,
        j0: usize,
        w: usize,
        acc_out: &mut [f32],
    ) {
        let ka = arows[0].len();
        let mut lo = [_mm256_setzero_ps(); 4];
        let mut hi = [_mm256_setzero_ps(); 4];
        for kk in 0..ka {
            let b0 = _mm256_loadu_ps(block.as_ptr().add(kk * 16));
            let b1 = _mm256_loadu_ps(block.as_ptr().add(kk * 16 + 8));
            for r in 0..rcnt {
                let s = _mm256_set1_ps(*arows[r].get_unchecked(kk));
                lo[r] = _mm256_add_ps(lo[r], _mm256_mul_ps(s, b0));
                hi[r] = _mm256_add_ps(hi[r], _mm256_mul_ps(s, b1));
            }
        }
        let mut tile = [0.0f32; 16];
        for r in 0..rcnt {
            _mm256_storeu_ps(tile.as_mut_ptr(), lo[r]);
            _mm256_storeu_ps(tile.as_mut_ptr().add(8), hi[r]);
            acc_out[r * n + j0..r * n + j0 + w].copy_from_slice(&tile[..w]);
        }
    }

    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn panel_tile_avx512(
        arows: &[&[f32]; 4],
        rcnt: usize,
        block: &[f32],
        n: usize,
        j0: usize,
        w: usize,
        acc_out: &mut [f32],
    ) {
        let ka = arows[0].len();
        let mut acc = [_mm512_setzero_ps(); 4];
        for kk in 0..ka {
            let b = _mm512_loadu_ps(block.as_ptr().add(kk * 16));
            for r in 0..rcnt {
                let s = _mm512_set1_ps(*arows[r].get_unchecked(kk));
                acc[r] = _mm512_add_ps(acc[r], _mm512_mul_ps(s, b));
            }
        }
        let mut tile = [0.0f32; 16];
        for r in 0..rcnt {
            _mm512_storeu_ps(tile.as_mut_ptr(), acc[r]);
            acc_out[r * n + j0..r * n + j0 + w].copy_from_slice(&tile[..w]);
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn row_max_avx2(buf: &[f32]) -> f32 {
        let full = buf.len() / 8 * 8;
        let mut acc = _mm256_set1_ps(f32::NEG_INFINITY);
        let mut c = 0;
        while c < full {
            acc = _mm256_max_ps(acc, _mm256_loadu_ps(buf.as_ptr().add(c)));
            c += 8;
        }
        let hi = _mm256_extractf128_ps::<1>(acc);
        let lo = _mm256_castps256_ps128(acc);
        let m4 = _mm_max_ps(lo, hi);
        let m2 = _mm_max_ps(m4, _mm_movehl_ps(m4, m4));
        let m1 = _mm_max_ss(m2, _mm_movehdup_ps(m2));
        let mut max = _mm_cvtss_f32(m1);
        for i in full..buf.len() {
            max = max.max(*buf.get_unchecked(i));
        }
        max
    }
}

// ---------------------------------------------------------------------------
// aarch64 implementations (4-lane NEON, paired into the 8-lane block shape).
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod neon {
    use super::tf32_round;
    use std::arch::aarch64::*;

    /// Reduce the paired accumulators `[l0..l3]`/`[l4..l7]` in the scalar
    /// tree order: the vector add gives `[l0+l4, l1+l5, l2+l6, l3+l7]`,
    /// one pairwise add gives `[q0, q1, …]`, and the final scalar add is
    /// `q0 + q1`.
    #[inline(always)]
    unsafe fn hsum_tree(acc_lo: float32x4_t, acc_hi: float32x4_t) -> f32 {
        let s = vaddq_f32(acc_lo, acc_hi);
        let p = vpaddq_f32(s, s);
        vgetq_lane_f32::<0>(p) + vgetq_lane_f32::<1>(p)
    }

    /// Bit-exact vector replica of `tf32_round` (see the x86 twin).
    #[inline(always)]
    unsafe fn tf32_round4(v: float32x4_t) -> float32x4_t {
        let bits = vreinterpretq_u32_f32(v);
        let lsb = vandq_u32(vshrq_n_u32::<13>(bits), vdupq_n_u32(1));
        let rounded = vaddq_u32(bits, vaddq_u32(vdupq_n_u32(0xFFF), lsb));
        let masked = vandq_u32(rounded, vdupq_n_u32(!0x1FFF));
        let exp = vandq_u32(bits, vdupq_n_u32(0x7F80_0000));
        let special = vceqq_u32(exp, vdupq_n_u32(0x7F80_0000));
        vreinterpretq_f32_u32(vbslq_u32(special, bits, masked))
    }

    /// Widen 4 bf16 values (raw u16 bits) to f32: zero-extend + shift 16.
    #[inline(always)]
    unsafe fn widen_bf16_4(p: *const u16) -> float32x4_t {
        let half = vld1_u16(p);
        let wide = vmovl_u16(half);
        vreinterpretq_f32_u32(vshlq_n_u32::<16>(wide))
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn dot_neon(a: &[f32], b: &[f32]) -> f32 {
        let full = a.len() / 8 * 8;
        let mut acc_lo = vdupq_n_f32(0.0);
        let mut acc_hi = vdupq_n_f32(0.0);
        let mut c = 0;
        while c < full {
            let a0 = vld1q_f32(a.as_ptr().add(c));
            let a1 = vld1q_f32(a.as_ptr().add(c + 4));
            let b0 = vld1q_f32(b.as_ptr().add(c));
            let b1 = vld1q_f32(b.as_ptr().add(c + 4));
            acc_lo = vaddq_f32(acc_lo, vmulq_f32(a0, b0));
            acc_hi = vaddq_f32(acc_hi, vmulq_f32(a1, b1));
            c += 8;
        }
        let mut out = hsum_tree(acc_lo, acc_hi);
        for i in full..a.len() {
            out += a.get_unchecked(i) * b.get_unchecked(i);
        }
        out
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn dot_tf32_neon(a: &[f32], b: &[f32]) -> f32 {
        let full = a.len() / 8 * 8;
        let mut acc_lo = vdupq_n_f32(0.0);
        let mut acc_hi = vdupq_n_f32(0.0);
        let mut c = 0;
        while c < full {
            let a0 = vld1q_f32(a.as_ptr().add(c));
            let a1 = vld1q_f32(a.as_ptr().add(c + 4));
            let b0 = tf32_round4(vld1q_f32(b.as_ptr().add(c)));
            let b1 = tf32_round4(vld1q_f32(b.as_ptr().add(c + 4)));
            acc_lo = vaddq_f32(acc_lo, vmulq_f32(a0, b0));
            acc_hi = vaddq_f32(acc_hi, vmulq_f32(a1, b1));
            c += 8;
        }
        let mut out = hsum_tree(acc_lo, acc_hi);
        for i in full..a.len() {
            out += a.get_unchecked(i) * tf32_round(*b.get_unchecked(i));
        }
        out
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn dot_bf16_neon(a: &[f32], b: &[u16]) -> f32 {
        let full = a.len() / 8 * 8;
        let mut acc_lo = vdupq_n_f32(0.0);
        let mut acc_hi = vdupq_n_f32(0.0);
        let mut c = 0;
        while c < full {
            let a0 = vld1q_f32(a.as_ptr().add(c));
            let a1 = vld1q_f32(a.as_ptr().add(c + 4));
            let b0 = widen_bf16_4(b.as_ptr().add(c));
            let b1 = widen_bf16_4(b.as_ptr().add(c + 4));
            acc_lo = vaddq_f32(acc_lo, vmulq_f32(a0, b0));
            acc_hi = vaddq_f32(acc_hi, vmulq_f32(a1, b1));
            c += 8;
        }
        let mut out = hsum_tree(acc_lo, acc_hi);
        for i in full..a.len() {
            out += a.get_unchecked(i) * f32::from_bits((*b.get_unchecked(i) as u32) << 16);
        }
        out
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn axpy_neon(acc: &mut [f32], s: f32, row: &[f32]) {
        let n = acc.len();
        let full = n / 4 * 4;
        let vs = vdupq_n_f32(s);
        let mut i = 0;
        while i < full {
            let o = vld1q_f32(acc.as_ptr().add(i));
            let x = vld1q_f32(row.as_ptr().add(i));
            vst1q_f32(acc.as_mut_ptr().add(i), vaddq_f32(o, vmulq_f32(vs, x)));
            i += 4;
        }
        for j in full..n {
            *acc.get_unchecked_mut(j) += s * row.get_unchecked(j);
        }
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn axpy2_neon(
        acc0: &mut [f32],
        acc1: &mut [f32],
        s0: f32,
        s1: f32,
        row: &[f32],
    ) {
        let n = row.len();
        let full = n / 4 * 4;
        let v0 = vdupq_n_f32(s0);
        let v1 = vdupq_n_f32(s1);
        let mut i = 0;
        while i < full {
            let x = vld1q_f32(row.as_ptr().add(i));
            let o0 = vld1q_f32(acc0.as_ptr().add(i));
            let o1 = vld1q_f32(acc1.as_ptr().add(i));
            vst1q_f32(acc0.as_mut_ptr().add(i), vaddq_f32(o0, vmulq_f32(v0, x)));
            vst1q_f32(acc1.as_mut_ptr().add(i), vaddq_f32(o1, vmulq_f32(v1, x)));
            i += 4;
        }
        for j in full..n {
            let x = *row.get_unchecked(j);
            *acc0.get_unchecked_mut(j) += s0 * x;
            *acc1.get_unchecked_mut(j) += s1 * x;
        }
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn axpy_tf32_neon(acc: &mut [f32], s: f32, row: &[f32]) {
        let n = acc.len();
        let full = n / 4 * 4;
        let vs = vdupq_n_f32(s);
        let mut i = 0;
        while i < full {
            let o = vld1q_f32(acc.as_ptr().add(i));
            let x = tf32_round4(vld1q_f32(row.as_ptr().add(i)));
            vst1q_f32(acc.as_mut_ptr().add(i), vaddq_f32(o, vmulq_f32(vs, x)));
            i += 4;
        }
        for j in full..n {
            *acc.get_unchecked_mut(j) += s * tf32_round(*row.get_unchecked(j));
        }
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn axpy_bf16_neon(acc: &mut [f32], s: f32, row: &[u16]) {
        let n = acc.len();
        let full = n / 4 * 4;
        let vs = vdupq_n_f32(s);
        let mut i = 0;
        while i < full {
            let o = vld1q_f32(acc.as_ptr().add(i));
            let x = widen_bf16_4(row.as_ptr().add(i));
            vst1q_f32(acc.as_mut_ptr().add(i), vaddq_f32(o, vmulq_f32(vs, x)));
            i += 4;
        }
        for j in full..n {
            *acc.get_unchecked_mut(j) += s * f32::from_bits((*row.get_unchecked(j) as u32) << 16);
        }
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn panel_tile_neon(
        arows: &[&[f32]; 4],
        rcnt: usize,
        block: &[f32],
        n: usize,
        j0: usize,
        w: usize,
        acc_out: &mut [f32],
    ) {
        let ka = arows[0].len();
        // rcnt ≤ 4 rows × 4 quads of 4 lanes = up to 16 accumulator regs.
        let mut acc = [[vdupq_n_f32(0.0); 4]; 4];
        for kk in 0..ka {
            let b0 = vld1q_f32(block.as_ptr().add(kk * 16));
            let b1 = vld1q_f32(block.as_ptr().add(kk * 16 + 4));
            let b2 = vld1q_f32(block.as_ptr().add(kk * 16 + 8));
            let b3 = vld1q_f32(block.as_ptr().add(kk * 16 + 12));
            for r in 0..rcnt {
                let s = vdupq_n_f32(*arows[r].get_unchecked(kk));
                acc[r][0] = vaddq_f32(acc[r][0], vmulq_f32(s, b0));
                acc[r][1] = vaddq_f32(acc[r][1], vmulq_f32(s, b1));
                acc[r][2] = vaddq_f32(acc[r][2], vmulq_f32(s, b2));
                acc[r][3] = vaddq_f32(acc[r][3], vmulq_f32(s, b3));
            }
        }
        let mut tile = [0.0f32; 16];
        for r in 0..rcnt {
            for q in 0..4 {
                vst1q_f32(tile.as_mut_ptr().add(q * 4), acc[r][q]);
            }
            acc_out[r * n + j0..r * n + j0 + w].copy_from_slice(&tile[..w]);
        }
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn row_max_neon(buf: &[f32]) -> f32 {
        let full = buf.len() / 4 * 4;
        let mut acc = vdupq_n_f32(f32::NEG_INFINITY);
        let mut c = 0;
        while c < full {
            acc = vmaxq_f32(acc, vld1q_f32(buf.as_ptr().add(c)));
            c += 4;
        }
        let mut max = vmaxvq_f32(acc);
        for i in full..buf.len() {
            max = max.max(*buf.get_unchecked(i));
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_is_always_available_and_parse_round_trips() {
        assert!(Backend::Scalar.available());
        for b in [
            Backend::Scalar,
            Backend::Avx2,
            Backend::Avx512,
            Backend::Neon,
        ] {
            assert_eq!(Backend::parse(b.name()), Some(b));
        }
        assert_eq!(Backend::parse("sse9"), None);
    }

    #[test]
    fn active_backend_is_available_and_stable() {
        let b = active();
        assert!(b.available());
        assert_eq!(active(), b);
    }

    #[test]
    fn force_overrides_and_restores() {
        let dispatched = active();
        force(Some(Backend::Scalar));
        assert_eq!(active(), Backend::Scalar);
        force(None);
        assert_eq!(active(), dispatched);
    }

    #[test]
    fn detect_never_picks_an_unavailable_backend() {
        assert!(detect().available());
    }
}
