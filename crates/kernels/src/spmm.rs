//! Sparse × dense matrix multiplication kernels.
//!
//! * [`spmm_nm`] — the compressed-A·V product on the simulated **sparse
//!   tensor core**: metadata selects which V rows each nonzero multiplies;
//!   physical MACs are halved and run at the sparse-unit rate (the paper's
//!   realised 1.7× SpMM speedup, §3.2).
//! * [`spmm_csr`] — the explicit top-k baseline's SpMM under the vector
//!   tiling of Figure 10(B): the right-hand operand enjoys **no reuse**,
//!   which is the structural reason Proposition 4.3 bounds top-k speedup so
//!   tightly.

use crate::ctx::{sparse_class, GpuCtx};
use crate::decode;
use crate::micro;
use dfss_gpusim::{KernelProfile, Stage};
use dfss_nmsparse::{Csr, NmBatch, NmCompressed, NmRagged};
use dfss_tensor::{scratch_f32_stale, BatchedMatrix, Matrix, RaggedBatch, Scalar};
use rayon::prelude::*;

/// Output rows per parallel work item: one scratch accumulator and one shim
/// item serve a whole batch of rows (shared with the blocked-ELL SpMM).
pub(crate) const ROW_CHUNK: usize = 16;

/// Per-panel cost counters of the N:M SpMM (shared by the single and
/// batched entry points so the batched charge is exactly `batch ×` this).
fn spmm_nm_charge<T: Scalar>(
    ctx: &GpuCtx,
    rows: usize,
    inner: usize,
    d: usize,
    kept_per_row: usize,
    groups_per_row: usize,
) -> (u64, u64, u64) {
    // Block tiling like the dense GEMM, but the A panel is compressed
    // (nonzeros + metadata) and MACs run on the sparse unit.
    let tm = ctx.tile_for(rows) as u64;
    let tn = ctx.tile_for(d) as u64;
    let tiles = (rows as u64).div_ceil(tm) * (d as u64).div_ceil(tn);
    let kept_row_bytes = (kept_per_row * T::BYTES) as u64;
    let meta_row_bytes = (groups_per_row as u64 * 4).div_ceil(8);
    let a_panel = tm * (kept_row_bytes + meta_row_bytes);
    let v_panel = (inner as u64) * tn * T::BYTES as u64;
    let reads = tiles * (a_panel + v_panel);
    let writes = (rows * d * T::BYTES) as u64;
    let phys_macs = (rows * kept_per_row * d) as u64;
    (reads, writes, phys_macs)
}

/// `O = Aᶜ · V` where `Aᶜ` is N:M-compressed `n×n` and `V` is `n×d`.
pub fn spmm_nm<T: Scalar>(ctx: &mut GpuCtx, a: &NmCompressed<T>, v: &Matrix<T>) -> Matrix<T> {
    let rows = a.rows();
    let inner = a.cols();
    let (vr, d) = v.shape();
    assert_eq!(inner, vr, "A cols {} != V rows {vr}", inner);

    let (reads, writes, phys_macs) =
        spmm_nm_charge::<T>(ctx, rows, inner, d, a.kept_per_row(), a.groups_per_row());
    ctx.record(
        KernelProfile::new("spmm_nm", Stage::Av)
            .with_traffic(reads, writes)
            .with_tc(phys_macs, sparse_class::<T>()),
    );
    if !ctx.exec {
        return Matrix::zeros(rows, d);
    }

    // --- execution: batch rows per work item so one scratch accumulator
    // serves the whole chunk. The hardware 1:2 pattern takes a direct
    // indexed decode (one nonzero per group, the column is `2g` plus the
    // code's high bit) — no per-nonzero callback or bit-scan loop; group
    // order and per-element accumulation match `scan_row` exactly.
    let vw = micro::widen(v);
    let gpr = a.groups_per_row();
    let p1_2 = a.pattern() == dfss_nmsparse::NmPattern::P1_2;
    let mut out = vec![T::zero(); rows * d];
    out.par_chunks_mut(d * ROW_CHUNK)
        .enumerate()
        .for_each(|(ci, chunk)| {
            let mut acc = scratch_f32_stale(d);
            for (local, orow) in chunk.chunks_mut(d).enumerate() {
                let r = ci * ROW_CHUNK + local;
                acc.iter_mut().for_each(|x| *x = 0.0);
                if p1_2 {
                    let codes = &a.codes()[r * gpr..(r + 1) * gpr];
                    for (g, (&code, val)) in codes.iter().zip(a.row_nonzeros(r)).enumerate() {
                        debug_assert!(code == 1 || code == 2);
                        let col = 2 * g + (code >> 1) as usize;
                        micro::axpy(&mut acc, val.to_mul(), &vw[col * d..(col + 1) * d]);
                    }
                } else {
                    a.scan_row(r, |col, val| {
                        micro::axpy(&mut acc, val.to_mul(), &vw[col * d..(col + 1) * d]);
                    });
                }
                for (o, &x) in orow.iter_mut().zip(acc.iter()) {
                    *o = T::from_acc(x);
                }
            }
        });
    Matrix::from_vec(rows, d, out)
}

/// One output row of the batched N:M SpMM, register-tiled over
/// [`micro::TILE_COLS`]-wide column tiles: the accumulator tile stays in
/// registers for the whole nonzero scan instead of streaming through L1 per
/// nonzero. Per output element the adds run in the same ascending
/// group/bit order as `scan_row`, so results are bit-identical to the
/// single-head [`spmm_nm`] row loop.
fn spmm_row_tiled<T: Scalar>(
    nz_row: &[T],
    codes_row: &[u8],
    m: usize,
    p1_2: bool,
    vw: &[f32],
    d: usize,
    orow: &mut [T],
) {
    let mut j0 = 0usize;
    while j0 < d {
        let w = micro::TILE_COLS.min(d - j0);
        let mut acc = [0.0f32; micro::TILE_COLS];
        if p1_2 && w == micro::TILE_COLS {
            // Hardware 1:2 fast path: one nonzero per group, direct decode.
            for (g, (&code, val)) in codes_row.iter().zip(nz_row.iter()).enumerate() {
                debug_assert!(code == 1 || code == 2);
                let col = 2 * g + (code >> 1) as usize;
                let vrow: &[f32; micro::TILE_COLS] = vw
                    [col * d + j0..col * d + j0 + micro::TILE_COLS]
                    .try_into()
                    .unwrap();
                let s = val.to_mul();
                for (o, &x) in acc.iter_mut().zip(vrow) {
                    *o += s * x;
                }
            }
        } else {
            // General pattern (or tail tile): bit-scan decode per tile pass;
            // the scan repeats per tile but each pass touches the same
            // 64-byte V lines a full-row pass would.
            let mut nz_pos = 0usize;
            for (g, &code) in codes_row.iter().enumerate() {
                let base = g * m;
                let mut bits = code;
                while bits != 0 {
                    let bit = bits.trailing_zeros() as usize;
                    let col = base + bit;
                    let s = nz_row[nz_pos].to_mul();
                    let vrow = &vw[col * d + j0..col * d + j0 + w];
                    for (o, &x) in acc[..w].iter_mut().zip(vrow) {
                        *o += s * x;
                    }
                    nz_pos += 1;
                    bits &= bits - 1;
                }
            }
        }
        for (o, &x) in orow[j0..j0 + w].iter_mut().zip(acc[..w].iter()) {
            *o = T::from_acc(x);
        }
        j0 += w;
    }
}

/// Batched `O = Aᶜ · V` over a whole B×H stack in **one launch**: a single
/// profile of exactly `batch ×` the per-panel [`spmm_nm`] cost (tiling
/// hoisted out of the head loop) and one pool fan-out over (panel,
/// row-tile) work items. Bit-identical to a per-panel [`spmm_nm`] loop.
pub fn spmm_nm_batched<T: Scalar>(
    ctx: &mut GpuCtx,
    a: &NmBatch<T>,
    v: &BatchedMatrix<T>,
) -> BatchedMatrix<T> {
    let (batch, rows, inner) = (a.batch(), a.rows(), a.cols());
    let (bb, vr, d) = v.shape();
    assert_eq!(batch, bb, "batch sizes differ");
    assert_eq!(inner, vr, "A cols {inner} != V rows {vr}");

    let (reads, writes, phys_macs) =
        spmm_nm_charge::<T>(ctx, rows, inner, d, a.kept_per_row(), a.groups_per_row());
    let b64 = batch as u64;
    ctx.record(
        KernelProfile::new("spmm_nm", Stage::Av)
            .with_traffic(b64 * reads, b64 * writes)
            .with_tc(b64 * phys_macs, sparse_class::<T>()),
    );
    if !ctx.exec {
        return BatchedMatrix::charge_only(batch, rows, d);
    }

    let vw = micro::widen_batched(v);
    let kept = a.kept_per_row();
    let gpr = a.groups_per_row();
    let m = a.pattern().m();
    let p1_2 = a.pattern() == dfss_nmsparse::NmPattern::P1_2;
    let mut out = vec![T::zero(); batch * rows * d];
    crate::batched::fan_out(
        &mut out,
        rows * d,
        crate::batched::ROW_TILE * d,
        |p, e0, chunk| {
            let vw_p = &vw[p * inner * d..(p + 1) * inner * d];
            let nz_p = a.panel_nonzeros(p);
            let code_p = a.panel_codes(p);
            let row0 = e0 / d;
            for (local, orow) in chunk.chunks_mut(d).enumerate() {
                let r = row0 + local;
                spmm_row_tiled(
                    &nz_p[r * kept..(r + 1) * kept],
                    &code_p[r * gpr..(r + 1) * gpr],
                    m,
                    p1_2,
                    vw_p,
                    d,
                    orow,
                );
            }
        },
    );
    BatchedMatrix::from_vec(batch, rows, d, out)
}

/// Per-stream cost counters `(reads, writes, macs)` of one decode SpMM:
/// the stream's compressed score row (kept values + metadata) against its
/// cached `len × d_v` V panel, one output row. Same tiled model as
/// [`spmm_nm`] with a one-row output grid; shared by the solo and ragged
/// entry points so the ragged launch charges exactly the per-stream sum.
/// The V panel is charged at its stored element width `S`; compressed
/// scores and outputs stay at the compute width `T`.
fn spmm_decode_charge<T: Scalar, S: Scalar>(
    ctx: &GpuCtx,
    len: usize,
    d_v: usize,
    kept: usize,
    groups: usize,
) -> (u64, u64, u64) {
    let tn = ctx.tile_for(d_v) as u64;
    let tiles = (d_v as u64).div_ceil(tn);
    let a_row = (kept * T::BYTES) as u64 + (groups as u64 * 4).div_ceil(8);
    let v_panel = len as u64 * tn * S::BYTES as u64;
    let reads = tiles * (a_row + v_panel);
    let writes = (d_v * T::BYTES) as u64;
    (reads, writes, (kept * d_v) as u64)
}

/// Solo decode SpMM: one stream's compressed score row (with dense tail)
/// against its cached V (`len × d_v`) on the simulated sparse tensor core
/// → a `1 × d_v` output row. Records one per-stream profile.
pub fn spmm_nm_decode<T: Scalar, S: Scalar>(
    ctx: &mut GpuCtx,
    a: &NmRagged<T>,
    v: &Matrix<S>,
) -> Matrix<T> {
    assert_eq!(a.streams(), 1, "solo decode takes a single stream");
    let len = a.len_of(0);
    let (vr, d_v) = v.shape();
    assert_eq!(len, vr, "cached length {len} != V rows {vr}");
    let (reads, writes, macs) =
        spmm_decode_charge::<T, S>(ctx, len, d_v, a.kept_of(0), a.groups_of(0));
    ctx.record(
        KernelProfile::new("spmm_nm_decode", Stage::Av)
            .with_traffic(reads, writes)
            .with_tc(macs, sparse_class::<T>()),
    );
    if !ctx.exec {
        return Matrix::zeros(1, d_v);
    }
    let mut out = vec![T::zero(); d_v];
    decode::spmm_decode_stream(a, 0, v.as_slice(), d_v, &mut out);
    Matrix::from_vec(1, d_v, out)
}

/// Ragged batched decode SpMM: every stream's compressed score row against
/// its own cached V panel, in **one launch** — a single profile summing the
/// per-stream [`spmm_nm_decode`] charges, one pool fan-out over streams.
/// Returns the `streams × d_v` output (one row per stream). Bit-identical
/// to the per-stream solo loop (shared inner routine).
pub fn spmm_nm_ragged<T: Scalar, S: Scalar>(
    ctx: &mut GpuCtx,
    a: &NmRagged<T>,
    v: &RaggedBatch<S>,
) -> Matrix<T> {
    let streams = a.streams();
    assert_eq!(streams, v.streams(), "stream counts differ");
    assert_eq!(a.lens(), v.lens(), "cached lengths differ");
    let d_v = v.cols();
    let (mut reads, mut writes, mut macs) = (0u64, 0u64, 0u64);
    for i in 0..streams {
        let (r, w, m) =
            spmm_decode_charge::<T, S>(ctx, a.len_of(i), d_v, a.kept_of(i), a.groups_of(i));
        reads += r;
        writes += w;
        macs += m;
    }
    ctx.record(
        KernelProfile::new("spmm_nm_decode", Stage::Av)
            .with_traffic(reads, writes)
            .with_tc(macs, sparse_class::<T>()),
    );
    if !ctx.exec {
        return Matrix::zeros(streams, d_v);
    }
    let mut out = vec![T::zero(); streams * d_v];
    let items: Vec<(usize, &mut [T])> = out.chunks_mut(d_v.max(1)).enumerate().collect();
    items.into_par_iter().for_each(|(s, orow)| {
        decode::spmm_decode_stream(a, s, v.panel(s), d_v, orow);
    });
    Matrix::from_vec(streams, d_v, out)
}

/// `O = A · V` with CSR `A` (`n×n`, density s) and dense `V` (`n×d`),
/// vector-tiled per Figure 10(B): each output row gathers its k V-rows with
/// no cross-row reuse.
pub fn spmm_csr<T: Scalar>(ctx: &mut GpuCtx, a: &Csr<T>, v: &Matrix<T>) -> Matrix<T> {
    let rows = a.rows();
    let (vr, d) = v.shape();
    assert_eq!(a.cols(), vr);

    let nnz = a.nnz() as u64;
    // LHS values+indices load once per row (reused across the ≤T-wide output
    // vector); RHS rows are gathered once per nonzero — no reuse, the
    // Figure 10(B) cost structure.
    let a_bytes = nnz * (T::BYTES as u64 + 4);
    let v_bytes = nnz * d as u64 * T::BYTES as u64;
    let reads = a_bytes + v_bytes;
    let writes = (rows * d * T::BYTES) as u64;
    // Fine-grained gather cannot use the tensor core: CUDA-core MACs.
    let alu = 2 * nnz * d as u64;
    ctx.record(
        KernelProfile::new("spmm_csr", Stage::Av)
            .with_traffic(reads, writes)
            .with_alu(alu),
    );
    if !ctx.exec {
        return Matrix::zeros(rows, d);
    }

    let vw = micro::widen(v);
    let mut out = vec![T::zero(); rows * d];
    out.par_chunks_mut(d * ROW_CHUNK)
        .enumerate()
        .for_each(|(ci, chunk)| {
            let mut acc = scratch_f32_stale(d);
            for (local, orow) in chunk.chunks_mut(d).enumerate() {
                let r = ci * ROW_CHUNK + local;
                let (cols, vals) = a.row(r);
                acc.iter_mut().for_each(|x| *x = 0.0);
                for (&c, &val) in cols.iter().zip(vals) {
                    micro::axpy(
                        &mut acc,
                        val.to_mul(),
                        &vw[c as usize * d..(c as usize + 1) * d],
                    );
                }
                for (o, &x) in orow.iter_mut().zip(acc.iter()) {
                    *o = T::from_acc(x);
                }
            }
        });
    Matrix::from_vec(rows, d, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfss_nmsparse::NmPattern;
    use dfss_tensor::Rng;

    #[test]
    fn spmm_nm_matches_masked_dense_product() {
        let mut rng = Rng::new(1);
        let s = Matrix::<f32>::random_normal(32, 64, 0.0, 1.0, &mut rng);
        let v = Matrix::<f32>::random_normal(64, 16, 0.0, 1.0, &mut rng);
        let comp = NmCompressed::compress(&s, NmPattern::P1_2);
        let mut ctx = GpuCtx::a100();
        let o = spmm_nm(&mut ctx, &comp, &v);
        let reference = comp.decompress().matmul_ref(&v);
        assert!(o.max_abs_diff(&reference) < 1e-2);
    }

    #[test]
    fn spmm_nm_2_4_matches() {
        let mut rng = Rng::new(2);
        let s = Matrix::<f32>::random_normal(16, 32, 0.0, 1.0, &mut rng);
        let v = Matrix::<f32>::random_normal(32, 8, 0.0, 1.0, &mut rng);
        let comp = NmCompressed::compress(&s, NmPattern::P2_4);
        let mut ctx = GpuCtx::a100();
        let o = spmm_nm(&mut ctx, &comp, &v);
        assert!(o.max_abs_diff(&comp.decompress().matmul_ref(&v)) < 1e-2);
    }

    #[test]
    fn spmm_csr_matches_dense_product() {
        let mut rng = Rng::new(3);
        let s = Matrix::<f32>::random_normal(24, 48, 0.0, 1.0, &mut rng);
        let v = Matrix::<f32>::random_normal(48, 8, 0.0, 1.0, &mut rng);
        let csr = Csr::from_dense_topk(&s, 6);
        let mut ctx = GpuCtx::a100();
        let o = spmm_csr(&mut ctx, &csr, &v);
        assert!(o.max_abs_diff(&csr.to_dense().matmul_ref(&v)) < 1e-2);
    }

    #[test]
    fn sparse_tc_macs_are_half_of_dense() {
        let mut rng = Rng::new(4);
        let s = Matrix::<f32>::random_normal(128, 128, 0.0, 1.0, &mut rng);
        let v = Matrix::<f32>::random_normal(128, 64, 0.0, 1.0, &mut rng);
        let comp = NmCompressed::compress(&s, NmPattern::P1_2);
        let mut ctx = GpuCtx::a100();
        let _ = spmm_nm(&mut ctx, &comp, &v);
        let p = &ctx.timeline.entries()[0];
        assert_eq!(p.tc_macs, 128 * 64 * 64); // rows × kept × d
        assert_eq!(p.tc_class, dfss_gpusim::TcClass::SparseTf32);
    }

    #[test]
    fn csr_rhs_traffic_dominates_and_scales_with_density() {
        let mut rng = Rng::new(5);
        let s = Matrix::<f32>::random_normal(256, 256, 0.0, 1.0, &mut rng);
        let v = Matrix::<f32>::random_normal(256, 64, 0.0, 1.0, &mut rng);
        let mut lo = GpuCtx::a100();
        let mut hi = GpuCtx::a100();
        let _ = spmm_csr(&mut lo, &Csr::from_dense_topk(&s, 8), &v);
        let _ = spmm_csr(&mut hi, &Csr::from_dense_topk(&s, 64), &v);
        let lo_b = lo.timeline.total_bytes() as f64;
        let hi_b = hi.timeline.total_bytes() as f64;
        // 8× the nonzeros → close to 8× the traffic (writes are common).
        assert!(hi_b / lo_b > 5.0, "ratio {}", hi_b / lo_b);
    }

    #[test]
    fn nm_spmm_traffic_below_dense_gemm() {
        // Table 5: sparse AV moves less data than dense AV at the same shape.
        let n = 512;
        let mut rng = Rng::new(6);
        let s = Matrix::<f32>::random_normal(n, n, 0.0, 1.0, &mut rng);
        let v = Matrix::<f32>::random_normal(n, 64, 0.0, 1.0, &mut rng);
        let comp = NmCompressed::compress(&s, NmPattern::P1_2);
        let mut sp = GpuCtx::a100();
        let _ = spmm_nm(&mut sp, &comp, &v);
        let mut de = GpuCtx::a100();
        let _ = crate::gemm::gemm_nn(&mut de, Stage::Av, &s, &v);
        assert!(
            sp.timeline.total_bytes() < de.timeline.total_bytes(),
            "sparse {} dense {}",
            sp.timeline.total_bytes(),
            de.timeline.total_bytes()
        );
    }

    #[test]
    fn empty_csr_rows_produce_zero_output() {
        let s = Matrix::<f32>::zeros(4, 8);
        let csr = Csr::from_dense_where(&s, |_, _, v| v > 0.0);
        let v = Matrix::<f32>::from_fn(8, 4, |r, c| (r + c) as f32);
        let mut ctx = GpuCtx::a100();
        let o = spmm_csr(&mut ctx, &csr, &v);
        assert!(o.as_slice().iter().all(|&x| x == 0.0));
    }
}
