//! Softmax kernels (Appendix A.1.3).
//!
//! All variants use the numerically stable three-phase scheme of Equation
//! (10) (max, exp-sum, normalise). The *traffic* model distinguishes the
//! register-cached implementation (row fits in fast memory → the scores are
//! read once) from the streaming one (three read passes). Dfss halves the
//! row length, which can move a row from the streaming to the cached regime
//! — the paper's explanation for its better-than-theoretical speedup
//! (Appendix A.4).

use crate::GpuCtx;
use dfss_gpusim::{KernelProfile, Stage};
use dfss_nmsparse::{Csr, NmBatch, NmCompressed, NmRagged};
use dfss_tensor::{math, BatchedMatrix, Matrix, Scalar};
use rayon::prelude::*;

/// ALU ops per element: exp ≈ 4, plus max/sum/normalise passes ≈ 2.
const OPS_PER_ELEM: u64 = 6;

fn record_softmax<T: Scalar>(ctx: &mut GpuCtx, name: &'static str, rows: usize, row_len: usize) {
    record_softmax_batched::<T>(ctx, name, 1, rows, row_len);
}

/// One batched launch covering `batch` same-shape softmaxes: a single
/// profile of exactly `batch ×` the per-panel charge (the cache-regime pass
/// count depends only on `row_len` and is computed once per launch).
fn record_softmax_batched<T: Scalar>(
    ctx: &mut GpuCtx,
    name: &'static str,
    batch: usize,
    rows: usize,
    row_len: usize,
) {
    let passes = ctx.dev.softmax_read_passes(row_len);
    let elems = (batch * rows * row_len) as u64;
    ctx.record(
        KernelProfile::new(name, Stage::Softmax)
            .with_traffic(passes * elems * T::BYTES as u64, elems * T::BYTES as u64)
            .with_alu(elems * OPS_PER_ELEM),
    );
}

/// Rows per parallel work item: one scratch acquisition and one shim item
/// serve a whole batch of rows.
const ROW_CHUNK: usize = 16;

/// Lane-blocked row maximum (a serial `fold(NEG_INFINITY, f32::max)` is a
/// scalar dependency chain the vectorizer cannot break), dispatched to the
/// SIMD backend. `f32::max` is associative, commutative, and NaN-ignoring,
/// and the only order-sensitive case — a `±0.0` tie for the row maximum —
/// is invisible downstream because `exp(x - -0.0) == exp(x - 0.0)` exactly;
/// softmax results are identical to the serial fold on every backend. The
/// exp pass and the normalising sum stay scalar: they are order-sensitive
/// and part of the bit contract.
fn row_max(buf: &[f32]) -> f32 {
    crate::simd::active().row_max(buf)
}

/// Stable softmax of one row in place through a caller-provided f32 scratch
/// slice (`buf.len() >= row.len()`): vectorizable widening copy, a
/// lane-blocked max, the shared exp pass, and the normalising multiply
/// fused into the narrowing write-back — one fewer pass over the row than
/// the textbook four, with bit-identical results.
fn softmax_into<T: Scalar>(row: &mut [T], buf: &mut [f32]) {
    let buf = &mut buf[..row.len()];
    for (b, v) in buf.iter_mut().zip(row.iter()) {
        *b = v.to_f32();
    }
    let inv = math::softmax_exp_pass(buf, row_max(buf));
    for (dst, &v) in row.iter_mut().zip(buf.iter()) {
        *dst = T::from_f32(v * inv);
    }
}

/// Stable softmax of one row, through a pooled f32 scratch buffer.
fn softmax_slice<T: Scalar>(row: &mut [T]) {
    let mut buf = dfss_tensor::scratch_f32_stale(row.len());
    softmax_into(row, &mut buf);
}

/// Row-batched parallel softmax over a flat `rows × row_len` buffer.
fn softmax_rows<T: Scalar>(data: &mut [T], row_len: usize) {
    if row_len == 0 {
        return;
    }
    data.par_chunks_mut(row_len * ROW_CHUNK).for_each(|chunk| {
        // Stale scratch: `softmax_into`'s widening copy overwrites it.
        let mut buf = dfss_tensor::scratch_f32_stale(row_len);
        for row in chunk.chunks_mut(row_len) {
            softmax_into(row, &mut buf);
        }
    });
}

/// Dense row-wise softmax: `A = softmax(S)` over each length-n row.
pub fn softmax_dense<T: Scalar>(ctx: &mut GpuCtx, scores: &Matrix<T>) -> Matrix<T> {
    let (rows, cols) = scores.shape();
    record_softmax::<T>(ctx, "softmax_dense", rows, cols);
    if !ctx.exec {
        return scores.clone();
    }
    let mut out = scores.clone();
    softmax_rows(out.as_mut_slice(), cols);
    out
}

/// Compressed softmax: normalises the *nonzeros* of each row in place.
///
/// The kept entries are exactly the per-group maxima of the scores, so
/// normalising over them equals `softmax(m ⊙ S)` restricted to the kept
/// positions — the paper's sparse attention weights. Row length is halved
/// (N/M of dense), which is where the softmax-stage speedup in Figure 5
/// comes from.
pub fn softmax_nm<T: Scalar>(ctx: &mut GpuCtx, comp: &mut NmCompressed<T>) {
    let rows = comp.rows();
    let kept = comp.kept_per_row();
    record_softmax::<T>(ctx, "softmax_nm", rows, kept);
    if !ctx.exec {
        return;
    }
    softmax_rows(comp.nonzeros_mut(), kept);
}

/// Batched dense softmax: row-wise softmax over every panel of the stack in
/// **one launch** (single profile = `batch ×` the per-panel
/// [`softmax_dense`] charge; rows are independent, so the whole
/// batch × rows volume is one pool fan-out). Bit-identical to a per-panel
/// loop.
pub fn softmax_dense_batched<T: Scalar>(
    ctx: &mut GpuCtx,
    scores: &BatchedMatrix<T>,
) -> BatchedMatrix<T> {
    let (batch, rows, cols) = scores.shape();
    record_softmax_batched::<T>(ctx, "softmax_dense", batch, rows, cols);
    if !ctx.exec {
        return scores.clone();
    }
    let mut out = scores.clone();
    softmax_rows(out.as_mut_slice(), cols);
    out
}

/// Batched compressed softmax: normalises the nonzeros of every panel in
/// one launch (single profile = `batch ×` the per-panel [`softmax_nm`]
/// charge). Bit-identical to a per-panel loop.
pub fn softmax_nm_batched<T: Scalar>(ctx: &mut GpuCtx, comp: &mut NmBatch<T>) {
    let (batch, rows, kept) = (comp.batch(), comp.rows(), comp.kept_per_row());
    record_softmax_batched::<T>(ctx, "softmax_nm", batch, rows, kept);
    if !ctx.exec {
        return;
    }
    softmax_rows(comp.nonzeros_mut(), kept);
}

/// Ragged decode softmax: normalises every stream's kept score values
/// (full-group nonzeros + dense tail) in place, in **one launch** — a
/// single profile whose counters are the sum of the per-stream charges
/// (each stream's cache-regime pass count is computed from its own kept
/// length, so streams on different sides of the cached/streaming boundary
/// charge differently inside the same launch). With one stream this *is*
/// the solo decode softmax — the per-stream loop and the ragged launch run
/// the same per-row routine, so outputs are bit-identical either way.
pub fn softmax_nm_ragged<T: Scalar>(ctx: &mut GpuCtx, comp: &mut NmRagged<T>) {
    let (mut reads, mut writes, mut alu) = (0u64, 0u64, 0u64);
    for i in 0..comp.streams() {
        let kept = comp.kept_of(i) as u64;
        let passes = ctx.dev.softmax_read_passes(comp.kept_of(i));
        reads += passes * kept * T::BYTES as u64;
        writes += kept * T::BYTES as u64;
        alu += kept * OPS_PER_ELEM;
    }
    ctx.record(
        KernelProfile::new("softmax_nm_decode", Stage::Softmax)
            .with_traffic(reads, writes)
            .with_alu(alu),
    );
    if !ctx.exec {
        return;
    }
    comp.rows_mut().into_par_iter().for_each(|row| {
        if !row.is_empty() {
            let mut buf = dfss_tensor::scratch_f32_stale(row.len());
            softmax_into(row, &mut buf);
        }
    });
}

/// CSR softmax for the explicit top-k baseline: normalises each row's
/// stored values.
pub fn softmax_csr<T: Scalar>(ctx: &mut GpuCtx, csr: &mut Csr<T>) {
    let rows = csr.rows();
    let avg_len = if rows == 0 {
        0
    } else {
        csr.nnz() / rows.max(1)
    };
    record_softmax::<T>(ctx, "softmax_csr", rows, avg_len);
    if !ctx.exec {
        return;
    }
    for r in 0..rows {
        softmax_slice(csr.row_vals_mut(r));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfss_nmsparse::NmPattern;
    use dfss_tensor::Rng;

    #[test]
    fn dense_rows_sum_to_one() {
        let mut rng = Rng::new(1);
        let s = Matrix::<f32>::random_normal(16, 64, 0.0, 1.0, &mut rng);
        let mut ctx = GpuCtx::a100();
        let a = softmax_dense(&mut ctx, &s);
        for r in 0..16 {
            let sum: f32 = a.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {r}: {sum}");
        }
    }

    #[test]
    fn nm_rows_sum_to_one() {
        let mut rng = Rng::new(2);
        let s = Matrix::<f32>::random_normal(16, 64, 0.0, 1.0, &mut rng);
        let mut comp = NmCompressed::compress(&s, NmPattern::P1_2);
        let mut ctx = GpuCtx::a100();
        softmax_nm(&mut ctx, &mut comp);
        for r in 0..16 {
            let sum: f32 = comp.row_nonzeros(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn nm_softmax_equals_masked_dense_softmax() {
        // softmax over kept entries == dense softmax of mask⊙S with -inf at
        // pruned slots, restricted to kept slots.
        let mut rng = Rng::new(3);
        let s = Matrix::<f32>::random_normal(8, 32, 0.0, 1.0, &mut rng);
        let pattern = NmPattern::P2_4;
        let mask = pattern.mask_matrix(&s);
        let mut comp = NmCompressed::compress(&s, pattern);
        let mut ctx = GpuCtx::a100();
        softmax_nm(&mut ctx, &mut comp);
        let sparse_a = comp.decompress();
        for r in 0..8 {
            let masked: Vec<f32> = (0..32)
                .map(|c| {
                    if mask.get(r, c) == 1.0 {
                        s.get(r, c)
                    } else {
                        f32::NEG_INFINITY
                    }
                })
                .collect();
            let expect = math::softmax(&masked);
            for c in 0..32 {
                assert!(
                    (sparse_a.get(r, c) - expect[c]).abs() < 1e-5,
                    "({r},{c}): {} vs {}",
                    sparse_a.get(r, c),
                    expect[c]
                );
            }
        }
    }

    #[test]
    fn csr_softmax_normalises() {
        let mut rng = Rng::new(4);
        let s = Matrix::<f32>::random_normal(8, 32, 0.0, 1.0, &mut rng);
        let mut csr = Csr::from_dense_topk(&s, 5);
        let mut ctx = GpuCtx::a100();
        softmax_csr(&mut ctx, &mut csr);
        for r in 0..8 {
            let (_, vals) = csr.row(r);
            let sum: f32 = vals.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn halved_rows_can_hit_cached_regime() {
        // Dense row of 4096 streams (3 read passes); Dfss row of 2048 is
        // cached (1 pass) — the super-theoretical speedup mechanism.
        let mut ctx = GpuCtx::a100();
        record_softmax::<f32>(&mut ctx, "dense", 1, 4096);
        record_softmax::<f32>(&mut ctx, "nm", 1, 2048);
        let e = ctx.timeline.entries();
        let dense_per_elem = e[0].bytes_read as f64 / 4096.0;
        let nm_per_elem = e[1].bytes_read as f64 / 2048.0;
        assert_eq!(dense_per_elem, 12.0); // 3 passes × 4B
        assert_eq!(nm_per_elem, 4.0); // 1 pass × 4B
    }

    #[test]
    fn bf16_softmax_stable() {
        use dfss_tensor::Bf16;
        let mut rng = Rng::new(5);
        let s = Matrix::<Bf16>::random_normal(4, 16, 0.0, 4.0, &mut rng);
        let mut ctx = GpuCtx::a100();
        let a = softmax_dense(&mut ctx, &s);
        for r in 0..4 {
            let sum: f32 = a.row(r).iter().map(|v| v.to_f32()).sum();
            assert!((sum - 1.0).abs() < 0.05, "bf16 row sum {sum}");
            assert!(a.row(r).iter().all(|v| !v.is_nan()));
        }
    }
}
