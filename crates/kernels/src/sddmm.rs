//! The fused SDDMM + N:M prune epilogue — the paper's core kernel (§3.4,
//! Appendix A.1.2).
//!
//! "We observe that when computing QKᵀ, the results are first accumulated in
//! GPU registers and written to memory when all the computations are done.
//! Therefore, we can implement the pruning as an epilogue of the matrix
//! multiplication: after the accumulation is finished, we compare the data
//! stored in the registers, select the larger ones and generate the
//! metadata. Then, we only write the reserved non-zeros and metadata to
//! memory."
//!
//! Two consequences reproduced here:
//! 1. **Zero pruning overhead** — the fused kernel's traffic equals the
//!    dense GEMM's *input* traffic plus compressed-output writes; the dense
//!    n×n score matrix is never read or written. The unfused ablation
//!    ([`sddmm_nm_unfused`]) pays exactly `n²` extra writes + `n²` extra
//!    reads, which a test pins down.
//! 2. **Memory-footprint reduction** — `n² · 4` bytes of scores become
//!    `n²/2 · 4 + n²/16 · 4` bytes of nonzeros + metadata.

use crate::ctx::{dense_class, GpuCtx};
use crate::decode;
use crate::micro;
use dfss_gpusim::{KernelProfile, Stage};
use dfss_nmsparse::{NmBatch, NmCompressed, NmPattern, NmRagged};
use dfss_tensor::{scratch_f32, scratch_f32_stale, BatchedMatrix, Matrix, RaggedBatch, Scalar};
use rayon::prelude::*;

/// ALU cost of pruning one M-group in the epilogue.
///
/// 1:2 float: one comparison plus metadata shift/or (§A.1.2 Figure 8: "the
/// adjacent two data are held by the same thread, we can simply compare
/// them"). 2:4 bf16: the kernel compares pair sums — 6 sums + selection +
/// packing; the factor below additionally folds in the warp divergence the
/// paper observed ("selecting 2 larger ones from 4 elements requires more
/// comparisons, which results in more warp divergence" — it is why their
/// bf16 QKᵀ runs slightly slower than the dense baseline in Figure 5). The
/// constant is calibrated so that, at n = 4096, the bf16 epilogue's ALU time
/// is roughly the kernel's memory time, reproducing that effect.
fn epilogue_ops_per_group(pattern: NmPattern) -> u64 {
    match (pattern.n(), pattern.m()) {
        (1, 2) => 3,
        (2, 4) => 12 * 9, // 12 real ops × divergence de-rate
        // General patterns: selection network of ~m·log2(m) compares.
        (_, m) => (m as u64) * (usize::BITS - (m - 1).leading_zeros()) as u64 * 4,
    }
}

/// Shared epilogue: prune rows of a score panel into nonzeros + codes.
fn prune_rows_into<T: Scalar>(
    pattern: NmPattern,
    scores: &[f32],
    cols: usize,
    scale: f32,
    nz_out: &mut [T],
    code_out: &mut [u8],
) {
    let m = pattern.m();
    let n_keep = pattern.n();
    let mut nz_pos = 0usize;
    let mut code_pos = 0usize;
    let mut kept = [0usize; dfss_nmsparse::MAX_M];
    for row in scores.chunks_exact(cols) {
        for chunk in row.chunks_exact(m) {
            let n_kept = pattern.select_group_into(chunk, &mut kept);
            let mut code = 0u8;
            for &kidx in &kept[..n_kept] {
                code |= 1 << kidx;
                nz_out[nz_pos] = T::from_acc(chunk[kidx] * scale);
                nz_pos += 1;
            }
            code_out[code_pos] = code;
            code_pos += 1;
        }
    }
    debug_assert_eq!(nz_pos, scores.len() / m * n_keep);
}

/// Fused SDDMM: `compress_{N:M}(scale · Q·Kᵀ)` without materialising the
/// dense score matrix. `Q: n×d`, `K: n×d` → compressed `n×n`.
pub fn sddmm_nm_fused<T: Scalar>(
    ctx: &mut GpuCtx,
    q: &Matrix<T>,
    k: &Matrix<T>,
    scale: f32,
    pattern: NmPattern,
) -> NmCompressed<T> {
    let (rows, dq) = q.shape();
    let (cols, dk) = k.shape();
    assert_eq!(dq, dk, "inner dimensions differ");
    assert_eq!(cols % pattern.m(), 0);

    // --- simulated cost -------------------------------------------------
    // Input traffic: identical to the dense GEMM (Figure 7 tiling). Output
    // traffic: nonzeros + metadata only — the zero-overhead claim.
    let (reads, writes, macs, groups) = fused_charge::<T>(ctx, rows, cols, dq, pattern);
    ctx.record(
        KernelProfile::new("sddmm_nm_fused", Stage::Qk)
            .with_traffic(reads, writes)
            .with_tc(macs, dense_class::<T>())
            .with_alu(groups * epilogue_ops_per_group(pattern)),
    );

    // --- execution ------------------------------------------------------
    let kept_per_row = pattern.kept_per_row(cols);
    let groups_per_row = cols / pattern.m();
    if !ctx.exec {
        // Charge-only: a structurally valid compressed result (keep the
        // first N of every M-group) with zero values.
        let code = (0..pattern.n()).fold(0u8, |acc, i| acc | (1 << i));
        return NmCompressed::from_parts(
            pattern,
            rows,
            cols,
            vec![T::zero(); rows * kept_per_row],
            vec![code; rows * groups_per_row],
        );
    }
    let qw = micro::widen(q);
    let kt = micro::widen_transposed(k);

    let mut nonzeros = vec![T::zero(); rows * kept_per_row];
    let mut codes = vec![0u8; rows * groups_per_row];

    // Two Q-rows per work item, accumulated as an outer product over the
    // widen-transposed K panel — the same `axpy`/`axpy2` microkernel (and
    // therefore the same serial-k-order per-element sums) as the dense
    // `gemm_nt`, so the fused epilogue prunes exactly the scores the dense
    // GEMM would have produced.
    nonzeros
        .par_chunks_mut(2 * kept_per_row)
        .zip(codes.par_chunks_mut(2 * groups_per_row))
        .enumerate()
        .for_each(|(pair_idx, (nz_chunk, code_chunk))| {
            let i0 = pair_idx * 2;
            let rows_here = nz_chunk.len() / kept_per_row;
            // Accumulate the pair's score rows in the "registers" (a pooled
            // scratch buffer, zero-filled on acquisition).
            let mut acc = scratch_f32(rows_here * cols);
            let q0 = &qw[i0 * dq..(i0 + 1) * dq];
            if rows_here == 2 {
                let q1 = &qw[(i0 + 1) * dq..(i0 + 2) * dq];
                let (acc0, acc1) = acc.split_at_mut(cols);
                for kk in 0..dq {
                    micro::axpy2(acc0, acc1, q0[kk], q1[kk], &kt[kk * cols..(kk + 1) * cols]);
                }
            } else {
                for kk in 0..dq {
                    micro::axpy(&mut acc, q0[kk], &kt[kk * cols..(kk + 1) * cols]);
                }
            }
            prune_rows_into(pattern, &acc, cols, scale, nz_chunk, code_chunk);
        });

    NmCompressed::from_parts(pattern, rows, cols, nonzeros, codes)
}

/// Fast 1:2 prune of score rows: per pair, keep the strictly larger value
/// (ties to the earlier index) — branchless, so the compare/select loop
/// vectorizes. The *selection* is exactly
/// [`NmPattern::select_group_into`]'s (`group[1] > group[0]` is the same
/// predicate its insertion sort applies), so codes and values are
/// bit-identical to [`prune_rows_into`]; only the host wall-clock differs.
fn prune_rows_into_1_2<T: Scalar>(
    scores: &[f32],
    scale: f32,
    nz_out: &mut [T],
    code_out: &mut [u8],
) {
    for ((pair, nz), code) in scores
        .chunks_exact(2)
        .zip(nz_out.iter_mut())
        .zip(code_out.iter_mut())
    {
        let hi = (pair[1] > pair[0]) as usize;
        *code = 1 + hi as u8;
        *nz = T::from_acc(pair[hi] * scale);
    }
}

/// Prune a block of score rows with the fastest epilogue for the pattern.
fn prune_rows_dispatch<T: Scalar>(
    pattern: NmPattern,
    scores: &[f32],
    cols: usize,
    scale: f32,
    nz_out: &mut [T],
    code_out: &mut [u8],
) {
    if pattern == NmPattern::P1_2 {
        prune_rows_into_1_2(scores, scale, nz_out, code_out);
    } else {
        prune_rows_into(pattern, scores, cols, scale, nz_out, code_out);
    }
}

/// The per-panel cost counters of one fused SDDMM (shared by the single and
/// batched entry points so the batched charge is exactly `batch ×` this).
fn fused_charge<T: Scalar>(
    ctx: &GpuCtx,
    rows: usize,
    cols: usize,
    d: usize,
    pattern: NmPattern,
) -> (u64, u64, u64, u64) {
    let tm = ctx.tile_for(rows) as u64;
    let tn = ctx.tile_for(cols) as u64;
    let (rows64, cols64, d64) = (rows as u64, cols as u64, d as u64);
    let tiles = rows64.div_ceil(tm) * cols64.div_ceil(tn);
    let reads = tiles * (tm * d64 + d64 * tn) * T::BYTES as u64;
    let kept = pattern.kept_per_row(cols) as u64;
    let nz_bytes = rows64 * kept * T::BYTES as u64;
    let meta_bytes = (rows64 * (cols64 / pattern.m() as u64) * 4).div_ceil(8);
    let groups = rows64 * cols64 / pattern.m() as u64;
    (reads, nz_bytes + meta_bytes, rows64 * cols64 * d64, groups)
}

/// Batched fused SDDMM: `compress_{N:M}(scale · Q·Kᵀ)` for a whole B×H
/// stack in **one launch** — a single profile of exactly `batch ×` the
/// per-panel [`sddmm_nm_fused`] cost (tiling hoisted out of the head loop),
/// one pool fan-out over (panel, row-tile) work items, and nonzeros +
/// metadata written straight into the stacked [`NmBatch`] buffers.
/// Bit-identical to a per-panel [`sddmm_nm_fused`] loop.
pub fn sddmm_nm_fused_batched<T: Scalar>(
    ctx: &mut GpuCtx,
    q: &BatchedMatrix<T>,
    k: &BatchedMatrix<T>,
    scale: f32,
    pattern: NmPattern,
) -> NmBatch<T> {
    let (batch, rows, dq) = q.shape();
    let (bb, cols, dk) = k.shape();
    assert_eq!(batch, bb, "batch sizes differ");
    assert_eq!(dq, dk, "inner dimensions differ");
    assert_eq!(cols % pattern.m(), 0);

    let (reads, writes, macs, groups) = fused_charge::<T>(ctx, rows, cols, dq, pattern);
    let b64 = batch as u64;
    ctx.record(
        KernelProfile::new("sddmm_nm_fused", Stage::Qk)
            .with_traffic(b64 * reads, b64 * writes)
            .with_tc(b64 * macs, dense_class::<T>())
            .with_alu(b64 * groups * epilogue_ops_per_group(pattern)),
    );
    if !ctx.exec {
        return NmBatch::charge_only(pattern, batch, rows, cols);
    }

    let kept_per_row = pattern.kept_per_row(cols);
    let groups_per_row = cols / pattern.m();
    let qw = micro::widen_batched(q);
    let kp = micro::widen_packed_batched(k);
    let ppl = micro::packed_len(cols, dq);

    let mut nonzeros = vec![T::zero(); batch * rows * kept_per_row];
    let mut codes = vec![0u8; batch * rows * groups_per_row];
    crate::batched::fan_out2(
        &mut nonzeros,
        rows * kept_per_row,
        crate::batched::ROW_TILE * kept_per_row,
        &mut codes,
        rows * groups_per_row,
        crate::batched::ROW_TILE * groups_per_row,
        |p, e0, nz_chunk, code_chunk| {
            let qw_p = &qw[p * rows * dq..(p + 1) * rows * dq];
            let kp_p = &kp[p * ppl..(p + 1) * ppl];
            let rows_here = nz_chunk.len() / kept_per_row;
            let row0 = e0 / kept_per_row;
            // Score rows accumulate in the register-tiled microkernel and
            // spill once into this scratch block ("the registers").
            let mut acc = scratch_f32_stale(micro::TILE_ROWS * cols);
            let mut local = 0;
            while local < rows_here {
                let rcnt = micro::TILE_ROWS.min(rows_here - local);
                micro::panel_product(qw_p, row0 + local, rcnt, dq, kp_p, cols, &mut acc);
                prune_rows_dispatch(
                    pattern,
                    &acc[..rcnt * cols],
                    cols,
                    scale,
                    &mut nz_chunk[local * kept_per_row..(local + rcnt) * kept_per_row],
                    &mut code_chunk[local * groups_per_row..(local + rcnt) * groups_per_row],
                );
                local += rcnt;
            }
        },
    );
    NmBatch::from_parts(pattern, batch, rows, cols, nonzeros, codes)
}

/// Standalone prune kernel (the unfused path): reads a dense score matrix
/// from memory, writes nonzeros + metadata. This is what "current software
/// library designed for pruning under N:M sparsity" does and what §2.3 says
/// offsets the benefit of sparsity.
pub fn dense_prune<T: Scalar>(
    ctx: &mut GpuCtx,
    scores: &Matrix<T>,
    pattern: NmPattern,
) -> NmCompressed<T> {
    let (rows, cols) = scores.shape();
    let kept = pattern.kept_per_row(cols) as u64;
    let groups = (rows * cols / pattern.m()) as u64;
    let nz_bytes = rows as u64 * kept * T::BYTES as u64;
    let meta_bytes = (groups * 4).div_ceil(8);
    ctx.record(
        KernelProfile::new("dense_prune", Stage::Overhead)
            .with_traffic(scores.bytes() as u64, nz_bytes + meta_bytes)
            .with_alu(groups * epilogue_ops_per_group(pattern)),
    );
    if !ctx.exec {
        let code = (0..pattern.n()).fold(0u8, |acc, i| acc | (1 << i));
        let kept = pattern.kept_per_row(cols);
        return NmCompressed::from_parts(
            pattern,
            rows,
            cols,
            vec![T::zero(); rows * kept],
            vec![code; rows * cols / pattern.m()],
        );
    }
    NmCompressed::compress(scores, pattern)
}

/// Unfused ablation: dense GEMM writes the n×n scores, then a separate
/// prune kernel reads them back. Numerically identical to
/// [`sddmm_nm_fused`]; costs `2 n²` extra element transfers.
pub fn sddmm_nm_unfused<T: Scalar>(
    ctx: &mut GpuCtx,
    q: &Matrix<T>,
    k: &Matrix<T>,
    scale: f32,
    pattern: NmPattern,
) -> NmCompressed<T> {
    let scores = crate::gemm::gemm_nt(ctx, Stage::Qk, q, k, scale);
    dense_prune(ctx, &scores, pattern)
}

/// Batched standalone prune kernel: one launch over the whole stack, a
/// single profile of exactly `batch ×` the per-panel [`dense_prune`] cost.
/// Panel results are bit-identical to `NmCompressed::compress` of each
/// panel (the same group selection, values copied unscaled).
pub fn dense_prune_batched<T: Scalar>(
    ctx: &mut GpuCtx,
    scores: &BatchedMatrix<T>,
    pattern: NmPattern,
) -> NmBatch<T> {
    let (batch, rows, cols) = scores.shape();
    assert_eq!(cols % pattern.m(), 0);
    let kept = pattern.kept_per_row(cols) as u64;
    let groups = (rows * cols / pattern.m()) as u64;
    let nz_bytes = rows as u64 * kept * T::BYTES as u64;
    let meta_bytes = (groups * 4).div_ceil(8);
    let b64 = batch as u64;
    ctx.record(
        KernelProfile::new("dense_prune", Stage::Overhead)
            .with_traffic(
                b64 * (rows * cols * T::BYTES) as u64,
                b64 * (nz_bytes + meta_bytes),
            )
            .with_alu(b64 * groups * epilogue_ops_per_group(pattern)),
    );
    if !ctx.exec {
        return NmBatch::charge_only(pattern, batch, rows, cols);
    }

    let kept_per_row = pattern.kept_per_row(cols);
    let groups_per_row = cols / pattern.m();
    let mut nonzeros = vec![T::zero(); batch * rows * kept_per_row];
    let mut codes = vec![0u8; batch * rows * groups_per_row];
    crate::batched::fan_out2(
        &mut nonzeros,
        rows * kept_per_row,
        crate::batched::ROW_TILE * kept_per_row,
        &mut codes,
        rows * groups_per_row,
        crate::batched::ROW_TILE * groups_per_row,
        |p, e0, nz_chunk, code_chunk| {
            let row0 = e0 / kept_per_row;
            let rows_here = nz_chunk.len() / kept_per_row;
            let m = pattern.m();
            let mut group_scores = [0.0f32; dfss_nmsparse::MAX_M];
            let mut kept_idx = [0usize; dfss_nmsparse::MAX_M];
            let mut nz_pos = 0usize;
            let mut code_pos = 0usize;
            for r in row0..row0 + rows_here {
                for chunk in scores.row(p, r).chunks_exact(m) {
                    for (s, v) in group_scores.iter_mut().zip(chunk) {
                        *s = v.to_f32();
                    }
                    let n_kept = pattern.select_group_into(&group_scores[..m], &mut kept_idx);
                    let mut code = 0u8;
                    for &ki in &kept_idx[..n_kept] {
                        code |= 1 << ki;
                        nz_chunk[nz_pos] = chunk[ki];
                        nz_pos += 1;
                    }
                    code_chunk[code_pos] = code;
                    code_pos += 1;
                }
            }
        },
    );
    NmBatch::from_parts(pattern, batch, rows, cols, nonzeros, codes)
}

/// Per-stream cost counters `(reads, writes, macs, alu)` of one fused
/// decode score + prune: a `1 × len` score row against the `len × d` cached
/// K panel, N:M-pruned over full M-groups with a dense tail (see
/// [`NmRagged`]). Shared by the solo and ragged entry points so a ragged
/// launch charges exactly the sum of its streams' solo charges. The K
/// panel is charged at its stored element width `S` (half the traffic
/// when the serving layer quantises the KV cache to bf16); the query row
/// and pruned outputs stay at the compute width `T`.
fn decode_charge<T: Scalar, S: Scalar>(
    ctx: &GpuCtx,
    len: usize,
    d: usize,
    pattern: NmPattern,
) -> (u64, u64, u64, u64) {
    let tn = ctx.tile_for(len) as u64;
    let (len64, d64) = (len as u64, d as u64);
    // tm = 1: the decode grid is one output row per stream.
    let tiles = len64.div_ceil(tn);
    let reads = tiles * (d64 * T::BYTES as u64 + d64 * tn * S::BYTES as u64);
    let kept = NmRagged::<T>::kept_for(pattern, len) as u64;
    let groups = NmRagged::<T>::groups_for(pattern, len) as u64;
    let writes = kept * T::BYTES as u64 + (groups * 4).div_ceil(8);
    (
        reads,
        writes,
        len64 * d64,
        groups * epilogue_ops_per_group(pattern),
    )
}

/// Per-stream cost counters `(reads, writes, alu)` of one standalone decode
/// prune (the unfused ablation reading a dense score row back from memory).
fn decode_prune_charge<T: Scalar>(len: usize, pattern: NmPattern) -> (u64, u64, u64) {
    let kept = NmRagged::<T>::kept_for(pattern, len) as u64;
    let groups = NmRagged::<T>::groups_for(pattern, len) as u64;
    (
        len as u64 * T::BYTES as u64,
        kept * T::BYTES as u64 + (groups * 4).div_ceil(8),
        groups * epilogue_ops_per_group(pattern),
    )
}

/// Solo fused decode step: `compress(scale · q·Kᵀ)` for **one** stream —
/// the new query row (`1 × d`) against the stream's cached `K` (`len × d`),
/// pruned N:M over full M-groups with the dense tail kept (see
/// [`NmRagged`]). Records one per-stream profile; the per-stream solo
/// decode loop the ragged launch is measured against.
pub fn sddmm_nm_decode<T: Scalar, S: Scalar>(
    ctx: &mut GpuCtx,
    q_row: &Matrix<T>,
    k: &Matrix<S>,
    scale: f32,
    pattern: NmPattern,
) -> NmRagged<T> {
    assert_eq!(q_row.rows(), 1, "decode takes a single query row");
    let (len, dk) = k.shape();
    assert_eq!(q_row.cols(), dk, "inner dimensions differ");
    let (reads, writes, macs, alu) = decode_charge::<T, S>(ctx, len, dk, pattern);
    ctx.record(
        KernelProfile::new("sddmm_nm_decode", Stage::Qk)
            .with_traffic(reads, writes)
            .with_tc(macs, dense_class::<T>())
            .with_alu(alu),
    );
    if !ctx.exec {
        return NmRagged::zeros(pattern, &[len]);
    }
    let mut nonzeros = vec![T::zero(); NmRagged::<T>::kept_for(pattern, len)];
    let mut codes = vec![0u8; NmRagged::<T>::groups_for(pattern, len)];
    decode::score_prune_stream(
        q_row.row(0),
        k.as_slice(),
        len,
        dk,
        scale,
        pattern,
        &mut nonzeros,
        &mut codes,
    );
    NmRagged::from_parts(pattern, vec![len], nonzeros, codes)
}

/// Ragged batched fused decode: every stream's new query row (row `i` of
/// `q`) against its own cached K panel, in **one launch** — a single
/// profile whose counters are the sum of the per-stream
/// [`sddmm_nm_decode`] charges, one pool fan-out over streams.
/// Bit-identical to the per-stream solo loop (shared inner routines).
pub fn sddmm_nm_fused_ragged<T: Scalar, S: Scalar>(
    ctx: &mut GpuCtx,
    q: &Matrix<T>,
    k: &RaggedBatch<S>,
    scale: f32,
    pattern: NmPattern,
) -> NmRagged<T> {
    let streams = k.streams();
    assert_eq!(q.rows(), streams, "one query row per stream");
    let d = k.cols();
    assert_eq!(q.cols(), d, "inner dimensions differ");
    let (mut reads, mut writes, mut macs, mut alu) = (0u64, 0u64, 0u64, 0u64);
    for &len in k.lens() {
        let (r, w, m, a) = decode_charge::<T, S>(ctx, len, d, pattern);
        reads += r;
        writes += w;
        macs += m;
        alu += a;
    }
    ctx.record(
        KernelProfile::new("sddmm_nm_decode", Stage::Qk)
            .with_traffic(reads, writes)
            .with_tc(macs, dense_class::<T>())
            .with_alu(alu),
    );
    if !ctx.exec {
        return NmRagged::zeros(pattern, k.lens());
    }
    decode::build_ragged(pattern, k.lens(), |s, nz, code| {
        decode::score_prune_stream(
            q.row(s),
            k.panel(s),
            k.len_of(s),
            d,
            scale,
            pattern,
            nz,
            code,
        );
    })
}

/// Ragged standalone decode prune (the unfused ablation): reads every
/// stream's dense score column (a `cols == 1` [`RaggedBatch`], one scalar
/// per cached position) back from memory and writes kept values + metadata
/// — one launch, per-stream charges summed. Kept values are copied
/// verbatim like the prefill [`dense_prune`].
pub fn dense_prune_ragged<T: Scalar>(
    ctx: &mut GpuCtx,
    scores: &RaggedBatch<T>,
    pattern: NmPattern,
) -> NmRagged<T> {
    assert_eq!(
        scores.cols(),
        1,
        "decode scores are one scalar per position"
    );
    let (mut reads, mut writes, mut alu) = (0u64, 0u64, 0u64);
    for &len in scores.lens() {
        let (r, w, a) = decode_prune_charge::<T>(len, pattern);
        reads += r;
        writes += w;
        alu += a;
    }
    ctx.record(
        KernelProfile::new("dense_prune_decode", Stage::Overhead)
            .with_traffic(reads, writes)
            .with_alu(alu),
    );
    if !ctx.exec {
        return NmRagged::zeros(pattern, scores.lens());
    }
    decode::build_ragged(pattern, scores.lens(), |s, nz, code| {
        decode::prune_values_stream(pattern, scores.panel(s), nz, code);
    })
}

/// Batched unfused ablation: batched dense GEMM materialises every panel's
/// scores, then the batched prune kernel reads them back — both as single
/// whole-stack launches. Numerically identical to
/// [`sddmm_nm_fused_batched`].
pub fn sddmm_nm_unfused_batched<T: Scalar>(
    ctx: &mut GpuCtx,
    q: &BatchedMatrix<T>,
    k: &BatchedMatrix<T>,
    scale: f32,
    pattern: NmPattern,
) -> NmBatch<T> {
    let scores = crate::gemm::gemm_nt_batched(ctx, Stage::Qk, q, k, scale);
    dense_prune_batched(ctx, &scores, pattern)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfss_tensor::{Bf16, Rng};

    fn qk(n: usize, d: usize, seed: u64) -> (Matrix<f32>, Matrix<f32>) {
        let mut rng = Rng::new(seed);
        (
            Matrix::random_normal(n, d, 0.0, 1.0, &mut rng),
            Matrix::random_normal(n, d, 0.0, 1.0, &mut rng),
        )
    }

    #[test]
    fn fused_matches_compress_of_dense_gemm() {
        let (q, k) = qk(64, 32, 1);
        let mut ctx = GpuCtx::a100();
        let fused = sddmm_nm_fused(&mut ctx, &q, &k, 0.125, NmPattern::P1_2);
        let mut ctx2 = GpuCtx::a100();
        let dense = crate::gemm::gemm_nt(&mut ctx2, Stage::Qk, &q, &k, 0.125);
        let reference = NmCompressed::compress(&dense, NmPattern::P1_2);
        assert_eq!(fused.codes(), reference.codes());
        assert!(fused.decompress().max_abs_diff(&reference.decompress()) < 1e-5);
    }

    #[test]
    fn fused_matches_unfused_numerically() {
        let (q, k) = qk(32, 16, 2);
        let mut c1 = GpuCtx::a100();
        let mut c2 = GpuCtx::a100();
        let a = sddmm_nm_fused(&mut c1, &q, &k, 1.0, NmPattern::P2_4);
        let b = sddmm_nm_unfused(&mut c2, &q, &k, 1.0, NmPattern::P2_4);
        assert_eq!(a.codes(), b.codes());
        assert!(a.decompress().max_abs_diff(&b.decompress()) < 1e-5);
    }

    #[test]
    fn zero_overhead_traffic_claim() {
        // Unfused must cost exactly n² extra writes (dense scores out) plus
        // n² extra reads (prune kernel in), in bytes.
        let n = 256;
        let (q, k) = qk(n, 64, 3);
        let mut fused_ctx = GpuCtx::a100();
        let _ = sddmm_nm_fused(&mut fused_ctx, &q, &k, 1.0, NmPattern::P1_2);
        let mut unfused_ctx = GpuCtx::a100();
        let _ = sddmm_nm_unfused(&mut unfused_ctx, &q, &k, 1.0, NmPattern::P1_2);
        let extra = unfused_ctx.timeline.total_bytes() - fused_ctx.timeline.total_bytes();
        assert_eq!(extra, 2 * (n * n * 4) as u64);
    }

    #[test]
    fn fused_writes_only_compressed_bytes() {
        let n = 128;
        let (q, k) = qk(n, 64, 4);
        let mut ctx = GpuCtx::a100();
        let comp = sddmm_nm_fused(&mut ctx, &q, &k, 1.0, NmPattern::P1_2);
        let entry = &ctx.timeline.entries()[0];
        assert_eq!(
            entry.bytes_written,
            (comp.nonzeros_bytes() + comp.meta_bytes()) as u64
        );
        // n²/2 × 4B + n²/16 × 4B (§3.4).
        assert_eq!(entry.bytes_written, (n * n / 2 * 4 + n * n / 16 * 4) as u64);
    }

    #[test]
    fn bf16_2_4_path() {
        let mut rng = Rng::new(5);
        let q = Matrix::<Bf16>::random_normal(32, 16, 0.0, 1.0, &mut rng);
        let k = Matrix::<Bf16>::random_normal(32, 16, 0.0, 1.0, &mut rng);
        let mut ctx = GpuCtx::a100();
        let comp = sddmm_nm_fused(&mut ctx, &q, &k, 0.25, NmPattern::P2_4);
        let mut ctx2 = GpuCtx::a100();
        let dense = crate::gemm::gemm_nt(&mut ctx2, Stage::Qk, &q, &k, 0.25);
        let reference = NmCompressed::compress(&dense, NmPattern::P2_4);
        assert_eq!(comp.codes(), reference.codes());
    }

    #[test]
    fn bf16_epilogue_costs_more_alu_than_float() {
        let mut rng = Rng::new(6);
        let qf = Matrix::<f32>::random_normal(64, 16, 0.0, 1.0, &mut rng);
        let kf = Matrix::<f32>::random_normal(64, 16, 0.0, 1.0, &mut rng);
        let qb: Matrix<Bf16> = qf.cast();
        let kb: Matrix<Bf16> = kf.cast();
        let mut cf = GpuCtx::a100();
        let mut cb = GpuCtx::a100();
        let _ = sddmm_nm_fused(&mut cf, &qf, &kf, 1.0, NmPattern::P1_2);
        let _ = sddmm_nm_fused(&mut cb, &qb, &kb, 1.0, NmPattern::P2_4);
        // Per dense element the 2:4 epilogue is far more expensive — the
        // paper's warp-divergence observation.
        let f_ops = cf.timeline.entries()[0].alu_ops;
        let b_ops = cb.timeline.entries()[0].alu_ops;
        assert!(b_ops > 10 * f_ops, "bf16 {b_ops} vs float {f_ops}");
    }

    #[test]
    fn general_pattern_1_4() {
        let (q, k) = qk(32, 8, 7);
        let mut ctx = GpuCtx::a100();
        let comp = sddmm_nm_fused(&mut ctx, &q, &k, 1.0, NmPattern::new(1, 4));
        assert_eq!(comp.kept_per_row(), 8);
        let mut ctx2 = GpuCtx::a100();
        let dense = crate::gemm::gemm_nt(&mut ctx2, Stage::Qk, &q, &k, 1.0);
        let reference = NmCompressed::compress(&dense, NmPattern::new(1, 4));
        assert_eq!(comp.codes(), reference.codes());
    }

    #[test]
    fn device_meta_exportable_from_fused_output() {
        let (q, k) = qk(64, 32, 8);
        let mut ctx = GpuCtx::a100();
        let comp = sddmm_nm_fused(&mut ctx, &q, &k, 1.0, NmPattern::P1_2);
        let dm = comp.to_device_meta().expect("hardware pattern");
        let back =
            NmCompressed::from_device_meta(NmPattern::P1_2, 64, 64, comp.nonzeros().to_vec(), &dm)
                .expect("hardware pattern");
        assert_eq!(back, comp);
    }
}
