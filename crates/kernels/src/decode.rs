//! Shared per-stream inner routines of the decode kernels.
//!
//! A decode step computes one new score row per stream (the stream's fresh
//! query row against its cached keys), prunes it N:M over full M-groups
//! with a dense tail (see [`NmRagged`]), normalises the kept values, and
//! contracts them with the cached V rows. The **solo** entry points
//! (`*_decode`) and the **ragged batched** entry points (`*_ragged`) in the
//! kernel family modules both drive the routines in this module, so a
//! ragged launch over B streams is bit-identical to a per-stream solo
//! decode loop by construction — the launch accounting is the only
//! difference (one summed [`KernelProfile`] vs. B per-stream profiles).
//!
//! Unlike the prefill score kernels (serial-k `axpy` outer products), the
//! decode scores use the lane-blocked [`micro::dot`] shape: a decode step
//! has one output row per stream, so there is no operand panel to stream
//! and the dot's higher arithmetic intensity wins. Decode outputs are
//! therefore *not* bit-comparable to a prefill forward over the same cache
//! — only to other decode paths, which is the invariant the engine pins.
//!
//! The routines are generic over the cached K/V element type `S`
//! separately from the compute type `T`: the serving layer can quantise the
//! KV cache to [`dfss_tensor::Bf16`] while queries and outputs stay `T`.
//! Cached rows are **widened on load inside the microkernel**
//! ([`crate::simd::dot_widen`] / [`crate::simd::axpy_widen`]) — TF32
//! rounding for f32 KV, exact widening for bf16 KV, no intermediate widened
//! panel — so decode reads the cache at its true element width. Each cached
//! element is touched exactly once per decode step, so fusing the widen
//! drops the panel-sized scratch buffer without re-doing any conversion,
//! and because [`Scalar::to_mul`] is applied per element in the same order,
//! results are bit-identical to the historical widen-then-dot path.
//!
//! [`KernelProfile`]: dfss_gpusim::KernelProfile
//! [`NmRagged`]: dfss_nmsparse::NmRagged

use crate::simd;
use dfss_nmsparse::{NmPattern, NmRagged};
use dfss_tensor::{scratch_f32_from, scratch_f32_stale, Scalar, ScratchF32};

/// Widen (and input-round) a row-major slice into a pooled f32 buffer —
/// the per-stream counterpart of [`micro::widen`].
///
/// [`micro::widen`]: crate::micro::widen
pub(crate) fn widen_slice<T: Scalar>(src: &[T]) -> ScratchF32 {
    scratch_f32_from(src.len(), src.iter().map(|v| v.to_mul()))
}

/// Dense decode scores of one stream: `acc[j] = dot(q̂, to_mul(K row j))`,
/// the K rows widened in-register from their stored element type.
pub(crate) fn decode_scores_widen<S: Scalar>(qw: &[f32], k_panel: &[S], d: usize, acc: &mut [f32]) {
    let backend = simd::active();
    for (j, o) in acc.iter_mut().enumerate() {
        *o = simd::dot_widen(backend, qw, &k_panel[j * d..(j + 1) * d]);
    }
}

/// Prune one decode score row from f32 accumulators: N:M selection over the
/// full M-groups (same [`NmPattern::select_group_into`] semantics as the
/// prefill epilogue, scale applied at write time), dense tail copied kept.
pub(crate) fn prune_decode_row<T: Scalar>(
    pattern: NmPattern,
    scores: &[f32],
    scale: f32,
    nz_out: &mut [T],
    code_out: &mut [u8],
) {
    let m = pattern.m();
    let groups = scores.len() / m;
    let mut kept = [0usize; dfss_nmsparse::MAX_M];
    let mut nz_pos = 0usize;
    for (g, chunk) in scores[..groups * m].chunks_exact(m).enumerate() {
        let n_kept = pattern.select_group_into(chunk, &mut kept);
        let mut code = 0u8;
        for &ki in &kept[..n_kept] {
            code |= 1 << ki;
            nz_out[nz_pos] = T::from_acc(chunk[ki] * scale);
            nz_pos += 1;
        }
        code_out[g] = code;
    }
    for &s in &scores[groups * m..] {
        nz_out[nz_pos] = T::from_acc(s * scale);
        nz_pos += 1;
    }
    debug_assert_eq!(nz_pos, nz_out.len());
}

/// Fused score + prune of one stream: widen the query row, stream the
/// cached K panel at its stored width (widen-on-load), take one dot per
/// cached position, prune into the stream's output slices.
pub(crate) fn score_prune_stream<T: Scalar, S: Scalar>(
    q_row: &[T],
    k_panel: &[S],
    len: usize,
    d: usize,
    scale: f32,
    pattern: NmPattern,
    nz_out: &mut [T],
    code_out: &mut [u8],
) {
    let qw = widen_slice(q_row);
    let mut acc = scratch_f32_stale(len);
    decode_scores_widen(&qw, k_panel, d, &mut acc[..len]);
    prune_decode_row(pattern, &acc[..len], scale, nz_out, code_out);
}

/// Dense-score variant of one stream (the unfused ablation's first half):
/// scale applied at write time like the dense GEMM epilogue.
pub(crate) fn score_dense_stream<T: Scalar, S: Scalar>(
    q_row: &[T],
    k_panel: &[S],
    len: usize,
    d: usize,
    scale: f32,
    out: &mut [T],
) {
    let qw = widen_slice(q_row);
    let mut acc = scratch_f32_stale(len);
    decode_scores_widen(&qw, k_panel, d, &mut acc[..len]);
    for (o, &x) in out.iter_mut().zip(acc.iter()) {
        *o = T::from_acc(x * scale);
    }
}

/// Standalone prune of one stream's already-narrowed score values (the
/// unfused ablation's second half): selection on the widened values, kept
/// entries copied verbatim like the prefill `dense_prune`.
pub(crate) fn prune_values_stream<T: Scalar>(
    pattern: NmPattern,
    scores: &[T],
    nz_out: &mut [T],
    code_out: &mut [u8],
) {
    let m = pattern.m();
    let groups = scores.len() / m;
    let mut group_scores = [0.0f32; dfss_nmsparse::MAX_M];
    let mut kept = [0usize; dfss_nmsparse::MAX_M];
    let mut nz_pos = 0usize;
    for (g, chunk) in scores[..groups * m].chunks_exact(m).enumerate() {
        for (s, v) in group_scores.iter_mut().zip(chunk) {
            *s = v.to_f32();
        }
        let n_kept = pattern.select_group_into(&group_scores[..m], &mut kept);
        let mut code = 0u8;
        for &ki in &kept[..n_kept] {
            code |= 1 << ki;
            nz_out[nz_pos] = chunk[ki];
            nz_pos += 1;
        }
        code_out[g] = code;
    }
    for &v in &scores[groups * m..] {
        nz_out[nz_pos] = v;
        nz_pos += 1;
    }
}

/// SpMM of one stream: contract row `i` of the compressed stack with the
/// stream's cached V panel (streamed at its stored width, widen-on-load)
/// into one output row.
pub(crate) fn spmm_decode_stream<T: Scalar, S: Scalar>(
    a: &NmRagged<T>,
    i: usize,
    v_panel: &[S],
    d_v: usize,
    out_row: &mut [T],
) {
    let backend = simd::active();
    let mut acc = scratch_f32_stale(d_v);
    acc.iter_mut().for_each(|x| *x = 0.0);
    a.scan_row(i, |col, val| {
        simd::axpy_widen(
            backend,
            &mut acc[..d_v],
            val.to_mul(),
            &v_panel[col * d_v..(col + 1) * d_v],
        );
    });
    for (o, &x) in out_row.iter_mut().zip(acc.iter()) {
        *o = T::from_acc(x);
    }
}

/// Allocate a ragged compressed stack for the given per-stream lengths and
/// fill it with one pool fan-out over streams: `fill(stream, nz_out,
/// code_out)` writes stream `i`'s kept values and group codes. Shared by
/// every ragged prune-producing entry point so the output-assembly
/// scaffolding (kept/group sizing, buffer partitioning, fan-out) lives in
/// one place.
pub(crate) fn build_ragged<T: Scalar>(
    pattern: NmPattern,
    lens: &[usize],
    fill: impl Fn(usize, &mut [T], &mut [u8]) + Sync,
) -> NmRagged<T> {
    use rayon::prelude::*;
    let kepts: Vec<usize> = lens
        .iter()
        .map(|&l| NmRagged::<T>::kept_for(pattern, l))
        .collect();
    let groups: Vec<usize> = lens
        .iter()
        .map(|&l| NmRagged::<T>::groups_for(pattern, l))
        .collect();
    let mut nonzeros = vec![T::zero(); kepts.iter().sum()];
    let mut codes = vec![0u8; groups.iter().sum()];
    let nz_parts = split_by_sizes(&mut nonzeros, &kepts);
    let code_parts = split_by_sizes(&mut codes, &groups);
    let items: Vec<(usize, &mut [T], &mut [u8])> = nz_parts
        .into_iter()
        .zip(code_parts)
        .enumerate()
        .map(|(s, (nz, code))| (s, nz, code))
        .collect();
    items
        .into_par_iter()
        .for_each(|(s, nz, code)| fill(s, nz, code));
    NmRagged::from_parts(pattern, lens.to_vec(), nonzeros, codes)
}

/// Split a buffer into consecutive chunks of the given sizes (the ragged
/// kernels' per-stream output partitioning; sizes must sum to the buffer
/// length).
pub(crate) fn split_by_sizes<'a, T>(buf: &'a mut [T], sizes: &[usize]) -> Vec<&'a mut [T]> {
    let mut rest = buf;
    let mut out = Vec::with_capacity(sizes.len());
    for &s in sizes {
        let (head, tail) = rest.split_at_mut(s);
        out.push(head);
        rest = tail;
    }
    debug_assert!(rest.is_empty());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prune_decode_row_keeps_group_maxima_and_tail() {
        let scores = [1.0f32, 3.0, -2.0, -1.0, 7.0]; // 1:2 → 2 groups + tail
        let mut nz = [0.0f32; 3];
        let mut codes = [0u8; 2];
        prune_decode_row(NmPattern::P1_2, &scores, 0.5, &mut nz, &mut codes);
        assert_eq!(codes, [0b10, 0b10]); // 3.0 at lane 1, -1.0 at lane 1
        assert_eq!(nz, [1.5, -0.5, 3.5]); // scaled, tail kept dense
    }

    #[test]
    fn prune_values_stream_copies_verbatim() {
        let scores = [1.0f32, 3.0, -2.0, -1.0, 7.0];
        let mut nz = [0.0f32; 3];
        let mut codes = [0u8; 2];
        prune_values_stream(NmPattern::P1_2, &scores, &mut nz, &mut codes);
        assert_eq!(nz, [3.0, -1.0, 7.0]);
        assert_eq!(codes, [0b10, 0b10]);
    }

    #[test]
    fn split_by_sizes_partitions_in_order() {
        let mut buf = [0u8; 6];
        let parts = split_by_sizes(&mut buf, &[2, 0, 4]);
        assert_eq!(parts.len(), 3);
        assert_eq!((parts[0].len(), parts[1].len(), parts[2].len()), (2, 0, 4));
    }
}
