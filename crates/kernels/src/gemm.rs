//! Tiled dense GEMM.
//!
//! Mirrors the paper's Figure 7 design: the output is partitioned into
//! thread-block tiles of edge `T` (128 on the A100); each tile loads
//! `T×K` and `K×T` operand panels, multiplies on the tensor core with f32
//! accumulation, and writes the tile back. Per-tile traffic is therefore
//! `(2·T·K + T·T) · sizeof(T)` bytes, which reproduces the Table 5 count
//! `n²(2d/T + 1)` for the n×d·d×n attention score GEMM.
//!
//! On the host side the kernel computes the exact same result with rayon
//! parallelism over row panels and contiguous dot products (the `NT` layout
//! is the microkernel; `NN`/`TN` transpose an operand once, which a real GPU
//! kernel does for free via `ldmatrix` and is therefore *not* charged).

use crate::ctx::{dense_class, GpuCtx};
use crate::micro;
use dfss_gpusim::{KernelProfile, Stage};
use dfss_tensor::{scratch_f32_stale, BatchedMatrix, Matrix, RaggedBatch, Scalar};
use rayon::prelude::*;

/// Minimum per-thread row chunk, to avoid rayon overhead on small matrices.
const PAR_ROW_CHUNK: usize = 16;

/// Charge the simulated cost of a dense `M×K · K×N` GEMM without executing
/// it here — for mechanisms that fuse the product into a custom host loop
/// but want the device model to see a standard tiled GEMM.
pub fn charge_gemm<T: Scalar>(
    ctx: &mut GpuCtx,
    name: &'static str,
    stage: Stage,
    m: usize,
    n: usize,
    k: usize,
) {
    record_gemm::<T>(ctx, name, stage, m, n, k);
}

/// Record the simulated profile for a dense `M×K · K×N` GEMM.
fn record_gemm<T: Scalar>(
    ctx: &mut GpuCtx,
    name: &'static str,
    stage: Stage,
    m: usize,
    n: usize,
    k: usize,
) {
    record_gemm_batched::<T>(ctx, name, stage, 1, m, n, k);
}

/// Record one batched launch covering `batch` same-shape GEMMs: a single
/// profile whose counters are exactly `batch ×` the per-panel charge.
/// Tiling (`tile_for`) is computed once per launch, not once per panel.
fn record_gemm_batched<T: Scalar>(
    ctx: &mut GpuCtx,
    name: &'static str,
    stage: Stage,
    batch: usize,
    m: usize,
    n: usize,
    k: usize,
) {
    let tm = ctx.tile_for(m) as u64;
    let tn = ctx.tile_for(n) as u64;
    let (batch, m, n, k) = (batch as u64, m as u64, n as u64, k as u64);
    let tiles_m = m.div_ceil(tm);
    let tiles_n = n.div_ceil(tn);
    // Each tile loads a tm×k panel of A and a k×tn panel of B.
    let reads = batch * tiles_m * tiles_n * (tm * k + k * tn) * T::BYTES as u64;
    let writes = batch * m * n * T::BYTES as u64;
    let macs = batch * m * n * k;
    ctx.record(
        KernelProfile::new(name, stage)
            .with_traffic(reads, writes)
            .with_tc(macs, dense_class::<T>()),
    );
}

/// `C = scale · (A · Bᵀ)`; `A: M×K`, `B: N×K`, `C: M×N`.
///
/// This is the natural layout for the attention score matrix
/// (`Q·Kᵀ` with both `Q` and `K` stored row-major `n×d`).
pub fn gemm_nt<T: Scalar>(
    ctx: &mut GpuCtx,
    stage: Stage,
    a: &Matrix<T>,
    b: &Matrix<T>,
    scale: f32,
) -> Matrix<T> {
    let (m, ka) = a.shape();
    let (n, kb) = b.shape();
    assert_eq!(ka, kb, "inner dimensions differ: {ka} vs {kb}");
    record_gemm::<T>(ctx, "gemm_nt", stage, m, n, ka);
    if !ctx.exec {
        return Matrix::zeros(m, n);
    }

    // Outer-product microkernel: stream a widen-transposed B panel (`ka×n`)
    // and accumulate whole output rows with `axpy2` — per-element sums run
    // in serial k-order, the shape rustc vectorizes robustly, and row pairs
    // share every panel load.
    let aw = micro::widen(a);
    let bt = micro::widen_transposed(b);
    let mut out = vec![T::zero(); m * n];
    out.par_chunks_mut(n * PAR_ROW_CHUNK)
        .enumerate()
        .for_each(|(chunk_idx, chunk)| {
            let row0 = chunk_idx * PAR_ROW_CHUNK;
            let rows_here = chunk.len() / n;
            // Stale scratch: both accumulators are zeroed per output row.
            let mut acc0 = scratch_f32_stale(n);
            let mut acc1 = scratch_f32_stale(n);
            let mut local = 0;
            while local + 2 <= rows_here {
                let i = row0 + local;
                acc0.iter_mut().for_each(|v| *v = 0.0);
                acc1.iter_mut().for_each(|v| *v = 0.0);
                let a0 = &aw[i * ka..(i + 1) * ka];
                let a1 = &aw[(i + 1) * ka..(i + 2) * ka];
                for kk in 0..ka {
                    micro::axpy2(
                        &mut acc0,
                        &mut acc1,
                        a0[kk],
                        a1[kk],
                        &bt[kk * n..(kk + 1) * n],
                    );
                }
                let (o0, rest) = chunk[local * n..].split_at_mut(n);
                let o1 = &mut rest[..n];
                for (o, &v) in o0.iter_mut().zip(acc0.iter()) {
                    *o = T::from_acc(v * scale);
                }
                for (o, &v) in o1.iter_mut().zip(acc1.iter()) {
                    *o = T::from_acc(v * scale);
                }
                local += 2;
            }
            if local < rows_here {
                let i = row0 + local;
                acc0.iter_mut().for_each(|v| *v = 0.0);
                let arow = &aw[i * ka..(i + 1) * ka];
                for kk in 0..ka {
                    micro::axpy(&mut acc0, arow[kk], &bt[kk * n..(kk + 1) * n]);
                }
                let orow = &mut chunk[local * n..(local + 1) * n];
                for (o, &v) in orow.iter_mut().zip(acc0.iter()) {
                    *o = T::from_acc(v * scale);
                }
            }
        });
    Matrix::from_vec(m, n, out)
}

/// Batched `C = scale · (A · Bᵀ)` over a whole B×H stack in **one launch**:
/// `A: batch×M×K`, `B: batch×N×K`, `C: batch×M×N`. Charges a single profile
/// of exactly `batch ×` the per-panel [`gemm_nt`] cost and fans out once
/// over (panel, row-tile) work items. Per-element sums run in serial
/// k-order through the register-tiled [`micro::panel_product`], so results
/// are bit-identical to a per-panel [`gemm_nt`] loop.
pub fn gemm_nt_batched<T: Scalar>(
    ctx: &mut GpuCtx,
    stage: Stage,
    a: &BatchedMatrix<T>,
    b: &BatchedMatrix<T>,
    scale: f32,
) -> BatchedMatrix<T> {
    let (batch, m, ka) = a.shape();
    let (bb, n, kb) = b.shape();
    assert_eq!(batch, bb, "batch sizes differ: {batch} vs {bb}");
    assert_eq!(ka, kb, "inner dimensions differ: {ka} vs {kb}");
    record_gemm_batched::<T>(ctx, "gemm_nt", stage, batch, m, n, ka);
    if !ctx.exec {
        return BatchedMatrix::charge_only(batch, m, n);
    }

    let aw = micro::widen_batched(a);
    let bp = micro::widen_packed_batched(b);
    let ppl = micro::packed_len(n, ka);
    let mut out = vec![T::zero(); batch * m * n];
    crate::batched::fan_out(
        &mut out,
        m * n,
        crate::batched::ROW_TILE * n,
        |p, e0, chunk| {
            let aw_p = &aw[p * m * ka..(p + 1) * m * ka];
            let bp_p = &bp[p * ppl..(p + 1) * ppl];
            let rows_here = chunk.len() / n;
            let row0 = e0 / n;
            let mut acc = scratch_f32_stale(micro::TILE_ROWS * n);
            let mut local = 0;
            while local < rows_here {
                let rcnt = micro::TILE_ROWS.min(rows_here - local);
                micro::panel_product(aw_p, row0 + local, rcnt, ka, bp_p, n, &mut acc);
                for (o, &v) in chunk[local * n..(local + rcnt) * n]
                    .iter_mut()
                    .zip(acc[..rcnt * n].iter())
                {
                    *o = T::from_acc(v * scale);
                }
                local += rcnt;
            }
        },
    );
    BatchedMatrix::from_vec(batch, m, n, out)
}

/// Batched `C = A · B` over a whole B×H stack in one launch (`A: batch×M×K`,
/// `B: batch×K×N`); single profile = `batch ×` the per-panel [`gemm_nn`]
/// cost, bit-identical results to a per-panel loop.
pub fn gemm_nn_batched<T: Scalar>(
    ctx: &mut GpuCtx,
    stage: Stage,
    a: &BatchedMatrix<T>,
    b: &BatchedMatrix<T>,
) -> BatchedMatrix<T> {
    let (batch, m, ka) = a.shape();
    let (bb, kb, n) = b.shape();
    assert_eq!(batch, bb, "batch sizes differ: {batch} vs {bb}");
    assert_eq!(ka, kb, "inner dimensions differ: {ka} vs {kb}");
    record_gemm_batched::<T>(ctx, "gemm_nn", stage, batch, m, n, ka);
    if !ctx.exec {
        return BatchedMatrix::charge_only(batch, m, n);
    }

    let aw = micro::widen_batched(a);
    let bw = micro::widen_batched(b);
    let mut out = vec![T::zero(); batch * m * n];
    crate::batched::fan_out(&mut out, m * n, PAR_ROW_CHUNK * n, |p, e0, chunk| {
        nn_chunk_exec::<T>(
            &aw[p * m * ka..(p + 1) * m * ka],
            &bw[p * ka * n..(p + 1) * ka * n],
            chunk,
            e0 / n,
            n,
            ka,
        );
    });
    BatchedMatrix::from_vec(batch, m, n, out)
}

/// `C = A · B`; `A: M×K`, `B: K×N`, `C: M×N` (e.g. `A·V`).
pub fn gemm_nn<T: Scalar>(
    ctx: &mut GpuCtx,
    stage: Stage,
    a: &Matrix<T>,
    b: &Matrix<T>,
) -> Matrix<T> {
    let (m, ka) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(ka, kb, "inner dimensions differ: {ka} vs {kb}");
    record_gemm::<T>(ctx, "gemm_nn", stage, m, n, ka);
    if !ctx.exec {
        return Matrix::zeros(m, n);
    }

    let aw = micro::widen(a);
    let bw = micro::widen(b);
    let mut out = vec![T::zero(); m * n];
    out.par_chunks_mut(n * PAR_ROW_CHUNK)
        .enumerate()
        .for_each(|(chunk_idx, chunk)| {
            nn_chunk_exec::<T>(&aw, &bw, chunk, chunk_idx * PAR_ROW_CHUNK, n, ka);
        });
    Matrix::from_vec(m, n, out)
}

/// Shared NN/TN row-accumulation: output rows of `chunk` are built by
/// streaming B rows, pairing output rows so each B row is loaded once for
/// two accumulators. Rows whose A entry is zero are skipped exactly as the
/// single-row path skips them (pruned entries cost nothing numerically, and
/// skipping — rather than multiplying by zero — also keeps non-finite B
/// values from poisoning outputs the old code left finite); only a
/// both-nonzero pair takes the fused `axpy2`.
fn nn_chunk_exec<T: Scalar>(
    aw: &[f32],
    bw: &[f32],
    chunk: &mut [T],
    row0: usize,
    n: usize,
    ka: usize,
) {
    let rows_here = chunk.len() / n;
    // Stale scratch: both accumulators are zeroed per output row.
    let mut acc0 = dfss_tensor::scratch_f32_stale(n);
    let mut acc1 = dfss_tensor::scratch_f32_stale(n);
    let mut local = 0;
    while local + 2 <= rows_here {
        let i = row0 + local;
        acc0.iter_mut().for_each(|v| *v = 0.0);
        acc1.iter_mut().for_each(|v| *v = 0.0);
        let a0 = &aw[i * ka..(i + 1) * ka];
        let a1 = &aw[(i + 1) * ka..(i + 2) * ka];
        for kk in 0..ka {
            let (s0, s1) = (a0[kk], a1[kk]);
            let brow = &bw[kk * n..(kk + 1) * n];
            if s0 == 0.0 {
                if s1 != 0.0 {
                    micro::axpy(&mut acc1, s1, brow);
                }
            } else if s1 == 0.0 {
                micro::axpy(&mut acc0, s0, brow);
            } else {
                micro::axpy2(&mut acc0, &mut acc1, s0, s1, brow);
            }
        }
        let (o0, rest) = chunk[local * n..].split_at_mut(n);
        let o1 = &mut rest[..n];
        for (o, &v) in o0.iter_mut().zip(acc0.iter()) {
            *o = T::from_acc(v);
        }
        for (o, &v) in o1.iter_mut().zip(acc1.iter()) {
            *o = T::from_acc(v);
        }
        local += 2;
    }
    if local < rows_here {
        let i = row0 + local;
        acc0.iter_mut().for_each(|v| *v = 0.0);
        let arow = &aw[i * ka..(i + 1) * ka];
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            micro::axpy(&mut acc0, av, &bw[kk * n..(kk + 1) * n]);
        }
        let orow = &mut chunk[local * n..(local + 1) * n];
        for (o, &v) in orow.iter_mut().zip(acc0.iter()) {
            *o = T::from_acc(v);
        }
    }
}

/// `C = Aᵀ · B`; `A: K×M`, `B: K×N`, `C: M×N` (gradient layouts).
pub fn gemm_tn<T: Scalar>(
    ctx: &mut GpuCtx,
    stage: Stage,
    a: &Matrix<T>,
    b: &Matrix<T>,
) -> Matrix<T> {
    let (ka, m) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(ka, kb, "inner dimensions differ: {ka} vs {kb}");
    record_gemm::<T>(ctx, "gemm_tn", stage, m, n, ka);
    if !ctx.exec {
        return Matrix::zeros(m, n);
    }

    // Host side: fused widen + transpose of A into a pooled panel, then the
    // NN accumulation pattern.
    let aw = micro::widen_transposed(a);
    let bw = micro::widen(b);
    let mut out = vec![T::zero(); m * n];
    out.par_chunks_mut(n * PAR_ROW_CHUNK)
        .enumerate()
        .for_each(|(chunk_idx, chunk)| {
            nn_chunk_exec::<T>(&aw, &bw, chunk, chunk_idx * PAR_ROW_CHUNK, n, ka);
        });
    Matrix::from_vec(m, n, out)
}

/// Per-stream charge of one dense decode score row (`1 × len` against the
/// `len × d` cached panel): the `m = 1` tiled-GEMM model. The cached K
/// panel is charged at its stored element width `S`; the query row and
/// score outputs stay at the compute width `T`.
fn decode_score_charge<T: Scalar, S: Scalar>(
    ctx: &GpuCtx,
    len: usize,
    d: usize,
) -> (u64, u64, u64) {
    let tn = ctx.tile_for(len) as u64;
    let (len64, d64) = (len as u64, d as u64);
    let tiles = len64.div_ceil(tn);
    let reads = tiles * (d64 * T::BYTES as u64 + d64 * tn * S::BYTES as u64);
    let writes = len64 * T::BYTES as u64;
    (reads, writes, len64 * d64)
}

/// Solo dense decode scores: `scale · q·Kᵀ` for one stream's new query row
/// against its cached K (`len × d`) → a `1 × len` score row. The unfused
/// decode ablation's first half; uses the same lane-blocked dot inner
/// routine as the ragged entry point so the per-stream solo loop is
/// bit-identical to [`gemm_nt_ragged`].
pub fn gemm_nt_decode<T: Scalar, S: Scalar>(
    ctx: &mut GpuCtx,
    stage: Stage,
    q_row: &Matrix<T>,
    k: &Matrix<S>,
    scale: f32,
) -> Matrix<T> {
    assert_eq!(q_row.rows(), 1, "decode takes a single query row");
    let (len, d) = k.shape();
    assert_eq!(q_row.cols(), d, "inner dimensions differ");
    let (reads, writes, macs) = decode_score_charge::<T, S>(ctx, len, d);
    ctx.record(
        KernelProfile::new("gemm_nt_decode", stage)
            .with_traffic(reads, writes)
            .with_tc(macs, dense_class::<T>()),
    );
    if !ctx.exec {
        return Matrix::zeros(1, len);
    }
    let mut out = vec![T::zero(); len];
    crate::decode::score_dense_stream(q_row.row(0), k.as_slice(), len, d, scale, &mut out);
    Matrix::from_vec(1, len, out)
}

/// Ragged batched dense decode scores: every stream's new query row (row
/// `i` of `q`) against its own cached K panel, in **one launch** — a single
/// profile summing the per-stream [`gemm_nt_decode`] charges, one pool
/// fan-out over streams. Returns each stream's score row as a `cols == 1`
/// panel (one scalar per cached position). Bit-identical to the per-stream
/// solo loop.
pub fn gemm_nt_ragged<T: Scalar, S: Scalar>(
    ctx: &mut GpuCtx,
    stage: Stage,
    q: &Matrix<T>,
    k: &RaggedBatch<S>,
    scale: f32,
) -> RaggedBatch<T> {
    let streams = k.streams();
    assert_eq!(q.rows(), streams, "one query row per stream");
    let d = k.cols();
    assert_eq!(q.cols(), d, "inner dimensions differ");
    let (mut reads, mut writes, mut macs) = (0u64, 0u64, 0u64);
    for &len in k.lens() {
        let (r, w, m) = decode_score_charge::<T, S>(ctx, len, d);
        reads += r;
        writes += w;
        macs += m;
    }
    ctx.record(
        KernelProfile::new("gemm_nt_decode", stage)
            .with_traffic(reads, writes)
            .with_tc(macs, dense_class::<T>()),
    );
    let mut out = RaggedBatch::zeros(1, k.lens());
    if !ctx.exec {
        return out;
    }
    let items: Vec<(usize, &mut [T])> = out.panels_mut().into_iter().enumerate().collect();
    items.into_par_iter().for_each(|(s, panel)| {
        crate::decode::score_dense_stream(q.row(s), k.panel(s), k.len_of(s), d, scale, panel);
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfss_tensor::{Bf16, Rng};

    fn ctx() -> GpuCtx {
        GpuCtx::a100()
    }

    #[test]
    fn nt_matches_reference() {
        let mut rng = Rng::new(1);
        let a = Matrix::<f32>::random_normal(33, 17, 0.0, 1.0, &mut rng);
        let b = Matrix::<f32>::random_normal(21, 17, 0.0, 1.0, &mut rng);
        let mut ctx = ctx();
        let c = gemm_nt(&mut ctx, Stage::Qk, &a, &b, 1.0);
        let reference = a.matmul_ref(&b.transpose());
        // TF32 input rounding bounds the error.
        assert!(
            c.max_abs_diff(&reference) < 1e-2,
            "{}",
            c.max_abs_diff(&reference)
        );
    }

    #[test]
    fn nn_matches_reference() {
        let mut rng = Rng::new(2);
        let a = Matrix::<f32>::random_normal(19, 31, 0.0, 1.0, &mut rng);
        let b = Matrix::<f32>::random_normal(31, 23, 0.0, 1.0, &mut rng);
        let mut ctx = ctx();
        let c = gemm_nn(&mut ctx, Stage::Av, &a, &b);
        assert!(c.max_abs_diff(&a.matmul_ref(&b)) < 2e-2);
    }

    #[test]
    fn tn_matches_reference() {
        let mut rng = Rng::new(3);
        let a = Matrix::<f32>::random_normal(31, 9, 0.0, 1.0, &mut rng);
        let b = Matrix::<f32>::random_normal(31, 13, 0.0, 1.0, &mut rng);
        let mut ctx = ctx();
        let c = gemm_tn(&mut ctx, Stage::NonAttention, &a, &b);
        assert!(c.max_abs_diff(&a.transpose().matmul_ref(&b)) < 2e-2);
    }

    #[test]
    fn scale_applied() {
        let a = Matrix::<f32>::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::<f32>::from_vec(1, 2, vec![3.0, 4.0]);
        let mut ctx = ctx();
        let c = gemm_nt(&mut ctx, Stage::Qk, &a, &b, 0.5);
        assert!((c.get(0, 0) - 5.5).abs() < 1e-3);
    }

    #[test]
    fn bf16_gemm_accumulates_in_f32() {
        // Summing 4096 × 1.0·0.001 in pure bf16 would lose badly; f32
        // accumulation keeps it tight before the final narrowing.
        let k = 4096;
        let a = Matrix::<Bf16>::from_fn(1, k, |_, _| Bf16::from_f32(1.0));
        let b = Matrix::<Bf16>::from_fn(1, k, |_, _| Bf16::from_f32(0.0009765625)); // 2^-10
        let mut ctx = ctx();
        let c = gemm_nt(&mut ctx, Stage::Qk, &a, &b, 1.0);
        assert!((c.get(0, 0).to_f32() - 4.0).abs() < 0.02);
    }

    #[test]
    fn traffic_matches_table_5_for_square_attention_gemm() {
        // n×d · d×n with n divisible by T: traffic elements = n²(2d/T + 1).
        let n = 512;
        let d = 64;
        let mut rng = Rng::new(4);
        let q = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
        let k = Matrix::<f32>::random_normal(n, d, 0.0, 1.0, &mut rng);
        let mut ctx = ctx();
        let _ = gemm_nt(&mut ctx, Stage::Qk, &q, &k, 1.0);
        let t = ctx.dev.tile as u64;
        let (n, d) = (n as u64, d as u64);
        let expect_elems = n * n * (2 * d / t + 1);
        assert_eq!(ctx.timeline.total_bytes(), expect_elems * 4);
    }

    #[test]
    fn macs_recorded() {
        let mut rng = Rng::new(5);
        let a = Matrix::<f32>::random_normal(64, 32, 0.0, 1.0, &mut rng);
        let b = Matrix::<f32>::random_normal(48, 32, 0.0, 1.0, &mut rng);
        let mut ctx = ctx();
        let _ = gemm_nt(&mut ctx, Stage::Qk, &a, &b, 1.0);
        assert_eq!(ctx.timeline.entries()[0].tc_macs, 64 * 48 * 32);
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn dimension_mismatch_panics() {
        let a = Matrix::<f32>::zeros(2, 3);
        let b = Matrix::<f32>::zeros(2, 4);
        let mut ctx = ctx();
        let _ = gemm_nt(&mut ctx, Stage::Qk, &a, &b, 1.0);
    }

    #[test]
    fn large_parallel_consistent_with_small_serial() {
        let mut rng = Rng::new(6);
        let a = Matrix::<f32>::random_normal(200, 64, 0.0, 1.0, &mut rng);
        let b = Matrix::<f32>::random_normal(100, 64, 0.0, 1.0, &mut rng);
        let mut ctx = ctx();
        let c = gemm_nt(&mut ctx, Stage::Qk, &a, &b, 1.0);
        // Spot-check a handful of entries against direct dots.
        for &(i, j) in &[(0usize, 0usize), (199, 99), (57, 42), (128, 1)] {
            let dot: f32 = a.row(i).iter().zip(b.row(j)).map(|(x, y)| x * y).sum();
            assert!((c.get(i, j) - dot).abs() < 2e-2, "({i},{j})");
        }
    }
}
