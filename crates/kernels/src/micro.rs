//! Packed, autovectorizable microkernels shared by every compute kernel.
//!
//! The paper's speedups presume the three attention kernels run at hardware
//! speed; on the host side that means the inner loops must vectorize. Two
//! loop shapes do so *robustly* with rustc (verified by disassembly — the
//! dot-product-with-lane-accumulators shape vectorizes but loses its
//! unrolling under inlining pressure and lands 3–4× off peak, so the score
//! kernels avoid it):
//!
//! * [`axpy`] / [`axpy2`] — `acc[j] += s · row[j]` over a long contiguous
//!   row. The lanes are independent, so the vectorizer needs no reduction
//!   reasoning. Score kernels (`gemm_nt`, fused SDDMM, blocked-ELL SDDMM)
//!   therefore run as an **outer product over the K dimension** against a
//!   widen-transposed operand panel, accumulating whole output rows; this
//!   reproduces the *serial left-to-right* per-element summation order, so
//!   scores are bit-identical across every kernel that computes them, and
//!   [`axpy2`] processes two output rows per operand-panel pass (the panel
//!   stream is the bandwidth bottleneck).
//! * [`dot`] — 8-lane blocked reduction, for call sites that genuinely need
//!   a single standalone dot product.
//!
//! Operand widening ([`widen`], [`widen_transposed`]) goes through the
//! thread-local scratch arena: the f32 copies (and the per-row accumulators
//! kernels take via [`dfss_tensor::scratch_f32`]) are reused across calls
//! instead of re-allocated — the persistent worker pool keeps each worker's
//! arena warm for the whole process lifetime.

use dfss_tensor::{scratch_f32_from, Matrix, Scalar, ScratchF32};

/// Accumulator width of the [`dot`] microkernel. Eight f32 lanes = one AVX2
/// register (or two NEON registers).
pub const LANES: usize = 8;

/// Lane-blocked dot product with a fixed, deterministic reduction order.
///
/// `a` and `b` must have equal length. The result is *not* equal to a serial
/// left-to-right sum (the score kernels use the [`axpy`] form precisely so
/// their sums stay serial-order); use this only where a standalone dot is
/// needed and no cross-kernel bit-identity is required.
#[inline(always)]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let full = a.len() / LANES * LANES;
    let mut lanes = [0.0f32; LANES];
    // Fixed-size array views: rustc reliably vectorizes this shape at every
    // inlined call site (the slice-iterator formulation can regress to
    // scalar code under inlining pressure — measured, not theoretical).
    for c in (0..full).step_by(LANES) {
        let xa: &[f32; LANES] = a[c..c + LANES].try_into().unwrap();
        let xb: &[f32; LANES] = b[c..c + LANES].try_into().unwrap();
        for l in 0..LANES {
            lanes[l] += xa[l] * xb[l];
        }
    }
    // Pairwise tree reduction: fixed order, and better rounding than a
    // serial lane sweep.
    let q0 = (lanes[0] + lanes[4]) + (lanes[1] + lanes[5]);
    let q1 = (lanes[2] + lanes[6]) + (lanes[3] + lanes[7]);
    let mut acc = q0 + q1;
    for (x, y) in a[full..].iter().zip(&b[full..]) {
        acc += x * y;
    }
    acc
}

/// `acc[j] += s * row[j]` over the whole slice. The lanes are independent,
/// so this shape autovectorizes as-is; the helper exists to keep the update
/// in one place (and one idiom) across every row-accumulation loop.
#[inline(always)]
pub fn axpy(acc: &mut [f32], s: f32, row: &[f32]) {
    debug_assert_eq!(acc.len(), row.len());
    for (o, &x) in acc.iter_mut().zip(row) {
        *o += s * x;
    }
}

/// Fused update of **two** accumulator rows against one shared operand row:
/// `acc0[j] += s0 · row[j]; acc1[j] += s1 · row[j]`.
///
/// Each `row[j]` is loaded once for both outputs — the operand-panel stream
/// is what bounds the outer-product GEMM, so pairing output rows nearly
/// doubles its arithmetic intensity. Per accumulator row the update is the
/// **same element-wise operation in the same order** as [`axpy`], so pairing
/// rows never changes a result bit.
#[inline(always)]
pub fn axpy2(acc0: &mut [f32], acc1: &mut [f32], s0: f32, s1: f32, row: &[f32]) {
    debug_assert_eq!(acc0.len(), row.len());
    debug_assert_eq!(acc1.len(), row.len());
    for ((o0, o1), &x) in acc0.iter_mut().zip(acc1.iter_mut()).zip(row) {
        *o0 += s0 * x;
        *o1 += s1 * x;
    }
}

/// Widen (and input-round) a matrix into a pooled f32 buffer — the
/// tensor-core operand conversion (TF32 for f32 inputs, exact widening for
/// bf16), allocation-free in steady state.
pub fn widen<T: Scalar>(m: &Matrix<T>) -> ScratchF32 {
    scratch_f32_from(m.len(), m.as_slice().iter().map(|v| v.to_mul()))
}

/// Widen a `K×M` matrix directly into its `M×K` transpose (fused widen +
/// transpose, one pass, no intermediate `Matrix`).
pub fn widen_transposed<T: Scalar>(m: &Matrix<T>) -> ScratchF32 {
    let (k, cols) = m.shape();
    let mut out = dfss_tensor::scratch_f32(k * cols);
    for (kk, row) in m.as_slice().chunks_exact(cols.max(1)).enumerate() {
        for (c, v) in row.iter().enumerate() {
            out[c * k + kk] = v.to_mul();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfss_tensor::{Bf16, Rng};

    #[test]
    fn dot_matches_serial_within_rounding() {
        let mut rng = Rng::new(1);
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65, 1000] {
            let a: Vec<f32> = (0..len).map(|_| rng.normal(0.0, 1.0)).collect();
            let b: Vec<f32> = (0..len).map(|_| rng.normal(0.0, 1.0)).collect();
            let serial: f64 = a.iter().zip(&b).map(|(&x, &y)| (x * y) as f64).sum();
            let blocked = dot(&a, &b) as f64;
            assert!(
                (serial - blocked).abs() < 1e-3 * (1.0 + serial.abs()),
                "len {len}: {serial} vs {blocked}"
            );
        }
    }

    #[test]
    fn dot_is_deterministic() {
        let mut rng = Rng::new(2);
        let a: Vec<f32> = (0..77).map(|_| rng.normal(0.0, 1.0)).collect();
        let b: Vec<f32> = (0..77).map(|_| rng.normal(0.0, 1.0)).collect();
        assert_eq!(dot(&a, &b).to_bits(), dot(&a, &b).to_bits());
    }

    #[test]
    fn axpy_accumulates() {
        let mut acc = vec![1.0f32; 5];
        axpy(&mut acc, 2.0, &[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(acc, vec![3.0, 5.0, 7.0, 9.0, 11.0]);
    }

    #[test]
    fn axpy2_bit_identical_to_two_axpys() {
        let mut rng = Rng::new(7);
        for len in [0usize, 1, 7, 64, 129] {
            let row: Vec<f32> = (0..len).map(|_| rng.normal(0.0, 1.0)).collect();
            let init: Vec<f32> = (0..len).map(|_| rng.normal(0.0, 1.0)).collect();
            let (s0, s1) = (rng.normal(0.0, 1.0), rng.normal(0.0, 1.0));
            let mut p0 = init.clone();
            let mut p1 = init.clone();
            axpy2(&mut p0, &mut p1, s0, s1, &row);
            let mut r0 = init.clone();
            let mut r1 = init.clone();
            axpy(&mut r0, s0, &row);
            axpy(&mut r1, s1, &row);
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&p0), bits(&r0), "len {len}");
            assert_eq!(bits(&p1), bits(&r1), "len {len}");
        }
    }

    #[test]
    fn widen_applies_tf32_rounding() {
        let x = 1.0f32 + 2.0f32.powi(-11); // dropped by TF32's 10-bit mantissa
        let m = Matrix::<f32>::from_vec(1, 2, vec![x, 0.5]);
        let w = widen(&m);
        assert_eq!(&*w, &[1.0, 0.5]);
    }

    #[test]
    fn widen_bf16_is_exact() {
        let m = Matrix::<Bf16>::from_fn(2, 2, |r, c| Bf16::from_f32((r + c) as f32 * 0.25));
        let w = widen(&m);
        assert_eq!(w[3], 0.5);
    }

    #[test]
    fn widen_transposed_matches_transpose_then_widen() {
        let mut rng = Rng::new(3);
        let m = Matrix::<f32>::random_normal(7, 5, 0.0, 1.0, &mut rng);
        let expect = widen(&m.transpose());
        let got = widen_transposed(&m);
        assert_eq!(&*expect, &*got);
    }
}
