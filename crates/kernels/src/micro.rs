//! Packed microkernels shared by every compute kernel, dispatched to the
//! explicit-SIMD backend chosen once at startup (see [`crate::simd`]).
//!
//! The paper's speedups presume the three attention kernels run at hardware
//! speed; on the host side that means the inner loops must run wide. Each
//! public microkernel here routes through [`crate::simd::active`] — AVX2,
//! AVX-512 or NEON when the CPU has them, the always-compiled scalar
//! reference otherwise (or under `DFSS_SIMD=scalar`). Every backend is
//! bit-identical to the scalar reference by construction (no FMA, scalar
//! reduction tree preserved; see the parity gauntlet in
//! `tests/simd_parity.rs`), so kernel results do not depend on the host CPU.
//!
//! Loop-shape inventory:
//!
//! * [`axpy`] / [`axpy2`] — `acc[j] += s · row[j]` over a long contiguous
//!   row. The lanes are independent. Score kernels (`gemm_nt`, fused SDDMM,
//!   blocked-ELL SDDMM) run as an **outer product over the K dimension**
//!   against a widen-transposed operand panel, accumulating whole output
//!   rows; this reproduces the *serial left-to-right* per-element summation
//!   order, so scores are bit-identical across every kernel that computes
//!   them, and [`axpy2`] processes two output rows per operand-panel pass
//!   (the panel stream is the bandwidth bottleneck).
//! * [`dot`] — 8-lane blocked reduction, for call sites that genuinely need
//!   a single standalone dot product.
//! * [`panel_product`] — register-tiled batched microkernel (4 rows × 16
//!   columns per tile, accumulated in registers over the whole k extent).
//!
//! Operand widening ([`widen`], [`widen_transposed`]) goes through the
//! thread-local scratch arena: the f32 copies (and the per-row accumulators
//! kernels take via [`dfss_tensor::scratch_f32`]) are reused across calls
//! instead of re-allocated — the persistent worker pool keeps each worker's
//! arena warm for the whole process lifetime.

use crate::simd;
use dfss_tensor::{scratch_f32_from, Matrix, Scalar, ScratchF32};

/// Accumulator width of the [`dot`] microkernel. Eight f32 lanes = one AVX2
/// register (or two NEON registers).
pub const LANES: usize = 8;

/// Lane-blocked dot product with a fixed, deterministic reduction order
/// (8 lane accumulators, pairwise tree reduce — see [`simd::dot_ref`]).
///
/// `a` and `b` must have equal length. The result is *not* equal to a serial
/// left-to-right sum (the score kernels use the [`axpy`] form precisely so
/// their sums stay serial-order); use this only where a standalone dot is
/// needed and no cross-kernel bit-identity is required.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    simd::active().dot(a, b)
}

/// `acc[j] += s * row[j]` over the whole slice. The lanes are independent,
/// so any SIMD width computes the same bits; the helper exists to keep the
/// update in one place (and one idiom) across every row-accumulation loop.
#[inline]
pub fn axpy(acc: &mut [f32], s: f32, row: &[f32]) {
    simd::active().axpy(acc, s, row);
}

/// Fused update of **two** accumulator rows against one shared operand row:
/// `acc0[j] += s0 · row[j]; acc1[j] += s1 · row[j]`.
///
/// Each `row[j]` is loaded once for both outputs — the operand-panel stream
/// is what bounds the outer-product GEMM, so pairing output rows nearly
/// doubles its arithmetic intensity. Per accumulator row the update is the
/// **same element-wise operation in the same order** as [`axpy`], so pairing
/// rows never changes a result bit.
#[inline]
pub fn axpy2(acc0: &mut [f32], acc1: &mut [f32], s0: f32, s1: f32, row: &[f32]) {
    simd::active().axpy2(acc0, acc1, s0, s1, row);
}

/// Column-tile width of the register-tiled batched kernels: 16 f32 lanes =
/// two AVX2 registers (four NEON), leaving room for [`TILE_ROWS`] rows of
/// accumulators in the register file.
pub const TILE_COLS: usize = 16;

/// Output rows per register tile of [`panel_product`].
pub const TILE_ROWS: usize = 4;

/// Widen an `n × ka` operand directly into the **tile-packed** layout the
/// register-tiled batched kernels stream: the (logical) `ka × n` transpose is
/// stored as `⌈n/TILE_COLS⌉` contiguous `ka × TILE_COLS` blocks, so a
/// [`panel_product`] column tile reads one contiguous block instead of `ka`
/// strided rows. The tail tile is zero-padded (the padding lanes never leave
/// the register block). One packing pass per operand per launch.
pub fn widen_packed<T: Scalar>(m: &Matrix<T>) -> ScratchF32 {
    let (n, ka) = m.shape();
    let tiles = n.div_ceil(TILE_COLS).max(1);
    let mut out = dfss_tensor::scratch_f32(tiles * ka * TILE_COLS);
    pack_into(m.as_slice(), ka, &mut out);
    out
}

/// Elements of one [`widen_packed`] panel for an `n × ka` operand.
#[inline]
pub fn packed_len(n: usize, ka: usize) -> usize {
    n.div_ceil(TILE_COLS).max(1) * ka * TILE_COLS
}

/// Pack one `n × ka` row-major operand slice into a caller-provided packed
/// block (see [`widen_packed`]); `out.len() >= packed_len(n, ka)` and the
/// caller is responsible for zeroing the tail-tile padding.
pub fn pack_into<T: Scalar>(src: &[T], ka: usize, out: &mut [f32]) {
    for (j, row) in src.chunks_exact(ka.max(1)).enumerate() {
        let (jt, l) = (j / TILE_COLS, j % TILE_COLS);
        let block = &mut out[jt * ka * TILE_COLS..];
        for (kk, v) in row.iter().enumerate() {
            block[kk * TILE_COLS + l] = v.to_mul();
        }
    }
}

/// Widen a whole batched stack into one pooled f32 buffer (panel-major, the
/// same contiguous layout as the stack itself).
pub fn widen_batched<T: Scalar>(m: &dfss_tensor::BatchedMatrix<T>) -> ScratchF32 {
    scratch_f32_from(m.len(), m.as_slice().iter().map(|v| v.to_mul()))
}

/// Widen + tile-pack every panel of a batched stack (each `rows × cols`
/// panel becomes one [`widen_packed`] block of `packed_len(rows, cols)`
/// f32s, stored panel-major).
pub fn widen_packed_batched<T: Scalar>(m: &dfss_tensor::BatchedMatrix<T>) -> ScratchF32 {
    let (batch, n, ka) = m.shape();
    let pl = packed_len(n, ka);
    let mut out = dfss_tensor::scratch_f32(batch * pl);
    for b in 0..batch {
        pack_into(m.panel(b), ka, &mut out[b * pl..(b + 1) * pl]);
    }
    out
}

/// Register-tiled product of `rcnt ≤ 4` consecutive rows of `aw` (row-major,
/// `ka` columns, starting at row `i0`) against a [`widen_packed`] panel of
/// logical shape `ka × n`: **overwrites** the first `rcnt × n` entries of
/// `acc` with the row sums (no caller zeroing needed — accumulation happens
/// in registers and spills once per tile).
///
/// Per-element sums run in serial k-order, exactly like the [`axpy`] /
/// [`axpy2`] accumulation of the single-head kernels, so results are
/// bit-identical to them; only the memory traffic differs (the accumulator
/// block stays in registers and the packed panel streams contiguously).
/// This is the batched launches' microkernel.
pub fn panel_product(
    aw: &[f32],
    i0: usize,
    rcnt: usize,
    ka: usize,
    packed: &[f32],
    n: usize,
    acc: &mut [f32],
) {
    debug_assert!((1..=TILE_ROWS).contains(&rcnt));
    debug_assert!(acc.len() >= rcnt * n);
    debug_assert!(packed.len() >= n.div_ceil(TILE_COLS) * ka * TILE_COLS);
    // Fixed-size row-slice array (pad unused slots with the last row — the
    // backend tile only ever reads its first `rcnt` entries).
    let arows: [&[f32]; TILE_ROWS] = std::array::from_fn(|r| {
        let i = i0 + r.min(rcnt - 1);
        &aw[i * ka..(i + 1) * ka]
    });
    let backend = simd::active();
    let mut j0 = 0;
    let mut jt = 0;
    while j0 < n {
        let w = TILE_COLS.min(n - j0);
        let block = &packed[jt * ka * TILE_COLS..(jt + 1) * ka * TILE_COLS];
        backend.panel_tile(&arows, rcnt, block, n, j0, w, acc);
        j0 += w;
        jt += 1;
    }
}

/// Widen (and input-round) a matrix into a pooled f32 buffer — the
/// tensor-core operand conversion (TF32 for f32 inputs, exact widening for
/// bf16), allocation-free in steady state.
pub fn widen<T: Scalar>(m: &Matrix<T>) -> ScratchF32 {
    scratch_f32_from(m.len(), m.as_slice().iter().map(|v| v.to_mul()))
}

/// Widen a `K×M` matrix directly into its `M×K` transpose (fused widen +
/// transpose, one pass, no intermediate `Matrix`).
pub fn widen_transposed<T: Scalar>(m: &Matrix<T>) -> ScratchF32 {
    let (k, cols) = m.shape();
    let mut out = dfss_tensor::scratch_f32(k * cols);
    for (kk, row) in m.as_slice().chunks_exact(cols.max(1)).enumerate() {
        for (c, v) in row.iter().enumerate() {
            out[c * k + kk] = v.to_mul();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfss_tensor::{Bf16, Rng};

    #[test]
    fn dot_matches_serial_within_rounding() {
        let mut rng = Rng::new(1);
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65, 1000] {
            let a: Vec<f32> = (0..len).map(|_| rng.normal(0.0, 1.0)).collect();
            let b: Vec<f32> = (0..len).map(|_| rng.normal(0.0, 1.0)).collect();
            let serial: f64 = a.iter().zip(&b).map(|(&x, &y)| (x * y) as f64).sum();
            let blocked = dot(&a, &b) as f64;
            assert!(
                (serial - blocked).abs() < 1e-3 * (1.0 + serial.abs()),
                "len {len}: {serial} vs {blocked}"
            );
        }
    }

    #[test]
    fn dot_is_deterministic() {
        let mut rng = Rng::new(2);
        let a: Vec<f32> = (0..77).map(|_| rng.normal(0.0, 1.0)).collect();
        let b: Vec<f32> = (0..77).map(|_| rng.normal(0.0, 1.0)).collect();
        assert_eq!(dot(&a, &b).to_bits(), dot(&a, &b).to_bits());
    }

    #[test]
    fn axpy_accumulates() {
        let mut acc = vec![1.0f32; 5];
        axpy(&mut acc, 2.0, &[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(acc, vec![3.0, 5.0, 7.0, 9.0, 11.0]);
    }

    #[test]
    fn axpy2_bit_identical_to_two_axpys() {
        let mut rng = Rng::new(7);
        for len in [0usize, 1, 7, 64, 129] {
            let row: Vec<f32> = (0..len).map(|_| rng.normal(0.0, 1.0)).collect();
            let init: Vec<f32> = (0..len).map(|_| rng.normal(0.0, 1.0)).collect();
            let (s0, s1) = (rng.normal(0.0, 1.0), rng.normal(0.0, 1.0));
            let mut p0 = init.clone();
            let mut p1 = init.clone();
            axpy2(&mut p0, &mut p1, s0, s1, &row);
            let mut r0 = init.clone();
            let mut r1 = init.clone();
            axpy(&mut r0, s0, &row);
            axpy(&mut r1, s1, &row);
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&p0), bits(&r0), "len {len}");
            assert_eq!(bits(&p1), bits(&r1), "len {len}");
        }
    }

    #[test]
    fn widen_applies_tf32_rounding() {
        let x = 1.0f32 + 2.0f32.powi(-11); // dropped by TF32's 10-bit mantissa
        let m = Matrix::<f32>::from_vec(1, 2, vec![x, 0.5]);
        let w = widen(&m);
        assert_eq!(&*w, &[1.0, 0.5]);
    }

    #[test]
    fn widen_bf16_is_exact() {
        let m = Matrix::<Bf16>::from_fn(2, 2, |r, c| Bf16::from_f32((r + c) as f32 * 0.25));
        let w = widen(&m);
        assert_eq!(w[3], 0.5);
    }

    #[test]
    fn widen_transposed_matches_transpose_then_widen() {
        let mut rng = Rng::new(3);
        let m = Matrix::<f32>::random_normal(7, 5, 0.0, 1.0, &mut rng);
        let expect = widen(&m.transpose());
        let got = widen_transposed(&m);
        assert_eq!(&*expect, &*got);
    }

    #[test]
    fn panel_product_bit_identical_to_axpy_accumulation() {
        let mut rng = Rng::new(9);
        // Ragged shapes: odd rows (tail rcnt < 4) and a non-multiple-of-16
        // column count (tail tile).
        for &(m, n, ka) in &[(7usize, 37usize, 13usize), (8, 32, 16), (5, 16, 8)] {
            let a = Matrix::<f32>::random_normal(m, ka, 0.0, 1.0, &mut rng);
            let b = Matrix::<f32>::random_normal(n, ka, 0.0, 1.0, &mut rng);
            let aw = widen(&a);
            let bt = widen_transposed(&b);
            let bp = widen_packed(&b);
            // Reference: serial axpy accumulation (the single-head order).
            let mut expect = vec![0.0f32; m * n];
            for i in 0..m {
                for kk in 0..ka {
                    axpy(
                        &mut expect[i * n..(i + 1) * n],
                        aw[i * ka + kk],
                        &bt[kk * n..(kk + 1) * n],
                    );
                }
            }
            let mut got = vec![f32::NAN; m * n];
            let mut i0 = 0;
            while i0 < m {
                let rcnt = TILE_ROWS.min(m - i0);
                let mut acc = vec![0.0f32; rcnt * n];
                panel_product(&aw, i0, rcnt, ka, &bp, n, &mut acc);
                got[i0 * n..(i0 + rcnt) * n].copy_from_slice(&acc);
                i0 += rcnt;
            }
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&expect), bits(&got), "{m}x{n}x{ka}");
        }
    }

    #[test]
    fn packed_layout_is_tile_major() {
        let m = Matrix::<f32>::from_fn(3, 2, |r, c| (r * 10 + c) as f32);
        let p = widen_packed(&m);
        assert_eq!(p.len(), packed_len(3, 2));
        // Tile 0, kk = 0 holds column 0 of rows 0..3 then zero padding.
        assert_eq!(&p[..4], &[0.0, 10.0, 20.0, 0.0]);
        // kk = 1 lane block starts at TILE_COLS.
        assert_eq!(&p[TILE_COLS..TILE_COLS + 3], &[1.0, 11.0, 21.0]);
    }
}
